//! Voxel-grid object detectors standing in for SECOND and PV-RCNN.
//!
//! Table I compares pre-training schemes on two backbones of different
//! capacity: SECOND (single-stage, voxel-only) and PV-RCNN (two-stage,
//! point-refined). The stand-ins here share that structure:
//!
//! * **single stage** ([`Detector::second_like`]): ground-filtered connected
//!   components over the occupancy grid, classified by footprint templates,
//!   boxes placed at voxel centroids — quantization-limited localization.
//! * **two stage** ([`Detector::pvrcnn_like`]): the same proposals refined
//!   with the raw (observed) points inside each proposal — sub-voxel centers
//!   and tighter boxes where point support exists.

use sensact_lidar::scene::ObjectClass;
use sensact_lidar::voxel::VoxelGrid;
use sensact_lidar::PointCloud;
use sensact_math::metrics::Aabb;

/// One detection: class, box and confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection3d {
    /// Predicted class.
    pub class: ObjectClass,
    /// Predicted box.
    pub aabb: Aabb,
    /// Confidence score (higher = more confident).
    pub score: f64,
}

/// Backbone capacity tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorStage {
    /// Voxel-only single stage (SECOND-like).
    SingleStage,
    /// Point-refined two stage (PV-RCNN-like).
    TwoStage,
}

/// The detector.
#[derive(Debug, Clone)]
pub struct Detector {
    stage: DetectorStage,
    /// Minimum voxels per cluster to emit a detection.
    pub min_cluster: usize,
}

impl Detector {
    /// Single-stage (SECOND-like) detector.
    pub fn second_like() -> Self {
        Detector {
            stage: DetectorStage::SingleStage,
            min_cluster: 2,
        }
    }

    /// Two-stage (PV-RCNN-like) detector.
    pub fn pvrcnn_like() -> Self {
        Detector {
            stage: DetectorStage::TwoStage,
            min_cluster: 2,
        }
    }

    /// The capacity tier.
    pub fn stage(&self) -> DetectorStage {
        self.stage
    }

    /// Detect objects in an occupancy grid. `points` (the raw observed
    /// returns) enables the two-stage refinement; the single stage ignores it.
    pub fn detect(&self, grid: &VoxelGrid, points: Option<&PointCloud>) -> Vec<Detection3d> {
        let clusters = cluster_objects(grid);
        let mut detections = Vec::new();
        let mut structures: Vec<Aabb> = Vec::new();
        for cluster in clusters {
            if cluster.len() < self.min_cluster {
                continue;
            }
            match classify(&cluster, grid) {
                Some(Classified::Object(mut det)) => {
                    if self.stage == DetectorStage::TwoStage {
                        if let Some(cloud) = points {
                            refine_with_points(&mut det, cloud);
                        }
                    }
                    detections.push(det);
                }
                Some(Classified::Structure(bbox)) => structures.push(bbox),
                None => {}
            }
        }
        // Class-aware non-maximum suppression: cluster splits (body/roof) or
        // partially-connected fragments produce duplicate detections of one
        // object; keep the highest-scoring detection per neighborhood.
        detections = nms(detections);
        // Structure-proximity suppression: person-sized fragments broken off
        // a façade by masking gaps imitate pedestrians/cyclists; anything
        // that small sitting against structure is discarded.
        detections.retain(|d| {
            if d.class == ObjectClass::Car {
                return true;
            }
            let c = d.aabb.center();
            !structures.iter().any(|s| {
                let dx = (c[0] - s.min[0].max(c[0].min(s.max[0]))).abs();
                let dy = (c[1] - s.min[1].max(c[1].min(s.max[1]))).abs();
                dx.hypot(dy) < 1.5
            })
        });
        detections
    }
}

/// Diagnostic: describe every cluster and its classification decision.
#[doc(hidden)]
pub fn debug_clusters(grid: &VoxelGrid) -> Vec<String> {
    cluster_objects(grid)
        .into_iter()
        .map(|cluster| {
            let n = cluster.len();
            let (mut min_x, mut max_x) = (usize::MAX, 0usize);
            let (mut min_y, mut max_y) = (usize::MAX, 0usize);
            let mut max_z = 0usize;
            for &(ix, iy, iz) in &cluster {
                min_x = min_x.min(ix);
                max_x = max_x.max(ix);
                min_y = min_y.min(iy);
                max_y = max_y.max(iy);
                max_z = max_z.max(iz);
            }
            let vs = grid.config().voxel_size;
            let cx = grid.config().min[0] + (min_x + max_x + 1) as f64 / 2.0 * vs;
            let cy = grid.config().min[1] + (min_y + max_y + 1) as f64 / 2.0 * vs;
            let verdict = match classify(&cluster, grid) {
                Some(Classified::Object(d)) => format!("{:?} score {:.2}", d.class, d.score),
                Some(Classified::Structure(_)) => "STRUCTURE".to_string(),
                None => "rejected".to_string(),
            };
            format!(
                "cluster n={n} at ({cx:.1},{cy:.1}) ext {:.1}x{:.1} maxz {max_z} -> {verdict}",
                (max_x - min_x + 1) as f64 * vs,
                (max_y - min_y + 1) as f64 * vs
            )
        })
        .collect()
}

/// Class-aware center-distance NMS: within each class, suppress detections
/// whose center lies within the class radius of a higher-scoring detection.
fn nms(mut detections: Vec<Detection3d>) -> Vec<Detection3d> {
    detections.sort_by(|a, b| b.score.total_cmp(&a.score));
    let radius = |class: ObjectClass| match class {
        ObjectClass::Car => 2.5,
        ObjectClass::Cyclist => 1.4,
        _ => 0.9,
    };
    let mut kept: Vec<Detection3d> = Vec::with_capacity(detections.len());
    for d in detections {
        let c = d.aabb.center();
        let clash = kept.iter().any(|k| {
            if k.class != d.class {
                return false;
            }
            let kc = k.aabb.center();
            ((c[0] - kc[0]).powi(2) + (c[1] - kc[1]).powi(2)).sqrt() < radius(d.class)
        });
        if !clash {
            kept.push(d);
        }
    }
    kept
}

/// Ground-filtered 26-connected components over occupied voxels: bottom-layer
/// voxels whose column holds nothing above are treated as ground and removed
/// before clustering.
fn cluster_objects(grid: &VoxelGrid) -> Vec<Vec<(usize, usize, usize)>> {
    let (nx, ny, nz) = grid.dims();
    let mut column_has_above = vec![false; nx * ny];
    for (ix, iy, iz) in grid.occupied_voxels() {
        if iz > 0 {
            column_has_above[iy * nx + ix] = true;
        }
    }
    let keep = |ix: usize, iy: usize, iz: usize| -> bool {
        grid.occupied(ix, iy, iz) && (iz > 0 || column_has_above[iy * nx + ix])
    };

    let flat = |ix: usize, iy: usize, iz: usize| (iz * ny + iy) * nx + ix;
    let mut visited = vec![false; nx * ny * nz];
    let mut clusters = Vec::new();
    for (sx, sy, sz) in grid.occupied_voxels() {
        if !keep(sx, sy, sz) || visited[flat(sx, sy, sz)] {
            continue;
        }
        visited[flat(sx, sy, sz)] = true;
        let mut stack = vec![(sx, sy, sz)];
        let mut voxels = Vec::new();
        while let Some((cx, cy, cz)) = stack.pop() {
            voxels.push((cx, cy, cz));
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let nx_i = cx as i64 + dx;
                        let ny_i = cy as i64 + dy;
                        let nz_i = cz as i64 + dz;
                        if nx_i < 0
                            || ny_i < 0
                            || nz_i < 0
                            || nx_i >= nx as i64
                            || ny_i >= ny as i64
                            || nz_i >= nz as i64
                        {
                            continue;
                        }
                        let (ux, uy, uz) = (nx_i as usize, ny_i as usize, nz_i as usize);
                        if keep(ux, uy, uz) && !visited[flat(ux, uy, uz)] {
                            visited[flat(ux, uy, uz)] = true;
                            stack.push((ux, uy, uz));
                        }
                    }
                }
            }
        }
        clusters.push(voxels);
    }
    clusters
}

/// Classification outcome of one cluster.
enum Classified {
    /// A detectable object.
    Object(Detection3d),
    /// Static structure (building façade) — kept for proximity suppression.
    Structure(Aabb),
}

/// Classify a cluster and produce a detection.
///
/// LiDAR only lights the sensor-facing surface of an object, so a cluster's
/// extent *along* the viewing ray is truncated and its centroid is biased
/// toward the sensor. Classification therefore looks at the cross-radial
/// extent (reliable) in addition to the total footprint, and the box center
/// is pushed back along the ray by half the unobserved depth of the chosen
/// class template.
fn classify(cluster: &[(usize, usize, usize)], grid: &VoxelGrid) -> Option<Classified> {
    let cfg = grid.config();
    let vs = cfg.voxel_size;
    let (mut min_x, mut max_x) = (usize::MAX, 0usize);
    let (mut min_y, mut max_y) = (usize::MAX, 0usize);
    let mut max_z = 0usize;
    let mut cx = 0.0;
    let mut cy = 0.0;
    for &(ix, iy, iz) in cluster {
        min_x = min_x.min(ix);
        max_x = max_x.max(ix);
        min_y = min_y.min(iy);
        max_y = max_y.max(iy);
        max_z = max_z.max(iz);
        let c = cfg.center_of(ix, iy, iz);
        cx += c[0];
        cy += c[1];
    }
    cx /= cluster.len() as f64;
    cy /= cluster.len() as f64;
    let ext_x = (max_x - min_x + 1) as f64 * vs;
    let ext_y = (max_y - min_y + 1) as f64 * vs;
    let long = ext_x.max(ext_y);
    let short = ext_x.min(ext_y);

    // Radial / cross-radial extents of the lit surface.
    let r = cx.hypot(cy).max(1e-6);
    let radial = [cx / r, cy / r];
    let cross = [-radial[1], radial[0]];
    let mut rmin = f64::INFINITY;
    let mut rmax = f64::NEG_INFINITY;
    let mut cmin = f64::INFINITY;
    let mut cmax = f64::NEG_INFINITY;
    for &(ix, iy, iz) in cluster {
        let c = cfg.center_of(ix, iy, iz);
        let tr = c[0] * radial[0] + c[1] * radial[1];
        let tc = c[0] * cross[0] + c[1] * cross[1];
        rmin = rmin.min(tr);
        rmax = rmax.max(tr);
        cmin = cmin.min(tc);
        cmax = cmax.max(tc);
    }
    let ext_r = rmax - rmin + vs;
    let ext_c = cmax - cmin + vs;

    // Structure rejection: building façades are oversized in footprint OR
    // reach the top of the grid (cars top out at ~1.7 m, pedestrians at
    // ~2 m; walls fill the z range). Fragmented walls under masking would
    // otherwise imitate car footprints.
    let top_m = (max_z as f64 + 1.0) * vs + cfg.min[2];
    let footprint = Aabb::new(
        [
            cfg.min[0] + min_x as f64 * vs,
            cfg.min[1] + min_y as f64 * vs,
            cfg.min[2],
        ],
        [
            cfg.min[0] + (max_x + 1) as f64 * vs,
            cfg.min[1] + (max_y + 1) as f64 * vs,
            top_m,
        ],
    );
    if long > 8.0 || short > 4.0 || top_m > 2.6 {
        return Some(Classified::Structure(footprint));
    }
    // Wall-profile rejection: a near façade fragment is occupied through the
    // visible z range (3+ layers per footprint column), while cars show at
    // most two (body + roof). Applies only to car-sized clusters —
    // pedestrians/cyclists are legitimately tall and thin.
    let mut columns: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for &(ix, iy, _) in cluster {
        *columns.entry((ix, iy)).or_insert(0) += 1;
    }
    let mean_depth = cluster.len() as f64 / columns.len().max(1) as f64;
    if long >= 2.8 && mean_depth >= 2.75 {
        return Some(Classified::Structure(footprint));
    }
    // Classification: a side-viewed car shows its length; an end-on car shows
    // only its ~1.8 m-wide tail — wider across the ray than a pedestrian and,
    // unlike pedestrians/cyclists (~1.75 m tall), no taller than ~1.6 m.
    let tall = (max_z as f64 + 1.0) * vs + cfg.min[2] > 1.7;
    let end_on_car = !tall && ext_c >= 1.4 && ext_r < 2.8;
    let class = if long >= 2.8 || end_on_car {
        ObjectClass::Car
    } else if long >= 1.4 {
        ObjectClass::Cyclist
    } else {
        ObjectClass::Pedestrian
    };
    let nominal = class.nominal_size();
    // Template orientation: along the footprint's long axis, except for an
    // end-on car whose hidden length runs along the viewing ray.
    let long_on_x = if end_on_car && long < 2.8 {
        radial[0].abs() >= radial[1].abs()
    } else {
        ext_x >= ext_y
    };
    let (sx, sy) = if long_on_x {
        (nominal[0], nominal[1])
    } else {
        (nominal[1], nominal[0])
    };
    // Shadow de-bias: push the center away from the sensor by half the
    // unobserved depth of the template.
    let tmpl_r = sx * radial[0].abs() + sy * radial[1].abs();
    let shift = ((tmpl_r - ext_r) / 2.0).clamp(0.0, tmpl_r / 2.0);
    let cx = cx + shift * radial[0];
    let cy = cy + shift * radial[1];
    let aabb = Aabb::from_center_size([cx, cy, nominal[2] / 2.0], [sx, sy, nominal[2]]);

    // Confidence: cross-extent-template agreement × voxel support. The
    // cross-radial extent is the shadow-free measurement.
    let expected_c = (sx * cross[0].abs() + sy * cross[1].abs()).max(vs);
    let ratio = (ext_c / (expected_c + vs)).min((expected_c + vs) / ext_c);
    let support = 1.0 - (-(cluster.len() as f64) / 4.0).exp();
    Some(Classified::Object(Detection3d {
        class,
        aabb,
        score: ratio * support,
    }))
}

/// Two-stage refinement: re-center (and for well-supported clusters,
/// re-size) the box from raw points inside the dilated proposal.
fn refine_with_points(det: &mut Detection3d, cloud: &PointCloud) {
    let dilate = 0.6;
    let region = Aabb::new(
        [
            det.aabb.min[0] - dilate,
            det.aabb.min[1] - dilate,
            det.aabb.min[2] - dilate,
        ],
        [
            det.aabb.max[0] + dilate,
            det.aabb.max[1] + dilate,
            det.aabb.max[2] + dilate,
        ],
    );
    let inside: Vec<[f64; 3]> = cloud
        .iter()
        .filter(|p| region.contains(p.position()))
        .map(|p| p.position())
        .collect();
    if inside.len() < 3 {
        return; // no point support (masked region) — keep the proposal
    }
    let n = inside.len() as f64;
    let px = inside.iter().map(|p| p[0]).sum::<f64>() / n;
    let py = inside.iter().map(|p| p[1]).sum::<f64>() / n;
    let old = det.aabb.center();
    let size = [
        det.aabb.max[0] - det.aabb.min[0],
        det.aabb.max[1] - det.aabb.min[1],
        det.aabb.max[2] - det.aabb.min[2],
    ];
    // Cars suffer shadow bias: their points lie on the sensor-facing surface,
    // so pulling the center to the point centroid would undo the proposal's
    // radial de-bias. Refine cars only across the viewing ray; small objects
    // (shallower than a voxel) refine fully.
    let (cx, cy) = if det.class == ObjectClass::Car {
        let r = old[0].hypot(old[1]).max(1e-6);
        let cross = [-old[1] / r, old[0] / r];
        let delta_c = (px - old[0]) * cross[0] + (py - old[1]) * cross[1];
        (old[0] + delta_c * cross[0], old[1] + delta_c * cross[1])
    } else {
        (px, py)
    };
    det.aabb = Aabb::from_center_size([cx, cy, size[2] / 2.0], size);
    // Point support sharpens confidence.
    det.score = (det.score * 1.2 + 0.1 * (1.0 - (-n / 10.0).exp())).min(1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensact_lidar::raycast::{Lidar, LidarConfig};
    use sensact_lidar::scene::{Scene, SceneGenerator, SceneObject};
    use sensact_lidar::voxel::VoxelizerConfig;
    use sensact_math::metrics::iou_aabb;

    fn fine_grid() -> VoxelizerConfig {
        VoxelizerConfig {
            min: [0.0, -14.4, 0.0],
            max: [48.0, 14.4, 3.2],
            voxel_size: 0.8,
        }
    }

    fn scan_scene(scene: &Scene) -> PointCloud {
        Lidar::new(LidarConfig::default()).scan(scene)
    }

    fn single_object_scene(class: ObjectClass, center: [f64; 3]) -> Scene {
        let size = class.nominal_size();
        Scene::from_objects(vec![SceneObject::new(
            class,
            Aabb::from_center_size([center[0], center[1], size[2] / 2.0], size),
        )])
    }

    #[test]
    fn detects_single_car() {
        let scene = single_object_scene(ObjectClass::Car, [12.0, 0.0, 0.0]);
        let cloud = scan_scene(&scene);
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        let dets = Detector::second_like().detect(&grid, None);
        let cars: Vec<_> = dets
            .iter()
            .filter(|d| d.class == ObjectClass::Car)
            .collect();
        assert!(!cars.is_empty(), "no car detected; got {dets:?}");
        let gt = &scene.objects()[0].aabb;
        let best = cars
            .iter()
            .map(|d| iou_aabb(&d.aabb, gt))
            .fold(0.0f64, f64::max);
        // Single-stage localization is quantization/shadow limited (that is
        // the SECOND-vs-PV-RCNN gap Table I shows); 0.2 IoU at 0.8 m voxels.
        assert!(best > 0.2, "best car IoU {best}");
    }

    #[test]
    fn detects_pedestrian_with_sensible_center() {
        let scene = single_object_scene(ObjectClass::Pedestrian, [10.0, 3.0, 0.0]);
        let cloud = scan_scene(&scene);
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        let dets = Detector::second_like().detect(&grid, None);
        assert!(!dets.is_empty(), "nothing detected");
        let d = &dets[0];
        let c = d.aabb.center();
        let err = ((c[0] - 10.0f64).powi(2) + (c[1] - 3.0).powi(2)).sqrt();
        assert!(err < 1.2, "center error {err} for {d:?}");
    }

    #[test]
    fn two_stage_refines_center_with_points() {
        let scene = single_object_scene(ObjectClass::Pedestrian, [10.0, 3.0, 0.0]);
        let cloud = scan_scene(&scene);
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        let d1 = Detector::second_like().detect(&grid, None);
        let d2 = Detector::pvrcnn_like().detect(&grid, Some(&cloud));
        assert!(!d1.is_empty() && !d2.is_empty());
        let err = |d: &Detection3d| {
            let c = d.aabb.center();
            ((c[0] - 10.0f64).powi(2) + (c[1] - 3.0).powi(2)).sqrt()
        };
        let e1 = d1.iter().map(err).fold(f64::INFINITY, f64::min);
        let e2 = d2.iter().map(err).fold(f64::INFINITY, f64::min);
        assert!(e2 <= e1 + 1e-9, "refined {e2} vs raw {e1}");
        assert!(e2 < 0.5, "refined center error {e2}");
    }

    #[test]
    fn ground_only_grid_yields_nothing() {
        let cloud = scan_scene(&Scene::new());
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        let dets = Detector::second_like().detect(&grid, None);
        assert!(dets.is_empty(), "ground misdetected: {dets:?}");
    }

    #[test]
    fn buildings_are_not_reported() {
        let scene = single_object_scene(ObjectClass::Building, [20.0, 10.0, 0.0]);
        let cloud = scan_scene(&scene);
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        let dets = Detector::second_like().detect(&grid, None);
        assert!(
            dets.iter()
                .all(|d| d.class != ObjectClass::Car || d.score < 0.9),
            "building produced confident car: {dets:?}"
        );
    }

    #[test]
    fn full_scene_detects_most_cars() {
        let scene = SceneGenerator::new(5).generate();
        let cloud = scan_scene(&scene);
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        let dets = Detector::pvrcnn_like().detect(&grid, Some(&cloud));
        let gt_cars = scene.ground_truth(ObjectClass::Car);
        // Count visible GT cars (inside the region, with real point support —
        // the KITTI "DontCare" rule) matched within 1.5 m.
        let in_region = |b: &Aabb| {
            let c = b.center();
            c[0] < 48.0 && c[1].abs() < 14.4 && cloud.points_in(b) >= 20
        };
        let matched = gt_cars
            .iter()
            .filter(|gt| in_region(gt))
            .filter(|gt| {
                dets.iter().any(|d| {
                    let dc = d.aabb.center();
                    let gc = gt.center();
                    ((dc[0] - gc[0]).powi(2) + (dc[1] - gc[1]).powi(2)).sqrt() < 1.5
                })
            })
            .count();
        let total = gt_cars.iter().filter(|gt| in_region(gt)).count();
        assert!(
            matched * 2 >= total,
            "matched only {matched}/{total} in-region cars"
        );
    }

    #[test]
    fn scores_in_unit_interval() {
        let scene = SceneGenerator::new(6).generate();
        let cloud = scan_scene(&scene);
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        for d in Detector::pvrcnn_like().detect(&grid, Some(&cloud)) {
            assert!((0.0..=1.0).contains(&d.score), "score {}", d.score);
        }
    }

    #[test]
    fn min_cluster_filters_specks() {
        let scene = single_object_scene(ObjectClass::Pedestrian, [10.0, 3.0, 0.0]);
        let cloud = scan_scene(&scene);
        let grid = VoxelGrid::from_cloud(fine_grid(), &cloud);
        let mut detector = Detector::second_like();
        detector.min_cluster = 1000;
        assert!(detector.detect(&grid, None).is_empty());
    }
}
