//! Masked-occupancy pre-training strategies (Table I rows).
//!
//! All variants train the same autoencoder to reconstruct full occupancy from
//! a masked view; they differ in the masking *distribution*:
//!
//! * [`Strategy::UniformMae`] — OccMAE-style: uniform random voxel masking.
//! * [`Strategy::AlsoLike`] — ALSO-style: milder uniform masking (the method
//!   learns from a denser self-supervision signal).
//! * [`Strategy::RadialMae`] — the paper's R-MAE: two-stage radial masking of
//!   the *rays*, matching exactly the masked-firing distribution the sensor
//!   uses at deployment — which is why it transfers best.

use crate::model::RmaeModel;
use sensact_lidar::mask::{RadialMask, RadialMaskConfig};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::Scene;
use sensact_lidar::voxel::VoxelGrid;
use sensact_lidar::PointCloud;
use sensact_math::rng::StdRng;
use sensact_nn::optim::Adam;

/// Pre-training masking strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No pre-training: the pipeline runs on the raw sparse scan.
    None,
    /// OccMAE-style uniform random voxel masking (keep ≈ 30 %).
    UniformMae,
    /// ALSO-style milder uniform masking (keep ≈ 50 %).
    AlsoLike,
    /// R-MAE two-stage radial ray masking (keep ≈ 10 %, matches deployment).
    RadialMae,
}

impl Strategy {
    /// All Table I variants in row order.
    pub fn table1_rows() -> [Strategy; 4] {
        [
            Strategy::None,
            Strategy::UniformMae,
            Strategy::AlsoLike,
            Strategy::RadialMae,
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::None => "baseline",
            Strategy::UniformMae => "+OccMAE",
            Strategy::AlsoLike => "+ALSO",
            Strategy::RadialMae => "+R-MAE",
        };
        write!(f, "{s}")
    }
}

/// Apply the deployment-time radial mask to a full scan (equivalent to masked
/// firing: stage 1 on azimuth segments, stage 2 Bernoulli on per-return range).
pub fn radial_masked_cloud(full: &PointCloud, seed: u64) -> PointCloud {
    let mut mask = RadialMask::sample(RadialMaskConfig::default(), 512, seed);
    full.iter()
        .filter(|p| mask.fire(p.azimuth, p.range))
        .copied()
        .collect()
}

/// Uniform per-pulse masking at a fixed keep probability — the DESIGN.md §5
/// ablation baseline for the two-stage radial mask (same expected coverage,
/// no angular structure, no range awareness).
pub fn uniform_masked_cloud(full: &PointCloud, keep: f64, seed: u64) -> PointCloud {
    let mut mask = sensact_lidar::mask::UniformMask::new(keep, seed);
    full.iter().filter(|_| mask.fire()).copied().collect()
}

/// Masked-occupancy pre-trainer.
pub struct Pretrainer {
    model: RmaeModel,
    strategy: Strategy,
    rng: StdRng,
    lidar: Lidar,
    opt: Adam,
}

impl Pretrainer {
    /// Wrap a model with a strategy and a seed for mask sampling.
    pub fn new(model: RmaeModel, strategy: Strategy, seed: u64) -> Self {
        Pretrainer {
            model,
            strategy,
            rng: StdRng::seed_from_u64(seed),
            lidar: Lidar::new(LidarConfig::default()),
            opt: Adam::new(0.005),
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Consume into the trained model.
    pub fn into_model(self) -> RmaeModel {
        self.model
    }

    /// Borrow the model (e.g. for reconstruction probes during training).
    pub fn model_mut(&mut self) -> &mut RmaeModel {
        &mut self.model
    }

    /// Build the (masked input, full target) occupancy pair for one scene
    /// under the strategy. `Strategy::None` returns the sparse radial view as
    /// both input and "reconstruction" (no model involved downstream).
    pub fn masked_pair(&mut self, full_cloud: &PointCloud) -> (Vec<f64>, Vec<f64>) {
        let grid_cfg = self.model.config().grid;
        let full_grid = VoxelGrid::from_cloud(grid_cfg, full_cloud);
        let full_flat = full_grid.occupancy_flat();
        let masked_flat = match self.strategy {
            Strategy::None | Strategy::RadialMae => {
                let seed = self.rng.random::<u64>();
                let masked = radial_masked_cloud(full_cloud, seed);
                VoxelGrid::from_cloud(grid_cfg, &masked).occupancy_flat()
            }
            Strategy::UniformMae => self.uniform_masked(&full_flat, 0.30),
            Strategy::AlsoLike => self.uniform_masked(&full_flat, 0.50),
        };
        (masked_flat, full_flat)
    }

    fn uniform_masked(&mut self, full: &[f64], keep: f64) -> Vec<f64> {
        full.iter()
            .map(|&v| {
                if v > 0.0 && self.rng.random::<f64>() < keep {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Pre-train on a set of scenes for `epochs` passes. Returns the mean
    /// loss of the final epoch (0.0 for `Strategy::None`, which has nothing
    /// to train).
    pub fn train(&mut self, scenes: &[Scene], epochs: usize) -> f64 {
        if self.strategy == Strategy::None || scenes.is_empty() {
            return 0.0;
        }
        // Scans are deterministic per scene; compute once.
        let clouds: Vec<PointCloud> = scenes.iter().map(|s| self.lidar.scan(s)).collect();
        let mut last_epoch_mean = 0.0;
        for _epoch in 0..epochs {
            let mut sum = 0.0;
            for cloud in &clouds {
                let (masked, full) = self.masked_pair(cloud);
                sum += self.model.train_step(&masked, &full, &mut self.opt);
            }
            last_epoch_mean = sum / clouds.len() as f64;
        }
        last_epoch_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RmaeConfig;
    use sensact_lidar::scene::SceneGenerator;

    fn scan_one(seed: u64) -> PointCloud {
        let scene = SceneGenerator::new(seed).generate();
        Lidar::new(LidarConfig::default()).scan(&scene)
    }

    #[test]
    fn radial_masked_cloud_keeps_small_fraction() {
        let full = scan_one(1);
        let masked = radial_masked_cloud(&full, 0);
        let ratio = masked.len() as f64 / full.len() as f64;
        assert!((0.02..0.25).contains(&ratio), "kept ratio {ratio}");
    }

    #[test]
    fn masked_pair_shapes_match_grid() {
        let mut t = Pretrainer::new(
            RmaeModel::new(RmaeConfig::small(), 0),
            Strategy::RadialMae,
            0,
        );
        let full = scan_one(2);
        let (masked, target) = t.masked_pair(&full);
        assert_eq!(masked.len(), 256);
        assert_eq!(target.len(), 256);
        // Masked occupancy is a subset of the target occupancy.
        for (m, t) in masked.iter().zip(&target) {
            assert!(*m <= *t, "masked voxel occupied where target empty");
        }
        let kept: f64 = masked.iter().sum();
        let total: f64 = target.iter().sum();
        assert!(kept < total, "mask removed nothing");
    }

    #[test]
    fn uniform_strategies_keep_expected_ratio() {
        let full = scan_one(3);
        for (strategy, keep) in [(Strategy::UniformMae, 0.30), (Strategy::AlsoLike, 0.50)] {
            let mut t = Pretrainer::new(RmaeModel::new(RmaeConfig::small(), 0), strategy, 7);
            let (masked, target) = t.masked_pair(&full);
            let ratio = masked.iter().sum::<f64>() / target.iter().sum::<f64>();
            assert!(
                (ratio - keep).abs() < 0.17,
                "{strategy}: kept {ratio} expected {keep}"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let scenes = SceneGenerator::new(10).generate_many(4);
        let mut t = Pretrainer::new(
            RmaeModel::new(RmaeConfig::small(), 1),
            Strategy::RadialMae,
            1,
        );
        let first = t.train(&scenes, 1);
        let later = t.train(&scenes, 6);
        assert!(later < first, "first {first} later {later}");
    }

    #[test]
    fn none_strategy_trains_nothing() {
        let scenes = SceneGenerator::new(10).generate_many(2);
        let mut t = Pretrainer::new(RmaeModel::new(RmaeConfig::small(), 1), Strategy::None, 1);
        assert_eq!(t.train(&scenes, 3), 0.0);
    }

    #[test]
    fn radial_pretraining_beats_mismatched_on_radial_eval() {
        // The Table I mechanism: a model pre-trained under the deployment
        // masking distribution reconstructs deployment inputs better.
        let scenes = SceneGenerator::new(20).generate_many(6);
        let epochs = 12;
        let mut radial = Pretrainer::new(
            RmaeModel::new(RmaeConfig::small(), 5),
            Strategy::RadialMae,
            5,
        );
        radial.train(&scenes, epochs);
        let mut uniform = Pretrainer::new(
            RmaeModel::new(RmaeConfig::small(), 5),
            Strategy::UniformMae,
            5,
        );
        uniform.train(&scenes, epochs);

        // Evaluate on a fresh scene with radial masking.
        let lidar = Lidar::new(LidarConfig::default());
        let eval_scene = SceneGenerator::new(99).generate();
        let full = lidar.scan(&eval_scene);
        let masked = radial_masked_cloud(&full, 123);
        let grid_cfg = radial.model_mut().config().grid;
        let masked_flat = VoxelGrid::from_cloud(grid_cfg, &masked).occupancy_flat();
        let full_flat = VoxelGrid::from_cloud(grid_cfg, &full).occupancy_flat();

        let iou_radial = radial
            .model_mut()
            .reconstruction_iou(&masked_flat, &full_flat, 0.5);
        let iou_uniform = uniform
            .model_mut()
            .reconstruction_iou(&masked_flat, &full_flat, 0.5);
        assert!(
            iou_radial > iou_uniform - 0.02,
            "radial {iou_radial} vs uniform {iou_uniform}"
        );
        assert!(
            iou_radial > 0.2,
            "radial reconstruction too weak: {iou_radial}"
        );
    }

    #[test]
    fn strategy_display_rows() {
        assert_eq!(Strategy::RadialMae.to_string(), "+R-MAE");
        assert_eq!(Strategy::table1_rows().len(), 4);
    }
}
