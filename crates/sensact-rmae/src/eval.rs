//! Table I / Table II evaluation harness pieces.
//!
//! The pipeline under evaluation is the paper's deployment path: radially
//! masked sparse scan → (optional) occupancy reconstruction → detection, with
//! AP measured per class against the scene's ground truth.
//!
//! Matching uses a center-distance criterion (nuScenes-style) rather than
//! strict KITTI IoU: at our 0.8 m voxel resolution, box-IoU thresholds would
//! measure quantization noise rather than detection quality. The *relative*
//! ordering of pre-training schemes — Table I's content — is preserved.

use crate::detect::{Detection3d, Detector};
use crate::model::RmaeModel;
use crate::pretrain::{radial_masked_cloud, Pretrainer, Strategy};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::{ObjectClass, Scene};
use sensact_lidar::voxel::VoxelGrid;
use sensact_math::metrics::{average_precision, Aabb, Detection};

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Pre-training epochs.
    pub pretrain_epochs: usize,
    /// Occupancy threshold for turning decoder probabilities into voxels.
    pub occupancy_threshold: f64,
    /// Match radius (metres) for cars.
    pub car_match_m: f64,
    /// Match radius (metres) for pedestrians and cyclists.
    pub small_match_m: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            pretrain_epochs: 10,
            occupancy_threshold: 0.5,
            car_match_m: 2.0,
            small_match_m: 1.0,
        }
    }
}

/// One Table I row: per-class AP (fractions in `[0, 1]`) plus the raw
/// occupancy-reconstruction IoU of the pre-trained model (0 for the
/// no-pre-training baseline) — the direct measure of pre-training quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApRow {
    /// Pre-training strategy of this row.
    pub strategy: Strategy,
    /// AP for cars.
    pub car: f64,
    /// AP for pedestrians.
    pub pedestrian: f64,
    /// AP for cyclists.
    pub cyclist: f64,
    /// Mean raw reconstruction IoU against the full scan (0 when no model).
    pub recon_iou: f64,
}

impl ApRow {
    /// Mean AP over the three classes.
    pub fn mean(&self) -> f64 {
        (self.car + self.pedestrian + self.cyclist) / 3.0
    }
}

impl std::fmt::Display for ApRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10}  Car {:5.1}  Pedestrian {:5.1}  Cyclist {:5.1}  recon-IoU {:.3}",
            self.strategy.to_string(),
            self.car * 100.0,
            self.pedestrian * 100.0,
            self.cyclist * 100.0,
            self.recon_iou
        )
    }
}

/// Average precision with greedy center-distance matching: a prediction is a
/// true positive if an unclaimed ground-truth center lies within `max_dist`
/// (horizontal distance).
pub fn ap_at_center_distance(
    predictions: &[Detection3d],
    ground_truth: &[Aabb],
    max_dist: f64,
) -> f64 {
    let mut order: Vec<usize> = (0..predictions.len()).collect();
    order.sort_by(|&a, &b| {
        predictions[b]
            .score
            .partial_cmp(&predictions[a].score)
            .unwrap()
    });
    let mut claimed = vec![false; ground_truth.len()];
    let mut dets = Vec::with_capacity(predictions.len());
    for &pi in &order {
        let pc = predictions[pi].aabb.center();
        let mut best = f64::INFINITY;
        let mut best_gt = None;
        for (gi, gt) in ground_truth.iter().enumerate() {
            if claimed[gi] {
                continue;
            }
            let gc = gt.center();
            let d = ((pc[0] - gc[0]).powi(2) + (pc[1] - gc[1]).powi(2)).sqrt();
            if d < best {
                best = d;
                best_gt = Some(gi);
            }
        }
        let tp = best <= max_dist && best_gt.is_some();
        if tp {
            claimed[best_gt.unwrap()] = true;
        }
        dets.push(Detection {
            score: predictions[pi].score,
            true_positive: tp,
        });
    }
    average_precision(&dets, ground_truth.len())
}

/// Run the full pipeline for one (strategy, detector) cell of Table I.
///
/// Pre-trains on `train_scenes` (skipped for [`Strategy::None`]), then
/// evaluates AP over `eval_scenes` with radially masked scans.
pub fn evaluate_cell(
    strategy: Strategy,
    detector: &Detector,
    train_scenes: &[Scene],
    eval_scenes: &[Scene],
    config: &PipelineConfig,
    seed: u64,
) -> ApRow {
    let lidar = Lidar::new(LidarConfig::default());
    let rmae_config = crate::model::RmaeConfig::full();

    let mut model: Option<RmaeModel> = if strategy == Strategy::None {
        None
    } else {
        let mut trainer = Pretrainer::new(RmaeModel::new(rmae_config, seed), strategy, seed);
        trainer.train(train_scenes, config.pretrain_epochs);
        Some(trainer.into_model())
    };

    // Per-class accumulation across scenes.
    let mut preds: [Vec<Detection3d>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut gts: [Vec<Aabb>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let classes = ObjectClass::detection_classes();

    let mut iou_sum = 0.0;
    for (i, scene) in eval_scenes.iter().enumerate() {
        let full = lidar.scan(scene);
        let masked = radial_masked_cloud(&full, seed ^ (i as u64 + 1));
        let observed_grid = VoxelGrid::from_cloud(rmae_config.grid, &masked);
        let grid = match model.as_mut() {
            None => observed_grid,
            Some(m) => {
                let full_grid = VoxelGrid::from_cloud(rmae_config.grid, &full);
                iou_sum += m.reconstruction_iou_above_ground(
                    &observed_grid.occupancy_flat(),
                    &full_grid.occupancy_flat(),
                    0.5,
                );
                m.reconstruct_guided(&observed_grid, config.occupancy_threshold)
            }
        };
        let dets = detector.detect(&grid, Some(&masked));
        // Evaluable ground truth: inside the detection region and touched by
        // the *masked* scan (deployment protocol: the sensing budget must
        // have seen the object at all; objects in fully-masked wedges are
        // "DontCare", exactly like KITTI's unlabeled regions).
        let in_box = |b: &Aabb| {
            let c = b.center();
            c[0] >= rmae_config.grid.min[0]
                && c[0] < rmae_config.grid.max[0]
                && c[1] >= rmae_config.grid.min[1]
                && c[1] < rmae_config.grid.max[1]
        };
        let in_region =
            |b: &Aabb, min_points: usize| in_box(b) && masked.points_in(b) >= min_points;
        // Offset scene index into prediction ids is unnecessary: AP pools all
        // detections against all GT of the same class per scene; to pool
        // across scenes, shift nothing — greedy matching is done per scene
        // below instead.
        for (ci, class) in classes.iter().enumerate() {
            let class_dets: Vec<Detection3d> =
                dets.iter().filter(|d| d.class == *class).cloned().collect();
            let min_points = if *class == ObjectClass::Car { 8 } else { 4 };
            let all_gt = scene.ground_truth(*class);
            let class_gt: Vec<Aabb> = all_gt
                .iter()
                .filter(|b| in_region(b, min_points))
                .copied()
                .collect();
            // "DontCare": real objects in the region that are not evaluable
            // (too few budgeted points) — detections on them are ignored,
            // not punished as false positives.
            let ignore_gt: Vec<Aabb> = all_gt
                .iter()
                .filter(|b| in_box(b) && !in_region(b, min_points) && full.points_in(b) >= 1)
                .copied()
                .collect();
            // Match within the scene; store the matched flags and scores
            // globally by re-running the greedy matcher per scene and
            // collecting `Detection` records.
            let max_dist = if *class == ObjectClass::Car {
                config.car_match_m
            } else {
                config.small_match_m
            };
            let (scene_dets, n_gt) = match_scene(&class_dets, &class_gt, &ignore_gt, max_dist);
            preds[ci].extend(scene_dets);
            gts[ci].extend(std::iter::repeat_n(Aabb::new([0.0; 3], [0.0; 3]), n_gt));
        }
    }

    // Pooled AP: preds[ci] already carry per-scene TP flags (stored in the
    // Detection3d score sign-extension — see match_scene).
    let ap = |ci: usize| -> f64 {
        let dets: Vec<Detection> = preds[ci]
            .iter()
            .map(|d| Detection {
                score: d.score.abs(),
                true_positive: d.score >= 0.0,
            })
            .collect();
        average_precision(&dets, gts[ci].len())
    };
    ApRow {
        strategy,
        car: ap(0),
        pedestrian: ap(1),
        cyclist: ap(2),
        recon_iou: if strategy == Strategy::None {
            0.0
        } else {
            iou_sum / eval_scenes.len().max(1) as f64
        },
    }
}

/// Greedy per-scene matching; encodes the TP flag in the score's sign
/// (negative = false positive) so results can be pooled across scenes.
fn match_scene(
    dets: &[Detection3d],
    gt: &[Aabb],
    ignore: &[Aabb],
    max_dist: f64,
) -> (Vec<Detection3d>, usize) {
    let mut order: Vec<usize> = (0..dets.len()).collect();
    order.sort_by(|&a, &b| dets[b].score.total_cmp(&dets[a].score));
    let mut claimed = vec![false; gt.len()];
    let mut out = Vec::with_capacity(dets.len());
    for &di in &order {
        let pc = dets[di].aabb.center();
        let mut best = f64::INFINITY;
        let mut best_gt = None;
        for (gi, g) in gt.iter().enumerate() {
            if claimed[gi] {
                continue;
            }
            let gc = g.center();
            let d = ((pc[0] - gc[0]).powi(2) + (pc[1] - gc[1]).powi(2)).sqrt();
            if d < best {
                best = d;
                best_gt = Some(gi);
            }
        }
        let tp = best <= max_dist && best_gt.is_some();
        if tp {
            claimed[best_gt.unwrap()] = true;
        } else {
            // Detections over unscored ("DontCare") objects are dropped.
            let ignored = ignore.iter().any(|g| {
                let gc = g.center();
                ((pc[0] - gc[0]).powi(2) + (pc[1] - gc[1]).powi(2)).sqrt() <= max_dist
            });
            if ignored {
                continue;
            }
        }
        let mut d = dets[di].clone();
        // Score of exactly 0.0 counts as TP by the >= 0 rule; nudge FP scores
        // below zero even when the raw score is zero.
        d.score = if tp { d.score } else { -d.score - 1e-12 };
        out.push(d);
    }
    (out, gt.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensact_lidar::scene::{SceneConfig, SceneGenerator};

    fn det(class: ObjectClass, x: f64, y: f64, score: f64) -> Detection3d {
        let s = class.nominal_size();
        Detection3d {
            class,
            aabb: Aabb::from_center_size([x, y, s[2] / 2.0], s),
            score,
        }
    }

    #[test]
    fn center_distance_ap_perfect() {
        let gt = vec![Aabb::from_center_size([10.0, 0.0, 0.75], [4.2, 1.8, 1.5])];
        let preds = vec![det(ObjectClass::Car, 10.2, 0.1, 0.9)];
        assert!((ap_at_center_distance(&preds, &gt, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn center_distance_ap_miss() {
        let gt = vec![Aabb::from_center_size([10.0, 0.0, 0.75], [4.2, 1.8, 1.5])];
        let preds = vec![det(ObjectClass::Car, 20.0, 5.0, 0.9)];
        assert_eq!(ap_at_center_distance(&preds, &gt, 1.0), 0.0);
    }

    #[test]
    fn false_positive_ranked_above_tp_hurts() {
        let gt = vec![Aabb::from_center_size([10.0, 0.0, 0.75], [4.2, 1.8, 1.5])];
        let clean = vec![det(ObjectClass::Car, 10.0, 0.0, 0.9)];
        let noisy = vec![
            det(ObjectClass::Car, 30.0, 8.0, 0.95),
            det(ObjectClass::Car, 10.0, 0.0, 0.9),
        ];
        assert!(ap_at_center_distance(&noisy, &gt, 1.0) < ap_at_center_distance(&clean, &gt, 1.0));
    }

    #[test]
    fn match_scene_sign_encoding_roundtrip() {
        let gt = vec![Aabb::from_center_size([5.0, 0.0, 0.9], [0.6, 0.6, 1.8])];
        let dets = vec![
            det(ObjectClass::Pedestrian, 5.1, 0.0, 0.8),
            det(ObjectClass::Pedestrian, 9.0, 4.0, 0.5),
        ];
        let (out, n_gt) = match_scene(&dets, &gt, &[], 0.8);
        assert_eq!(n_gt, 1);
        let tps = out.iter().filter(|d| d.score >= 0.0).count();
        assert_eq!(tps, 1);
        let fps = out.iter().filter(|d| d.score < 0.0).count();
        assert_eq!(fps, 1);
    }

    /// A fast, reduced-size end-to-end run of one Table I cell. The full
    /// harness (with enough scenes/epochs for the AP ordering to stabilize)
    /// lives in `sensact-bench`.
    #[test]
    fn pipeline_cell_runs_and_reports_sane_rows() {
        let mut generator = SceneGenerator::with_config(
            3,
            SceneConfig {
                cars: 4,
                pedestrians: 2,
                cyclists: 2,
                buildings_per_side: 2,
                max_range: 45.0,
            },
        );
        let train = generator.generate_many(4);
        let eval = generator.generate_many(3);
        let config = PipelineConfig {
            pretrain_epochs: 4,
            ..PipelineConfig::default()
        };
        let detector = Detector::pvrcnn_like();
        let none = evaluate_cell(Strategy::None, &detector, &train, &eval, &config, 1);
        let rmae = evaluate_cell(Strategy::RadialMae, &detector, &train, &eval, &config, 1);
        // Sanity: APs are valid fractions; the baseline row has no model.
        for row in [&none, &rmae] {
            for v in [row.car, row.pedestrian, row.cyclist] {
                assert!((0.0..=1.0).contains(&v), "AP {v}");
            }
        }
        assert_eq!(none.recon_iou, 0.0);
        // Even at this tiny training budget the model reconstructs *some*
        // of the above-ground scene (the AP ordering needs the full-size
        // harness).
        assert!(rmae.recon_iou > 0.0, "recon IoU {}", rmae.recon_iou);
    }

    #[test]
    fn ap_row_display_percentages() {
        let row = ApRow {
            strategy: Strategy::RadialMae,
            car: 0.791,
            pedestrian: 0.469,
            cyclist: 0.677,
            recon_iou: 0.35,
        };
        let s = row.to_string();
        assert!(s.contains("79.1"));
        assert!(s.contains("46.9"));
        assert!((row.mean() - (0.791 + 0.469 + 0.677) / 3.0).abs() < 1e-12);
    }
}
