//! The R-MAE occupancy autoencoder.
//!
//! Architecture (paper Fig. 3): a 3-D convolutional encoder processes the
//! (masked) occupancy grid into a latent volume — skipping empty voxels, the
//! "spatially sparse" trick — and a deconvolution decoder reconstructs
//! full-resolution occupancy logits, trained with binary cross-entropy
//! weighted toward the rare occupied class.

use sensact_lidar::voxel::VoxelizerConfig;
use sensact_nn::conv::{Conv3d, Deconv3d, Dims3};
use sensact_nn::layers::{ActKind, Activation, Layer};
use sensact_nn::loss::bce_with_logits_weighted;
use sensact_nn::optim::Optimizer;
use sensact_nn::{Initializer, ModelStats, Sequential, Tensor};

/// Geometry and capacity of the autoencoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmaeConfig {
    /// Voxel region/resolution shared with the detector.
    pub grid: VoxelizerConfig,
    /// Encoder channel widths (stage 1, stage 2).
    pub channels: (usize, usize),
    /// Positive-class weight of the occupancy BCE.
    pub pos_weight: f64,
}

impl RmaeConfig {
    /// Full-size configuration used by the Table I/II harnesses:
    /// 48 × 28.8 × 3.2 m region at 0.8 m voxels → 60×36×4 grid.
    pub fn full() -> Self {
        RmaeConfig {
            grid: VoxelizerConfig {
                min: [0.0, -14.4, 0.0],
                max: [48.0, 14.4, 3.2],
                voxel_size: 0.8,
            },
            channels: (8, 16),
            pos_weight: 6.0,
        }
    }

    /// Small configuration for unit tests: 16×8×2 grid.
    pub fn small() -> Self {
        RmaeConfig {
            grid: VoxelizerConfig {
                min: [0.0, -8.0, 0.0],
                max: [32.0, 8.0, 4.0],
                voxel_size: 2.0,
            },
            channels: (4, 8),
            pos_weight: 4.0,
        }
    }

    /// Grid dims as the conv layout `(depth=z, height=y, width=x)`.
    pub fn dims3(&self) -> Dims3 {
        let (nx, ny, nz) = self.grid.dims();
        Dims3::new(nz, ny, nx)
    }

    /// Total voxel count.
    pub fn voxels(&self) -> usize {
        self.dims3().volume()
    }
}

impl Default for RmaeConfig {
    fn default() -> Self {
        RmaeConfig::full()
    }
}

/// The occupancy autoencoder.
pub struct RmaeModel {
    config: RmaeConfig,
    net: Sequential,
}

impl RmaeModel {
    /// Build the encoder/decoder for a config.
    ///
    /// # Panics
    ///
    /// Panics if the grid x/y dims are odd (the stride-2 stages require even
    /// extents).
    pub fn new(config: RmaeConfig, seed: u64) -> Self {
        let dims = config.dims3();
        assert!(
            dims.h.is_multiple_of(2) && dims.w.is_multiple_of(2),
            "grid y/x dims must be even, got {}x{}",
            dims.h,
            dims.w
        );
        let (c1, c2) = config.channels;
        let mut init = Initializer::new(seed);
        // Encoder: stride-2 downsample then a same-size stage.
        let conv1 = Conv3d::new(1, c1, 3, 2, 1, dims, &mut init);
        let mid = conv1.out_dims();
        let conv2 = Conv3d::new(c1, c2, 3, 1, 1, mid, &mut init);
        // Decoder: same-size stage then stride-2 upsample back.
        let deconv1 = Deconv3d::new(c2, c1, 3, 1, 1, mid, &mut init);
        let deconv2 = Deconv3d::new(c1, 1, 4, 2, 1, mid, &mut init);
        debug_assert_eq!(deconv2.out_dims(), dims, "decoder must restore the grid");
        let net = Sequential::new(vec![
            Box::new(conv1),
            Box::new(Activation::new(ActKind::Relu)),
            Box::new(conv2),
            Box::new(Activation::new(ActKind::Relu)),
            Box::new(deconv1),
            Box::new(Activation::new(ActKind::Relu)),
            Box::new(deconv2),
        ]);
        RmaeModel { config, net }
    }

    /// The model configuration.
    pub fn config(&self) -> &RmaeConfig {
        &self.config
    }

    /// Parameter / MAC statistics (one grid per forward pass).
    pub fn stats(&self) -> ModelStats {
        ModelStats::of(&self.net, 1)
    }

    /// Reconstruct occupancy probabilities from a (masked) occupancy buffer.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy.len()` differs from the grid voxel count.
    pub fn reconstruct(&mut self, occupancy: &[f64]) -> Vec<f64> {
        let logits = self.forward_logits(occupancy);
        logits
            .as_slice()
            .iter()
            .map(|&x| 1.0 / (1.0 + (-x).exp()))
            .collect()
    }

    fn forward_logits(&mut self, occupancy: &[f64]) -> Tensor {
        assert_eq!(
            occupancy.len(),
            self.config.voxels(),
            "occupancy buffer does not match grid"
        );
        let x = Tensor::from_vec(vec![1, occupancy.len()], occupancy.to_vec());
        self.net.forward(&x, false)
    }

    /// One training step: reconstruct `masked` toward `full`; returns the
    /// weighted-BCE loss.
    ///
    /// # Panics
    ///
    /// Panics on buffer/grid size mismatch.
    pub fn train_step(&mut self, masked: &[f64], full: &[f64], opt: &mut dyn Optimizer) -> f64 {
        assert_eq!(masked.len(), self.config.voxels(), "masked buffer size");
        assert_eq!(full.len(), self.config.voxels(), "target buffer size");
        let x = Tensor::from_vec(vec![1, masked.len()], masked.to_vec());
        let target = Tensor::from_vec(vec![1, full.len()], full.to_vec());
        let logits = self.net.forward(&x, true);
        let (loss, grad) = bce_with_logits_weighted(&logits, &target, self.config.pos_weight);
        self.net.backward(&grad);
        opt.step(&mut self.net);
        self.net.zero_grad();
        loss
    }

    /// Observation-guided reconstruction: returns a grid holding every
    /// observed voxel plus reconstructed voxels (probability above
    /// `threshold`) that have observed support in their 3-D neighborhood —
    /// for above-ground voxels the support must itself be above ground.
    ///
    /// The guidance rule keeps the decoder's strength (completing partially
    /// observed objects) while discarding its failure mode (hallucinating
    /// plausible-but-unseen surfaces that would fuse the scene into one
    /// cluster).
    pub fn reconstruct_guided(
        &mut self,
        observed: &sensact_lidar::voxel::VoxelGrid,
        threshold: f64,
    ) -> sensact_lidar::voxel::VoxelGrid {
        let probs = self.reconstruct(&observed.occupancy_flat());
        let (nx, ny, nz) = observed.dims();
        let flat = |ix: usize, iy: usize, iz: usize| (iz * ny + iy) * nx + ix;
        let mut out = vec![0.0; probs.len()];
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = flat(ix, iy, iz);
                    if observed.occupied(ix, iy, iz) {
                        out[i] = 1.0;
                        continue;
                    }
                    // Never *add* voxels in the top layer (≥ 2.4 m): no
                    // detectable object reaches it, and one hallucinated
                    // top voxel re-labels a car as structure downstream.
                    if iz + 1 == nz {
                        continue;
                    }
                    if probs[i] <= threshold {
                        continue;
                    }
                    // Bridge criterion: the reconstructed voxel must sit
                    // *between* observed evidence — at least one pair of
                    // observed neighbors in opposite directions. This lets
                    // the decoder re-connect an object fragmented by masking
                    // without dilating every surface outward (which would
                    // systematically inflate footprints by a size class).
                    let mut offsets: Vec<(i32, i32, i32)> = Vec::new();
                    for dz in -1i32..=1 {
                        for dy in -1i32..=1 {
                            for dx in -1i32..=1 {
                                if dx == 0 && dy == 0 && dz == 0 {
                                    continue;
                                }
                                let (x, y, z) = (ix as i32 + dx, iy as i32 + dy, iz as i32 + dz);
                                if x < 0
                                    || y < 0
                                    || z < 0
                                    || x >= nx as i32
                                    || y >= ny as i32
                                    || z >= nz as i32
                                {
                                    continue;
                                }
                                if iz >= 1 && z == 0 {
                                    continue;
                                }
                                if observed.occupied(x as usize, y as usize, z as usize) {
                                    offsets.push((dx, dy, dz));
                                }
                            }
                        }
                    }
                    let bridges = offsets
                        .iter()
                        .any(|&(dx, dy, dz)| offsets.contains(&(-dx, -dy, -dz)));
                    if bridges {
                        out[i] = 1.0;
                    }
                }
            }
        }
        sensact_lidar::voxel::VoxelGrid::from_occupancy_flat(self.config.grid, &out, 0.5)
    }

    /// Reconstruction quality: IoU between thresholded reconstruction and the
    /// true occupancy.
    pub fn reconstruction_iou(&mut self, masked: &[f64], full: &[f64], threshold: f64) -> f64 {
        self.recon_iou_from(masked, full, threshold, 0)
    }

    /// Reconstruction IoU restricted to above-ground layers (`z ≥ 1`) — the
    /// object-relevant measure of pre-training quality. The ground layer
    /// dominates plain IoU and its "occupancy" is sampling-limited in the
    /// reference scan, so it mostly measures how boldly a model paints
    /// ground, not how well it completes objects.
    pub fn reconstruction_iou_above_ground(
        &mut self,
        masked: &[f64],
        full: &[f64],
        threshold: f64,
    ) -> f64 {
        self.recon_iou_from(masked, full, threshold, 1)
    }

    fn recon_iou_from(
        &mut self,
        masked: &[f64],
        full: &[f64],
        threshold: f64,
        z_min: usize,
    ) -> f64 {
        let probs = self.reconstruct(masked);
        let (nx, ny, nz) = self.config.grid.dims();
        let mut inter = 0usize;
        let mut union = 0usize;
        for iz in z_min..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = (iz * ny + iy) * nx + ix;
                    let po = probs[i] > threshold;
                    let to = full[i] > 0.5;
                    if po && to {
                        inter += 1;
                    }
                    if po || to {
                        union += 1;
                    }
                }
            }
        }
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl std::fmt::Debug for RmaeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmaeModel")
            .field("grid", &self.config.grid.dims())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensact_nn::optim::Adam;

    #[test]
    fn config_dims() {
        let c = RmaeConfig::small();
        assert_eq!(c.grid.dims(), (16, 8, 2));
        assert_eq!(c.dims3(), Dims3::new(2, 8, 16));
        assert_eq!(c.voxels(), 256);
        let f = RmaeConfig::full();
        assert_eq!(f.grid.dims(), (60, 36, 4));
    }

    #[test]
    fn reconstruct_shape_and_range() {
        let mut m = RmaeModel::new(RmaeConfig::small(), 0);
        let occ = vec![0.0; 256];
        let probs = m.reconstruct(&occ);
        assert_eq!(probs.len(), 256);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn training_learns_identity_on_fixed_pattern() {
        // A single fixed occupancy pattern with half masked: the model should
        // learn to fill it in.
        let cfg = RmaeConfig::small();
        let mut m = RmaeModel::new(cfg, 1);
        let mut full = vec![0.0; cfg.voxels()];
        // An L-shaped structure.
        for (i, v) in full.iter_mut().enumerate() {
            if i % 16 < 3 || (i / 16) % 8 == 2 {
                *v = 1.0;
            }
        }
        let mut masked = full.clone();
        for (i, v) in masked.iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let mut opt = Adam::new(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..120 {
            let l = m.train_step(&masked, &full, &mut opt);
            if it == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first * 0.3, "first {first} last {last}");
        let iou = m.reconstruction_iou(&masked, &full, 0.5);
        assert!(iou > 0.8, "reconstruction IoU {iou}");
    }

    #[test]
    fn stats_report_nonzero() {
        let m = RmaeModel::new(RmaeConfig::small(), 0);
        let s = m.stats();
        assert!(s.params > 100);
        assert!(s.macs > 1000);
    }

    #[test]
    fn full_config_params_in_paper_ballpark_scale() {
        // Paper: ~830 K parameters. Our grid is coarser, so the model is
        // smaller, but it must be within two orders of magnitude.
        let m = RmaeModel::new(RmaeConfig::full(), 0);
        let p = m.stats().params;
        assert!(p > 5_000, "params {p}");
        assert!(p < 2_000_000, "params {p}");
    }

    #[test]
    #[should_panic(expected = "does not match grid")]
    fn wrong_buffer_size_panics() {
        let mut m = RmaeModel::new(RmaeConfig::small(), 0);
        let _ = m.reconstruct(&[0.0; 7]);
    }

    #[test]
    fn empty_input_reconstruction_mostly_empty_after_training_on_empty() {
        let cfg = RmaeConfig::small();
        let mut m = RmaeModel::new(cfg, 2);
        let empty = vec![0.0; cfg.voxels()];
        let mut opt = Adam::new(0.02);
        for _ in 0..60 {
            let _ = m.train_step(&empty, &empty, &mut opt);
        }
        let probs = m.reconstruct(&empty);
        let occupied = probs.iter().filter(|&&p| p > 0.5).count();
        assert!(
            occupied < cfg.voxels() / 20,
            "{occupied} voxels hallucinated"
        );
    }
}
