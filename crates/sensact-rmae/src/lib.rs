//! # sensact-rmae
//!
//! Generative sensing (paper §III): *sense less, generate more*.
//!
//! R-MAE reimagines the LiDAR–environment interaction: instead of scanning
//! the full 360° at full power, the sensor fires only a radially-masked ~10 %
//! subset of pulses and a masked occupancy autoencoder reconstructs the rest
//! of the scene. This crate implements:
//!
//! * [`model`] — the occupancy autoencoder: a strided sparse-friendly 3-D
//!   conv encoder and a deconvolution decoder trained with
//!   positively-weighted BCE (occupied voxels are rare).
//! * [`pretrain`] — masked-occupancy pre-training under the paper's masking
//!   strategy plus the OccMAE/ALSO-style baselines of Table I.
//! * [`detect`] — two voxel detectors standing in for SECOND (single-stage)
//!   and PV-RCNN (two-stage point-refined), as capacity tiers for Table I.
//! * [`eval`] — the Table I / Table II evaluation harness pieces: per-class
//!   AP of the full sparse-scan → reconstruct → detect pipeline.
//!
//! ## Example
//!
//! ```no_run
//! use sensact_rmae::{model::{RmaeConfig, RmaeModel}, pretrain::{Pretrainer, Strategy}};
//! use sensact_lidar::scene::SceneGenerator;
//!
//! let config = RmaeConfig::small();
//! let mut trainer = Pretrainer::new(RmaeModel::new(config, 0), Strategy::RadialMae, 0);
//! let scenes = SceneGenerator::new(1).generate_many(8);
//! let loss = trainer.train(&scenes, 5);
//! assert!(loss.is_finite());
//! ```

pub mod detect;
pub mod eval;
pub mod model;
pub mod pretrain;

pub use detect::{Detection3d, Detector, DetectorStage};
pub use eval::{ApRow, PipelineConfig};
pub use model::{RmaeConfig, RmaeModel};
pub use pretrain::{Pretrainer, Strategy};
