//! End-to-end checkpoint conformance: restoring a live fallible loop
//! mid-recording and replaying the tail must produce zero [`Divergence`].
//!
//! The scenario is the hardest one the checkpoint layer supports: a
//! 1000-tick run with an active fault injector (dropouts, stuck-at, latency
//! spikes, NaN poison), retry/hold/fallback recovery, an energy budget whose
//! rising pressure shifts the precision schedule from f64 into f32
//! mid-run, and trust-driven precision holds. The run is snapshotted at
//! three adversarially chosen ticks — early, exactly at the telemetry ring's
//! wrap boundary, and inside a precision hold — each checkpoint shipped
//! through its JSONL wire form, restored onto a freshly built twin, and the
//! twin replayed against the recorded tail through the replay differ.

use sensact_core::checkpoint::{Checkpoint, Section};
use sensact_core::fault::FnTryPerceptor;
use sensact_core::stage::{AlwaysTrust, FnController, FnSensor, StageContext};
use sensact_core::{
    EnergyBudget, FallibleLoop, FaultInjector, FaultProfile, Precision, PrecisionPolicy, Recording,
    RecoveryPolicy, WithFallback,
};

const TICKS: usize = 1000;
/// Telemetry ring capacity: wraps at tick 256, well inside the run.
const RING: usize = 256;
const SEED: u64 = 0x00C0_FFEE;

#[test]
fn restore_mid_recording_replays_tail_with_zero_divergence() {
    let profile = FaultProfile {
        dropout: 0.12,
        stuck: 0.05,
        latency_spike: 0.04,
        spike_latency_s: 5e-4,
        nan: 0.03,
    };
    let build = || {
        let sensor = FaultInjector::new(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                // Energy depends on the environment, so budget pressure —
                // and through it the precision schedule — is sensitive to
                // every restored bit of env and action history.
                ctx.charge(2e-4 * (1.0 + 0.1 * e.abs()), 1e-4);
                *e
            }),
            profile,
            SEED,
        );
        FallibleLoop::new(
            "ckpt-conformance",
            sensor,
            FnTryPerceptor::new(|r: &f64, _: &mut StageContext| Ok(*r)),
            AlwaysTrust,
            WithFallback::new(
                FnController::new(|f: &f64, _t, _: &mut StageContext| -0.4 * f + 0.03),
                0.0,
            ),
        )
        .with_budget(EnergyBudget::new(0.5))
        .with_recovery(RecoveryPolicy {
            max_retries: 1,
            retry_energy_j: 1e-5,
            max_hold_ticks: 2,
            staleness_decay: 0.35,
            latency_budget_s: None,
        })
        .with_precision(
            // Drift threshold 0.3: a single staleness-degraded held tick
            // (suspicion 0.35) arms the forced-f64 hold.
            PrecisionPolicy::adaptive(0.12, 0.9)
                .with_hold_ticks(4)
                .with_drift_threshold(0.3),
        )
        .with_telemetry_capacity(RING)
    };

    // Uninterrupted reference run: collect every tick record (the ring only
    // retains the last RING of them) and locate a snapshot tick that lands
    // inside a trust-drift precision hold after the schedule turned mixed.
    let mut reference = build();
    let mut env = 8.0f64;
    let mut records = Vec::with_capacity(TICKS);
    let mut hold_cut = None;
    for t in 0..TICKS {
        let out = reference.tick(&env);
        env += out.action;
        records.push(*reference.telemetry().last_record().unwrap());
        if hold_cut.is_none() && t > 2 * RING && reference.precision_governor().holding() {
            hold_cut = Some(t + 1);
        }
    }
    let hold_cut = hold_cut.expect("faulty run must arm a precision hold in the mixed era");

    // The recording is genuinely adversarial: faults fired and both f64 and
    // f32 ticks are on the schedule.
    let f64s = records
        .iter()
        .filter(|r| r.precision == Precision::F64)
        .count();
    let f32s = records
        .iter()
        .filter(|r| r.precision == Precision::F32)
        .count();
    assert!(
        f64s > 0 && f32s > 0,
        "run must mix precisions: {f64s} f64 / {f32s} f32"
    );
    assert!(
        reference.telemetry().fault_counters().faults > 0,
        "faults must fire"
    );

    // Early / ring-wrap-boundary / mid-precision-hold.
    for cut in [17, RING, hold_cut] {
        // Re-run the prefix on a fresh loop (bit-identical to the reference
        // prefix by determinism) and snapshot at the cut …
        let mut warm = build();
        let mut warm_env = 8.0f64;
        for _ in 0..cut {
            let out = warm.tick(&warm_env);
            warm_env += out.action;
        }
        let mut ckpt = warm.snapshot();
        let mut s = Section::new("env");
        s.put_f64("state", warm_env);
        ckpt.push(s);
        // … ship it through the wire, kill the loop, and restore a freshly
        // built twin from the parsed checkpoint.
        let wire = ckpt.to_jsonl();
        drop(warm);
        let ckpt = Checkpoint::from_jsonl(&wire)
            .unwrap_or_else(|e| panic!("checkpoint at tick {cut} failed to parse: {e:?}"));
        let mut resumed = build();
        resumed
            .restore(&ckpt)
            .unwrap_or_else(|e| panic!("restore at tick {cut} failed: {e:?}"));
        let mut resumed_env = ckpt.section("env").unwrap().get_f64("state").unwrap();

        // Replay the recorded tail: the differ compares every field of every
        // tick record bit-for-bit and reports the first Divergence.
        let mut tail = Recording::capture("ckpt-conformance", SEED, reference.telemetry());
        tail.ticks = records[cut..].to_vec();
        let verified = resumed
            .replay(&mut resumed_env, &tail, |e, a| *e += a)
            .unwrap_or_else(|d| panic!("tail replay after restore at tick {cut} diverged: {d:?}"));
        assert_eq!(
            verified as usize,
            TICKS - cut,
            "cut {cut} must verify the whole tail"
        );
        // And the resumed loop's final environment matches the reference's.
        assert_eq!(
            resumed_env.to_bits(),
            env.to_bits(),
            "cut {cut}: resumed environment must land bit-identically"
        );
    }
}
