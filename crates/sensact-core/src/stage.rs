//! Stage traits of a sensing-to-action loop, plus closure adapters.

use crate::precision::Precision;

/// Trust verdict from a [`Monitor`] (STARNet-style) about the current
/// sensing/feature stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trust {
    /// Features match the learned distribution.
    Trusted,
    /// Features deviate; the payload is a suspicion score in `(0, 1]`.
    Suspect(f64),
    /// Features are unusable; the controller should fail safe.
    Untrusted,
}

impl Trust {
    /// Scalar suspicion in `[0, 1]` (0 = fully trusted).
    pub fn suspicion(&self) -> f64 {
        match self {
            Trust::Trusted => 0.0,
            Trust::Suspect(s) => s.clamp(0.0, 1.0),
            Trust::Untrusted => 1.0,
        }
    }

    /// Whether the controller may act on the features at all.
    pub fn is_actionable(&self) -> bool {
        !matches!(self, Trust::Untrusted)
    }

    /// This verdict worsened by `extra` additional suspicion (e.g. staleness
    /// decay while a fallible loop holds its last good features). Saturates
    /// at [`Trust::Untrusted`] once total suspicion reaches 1.
    pub fn degraded(&self, extra: f64) -> Trust {
        let s = self.suspicion() + extra.max(0.0);
        if s >= 1.0 {
            Trust::Untrusted
        } else if s <= 0.0 {
            Trust::Trusted
        } else {
            Trust::Suspect(s)
        }
    }
}

/// Per-tick cost ledger handed to every stage.
///
/// Stages call [`StageContext::charge`] with the energy (joules) and latency
/// (seconds) they consumed; the loop accumulates these into its budget and
/// telemetry. The context also carries the tick's numeric
/// [`Precision`] mode, decided by the loop's precision governor before the
/// sense stage runs — precision-aware perceptors read it to route their
/// compute through the matching kernel family.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageContext {
    energy_j: f64,
    latency_s: f64,
    precision: Precision,
}

impl StageContext {
    /// A fresh (zero-cost) context at the default [`Precision::F64`].
    pub fn new() -> Self {
        StageContext::default()
    }

    /// The numeric precision mode stages should compute at this tick.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Set the tick's precision mode (called by the loop runner before the
    /// first stage; stages themselves should only read it).
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// Charge energy (joules) and latency (seconds) to this tick.
    ///
    /// # Panics
    ///
    /// Panics on negative charges.
    pub fn charge(&mut self, energy_j: f64, latency_s: f64) {
        assert!(energy_j >= 0.0 && latency_s >= 0.0, "negative charge");
        self.energy_j += energy_j;
        self.latency_s += latency_s;
    }

    /// Energy charged so far this tick (joules).
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Latency charged so far this tick (seconds).
    pub fn latency_s(&self) -> f64 {
        self.latency_s
    }
}

/// Acquires raw readings from the environment.
pub trait Sensor<E> {
    /// Raw sensor reading type.
    type Reading;
    /// Sense the environment, charging costs to `ctx`.
    fn sense(&mut self, env: &E, ctx: &mut StageContext) -> Self::Reading;
}

/// Extracts features from raw readings (the "learning module" front half).
pub trait Perceptor<R> {
    /// Extracted feature type.
    type Features;
    /// Turn a raw reading into features, charging costs to `ctx`.
    fn perceive(&mut self, reading: &R, ctx: &mut StageContext) -> Self::Features;
}

/// Assesses feature trustworthiness (the STARNet role, §V).
pub trait Monitor<F> {
    /// Produce a trust verdict for the current features.
    fn assess(&mut self, features: &F, ctx: &mut StageContext) -> Trust;
}

/// Maps features (and trust) to an action.
pub trait Controller<F> {
    /// Action type delivered to the actuator/environment.
    type Action;
    /// Decide an action, charging costs to `ctx`.
    fn decide(&mut self, features: &F, trust: Trust, ctx: &mut StageContext) -> Self::Action;
}

/// A monitor that always trusts — the default when no reliability layer is
/// installed.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTrust;

impl<F> Monitor<F> for AlwaysTrust {
    fn assess(&mut self, _features: &F, _ctx: &mut StageContext) -> Trust {
        Trust::Trusted
    }
}

/// Closure adapter implementing [`Sensor`].
pub struct FnSensor<F>(F);

impl<F> FnSensor<F> {
    /// Wrap a closure `(env, ctx) -> reading`.
    pub fn new(f: F) -> Self {
        FnSensor(f)
    }
}

impl<E, R, F: FnMut(&E, &mut StageContext) -> R> Sensor<E> for FnSensor<F> {
    type Reading = R;
    fn sense(&mut self, env: &E, ctx: &mut StageContext) -> R {
        (self.0)(env, ctx)
    }
}

/// Closure adapter implementing [`Perceptor`].
pub struct FnPerceptor<F>(F);

impl<F> FnPerceptor<F> {
    /// Wrap a closure `(reading, ctx) -> features`.
    pub fn new(f: F) -> Self {
        FnPerceptor(f)
    }
}

impl<R, O, F: FnMut(&R, &mut StageContext) -> O> Perceptor<R> for FnPerceptor<F> {
    type Features = O;
    fn perceive(&mut self, reading: &R, ctx: &mut StageContext) -> O {
        (self.0)(reading, ctx)
    }
}

/// Closure adapter implementing [`Monitor`].
pub struct FnMonitor<F>(F);

impl<F> FnMonitor<F> {
    /// Wrap a closure `(features, ctx) -> Trust`.
    pub fn new(f: F) -> Self {
        FnMonitor(f)
    }
}

impl<Feat, F: FnMut(&Feat, &mut StageContext) -> Trust> Monitor<Feat> for FnMonitor<F> {
    fn assess(&mut self, features: &Feat, ctx: &mut StageContext) -> Trust {
        (self.0)(features, ctx)
    }
}

/// Closure adapter implementing [`Controller`].
pub struct FnController<F>(F);

impl<F> FnController<F> {
    /// Wrap a closure `(features, trust, ctx) -> action`.
    pub fn new(f: F) -> Self {
        FnController(f)
    }
}

impl<Feat, A, F: FnMut(&Feat, Trust, &mut StageContext) -> A> Controller<Feat> for FnController<F> {
    type Action = A;
    fn decide(&mut self, features: &Feat, trust: Trust, ctx: &mut StageContext) -> A {
        (self.0)(features, trust, ctx)
    }
}

// Stateless stages participate in checkpointing with the no-op defaults.
// Closure adapters are declared stateless by contract: a capture that *does*
// mutate across ticks will surface as a named `Divergence` in replay-after-
// restore — the checkpoint layer's intended bug detector.
impl crate::checkpoint::StageState for AlwaysTrust {}
impl<F> crate::checkpoint::StageState for FnSensor<F> {}
impl<F> crate::checkpoint::StageState for FnPerceptor<F> {}
impl<F> crate::checkpoint::StageState for FnMonitor<F> {}
impl<F> crate::checkpoint::StageState for FnController<F> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trust_suspicion_scale() {
        assert_eq!(Trust::Trusted.suspicion(), 0.0);
        assert_eq!(Trust::Untrusted.suspicion(), 1.0);
        assert_eq!(Trust::Suspect(0.4).suspicion(), 0.4);
        assert_eq!(Trust::Suspect(7.0).suspicion(), 1.0);
        assert!(Trust::Trusted.is_actionable());
        assert!(Trust::Suspect(0.9).is_actionable());
        assert!(!Trust::Untrusted.is_actionable());
    }

    #[test]
    fn trust_degrades_and_saturates() {
        assert_eq!(Trust::Trusted.degraded(0.0), Trust::Trusted);
        assert_eq!(Trust::Trusted.degraded(0.3), Trust::Suspect(0.3));
        assert_eq!(Trust::Suspect(0.5).degraded(0.25), Trust::Suspect(0.75));
        assert_eq!(Trust::Suspect(0.5).degraded(0.6), Trust::Untrusted);
        assert_eq!(Trust::Untrusted.degraded(0.0), Trust::Untrusted);
        // Negative extra never improves a verdict.
        assert_eq!(Trust::Suspect(0.5).degraded(-1.0), Trust::Suspect(0.5));
    }

    #[test]
    fn context_accumulates_charges() {
        let mut ctx = StageContext::new();
        ctx.charge(1e-3, 0.01);
        ctx.charge(2e-3, 0.02);
        assert!((ctx.energy_j() - 3e-3).abs() < 1e-15);
        assert!((ctx.latency_s() - 0.03).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "negative charge")]
    fn negative_charge_panics() {
        StageContext::new().charge(-1.0, 0.0);
    }

    #[test]
    fn closure_adapters_compose() {
        let mut sensor = FnSensor::new(|env: &i32, ctx: &mut StageContext| {
            ctx.charge(1e-6, 1e-5);
            *env * 2
        });
        let mut perceptor = FnPerceptor::new(|r: &i32, _: &mut StageContext| *r as f64);
        let mut monitor = FnMonitor::new(|f: &f64, _: &mut StageContext| {
            if *f > 100.0 {
                Trust::Untrusted
            } else {
                Trust::Trusted
            }
        });
        let mut controller = FnController::new(
            |f: &f64, t: Trust, _: &mut StageContext| {
                if t.is_actionable() {
                    -f
                } else {
                    0.0
                }
            },
        );

        let mut ctx = StageContext::new();
        let r = sensor.sense(&21, &mut ctx);
        let f = perceptor.perceive(&r, &mut ctx);
        let t = monitor.assess(&f, &mut ctx);
        let a = controller.decide(&f, t, &mut ctx);
        assert_eq!(a, -42.0);
        assert!(ctx.energy_j() > 0.0);

        // Untrusted path fails safe.
        let f_big = 1000.0;
        let t2 = monitor.assess(&f_big, &mut ctx);
        let a2 = controller.decide(&f_big, t2, &mut ctx);
        assert_eq!(a2, 0.0);
    }

    #[test]
    fn always_trust_is_trusted() {
        let mut m = AlwaysTrust;
        let mut ctx = StageContext::new();
        assert_eq!(
            Monitor::<f64>::assess(&mut m, &1.0, &mut ctx),
            Trust::Trusted
        );
    }
}
