//! Versioned checkpoint/restore of live loop state.
//!
//! Every stateful component of a sensing-to-action loop — telemetry rings,
//! precision holds, fault-injector RNG streams, trust EMAs, controller
//! integrators — implements [`StageState`]: it serializes its mutable state
//! into named [`Section`]s of a [`Checkpoint`] and can later rebuild that
//! exact state on an identically-constructed instance. The contract is
//! **bit-exactness**: a loop restored at tick `k` of a recording and replayed
//! over the tail must produce records the [`replay`](crate::replay) differ
//! finds identical, NaNs included. Any mutable field a component forgets to
//! serialize therefore surfaces as a named
//! [`Divergence`](crate::replay::Divergence) — checkpointing doubles as a
//! hidden-state bug detector.
//!
//! ## Wire format
//!
//! A checkpoint is JSONL, the same flat self-describing shape as the
//! [`export`](crate::export) and [`replay`](crate::replay) streams:
//!
//! ```text
//! {"type":"ckpt_meta","version":1,"name":"<hex>","sections":N}
//! {"type":"ckpt_section","id":"telemetry","ticks":"u:1000",...}
//! ...                                               (N section lines)
//! ```
//!
//! The header carries the schema version and a **length prefix** (`sections`)
//! so torn writes are detected as [`CheckpointError::Truncated`] instead of
//! silently restoring partial state. Field values are typed strings:
//!
//! | prefix | payload                                   | type        |
//! |--------|-------------------------------------------|-------------|
//! | `u:`   | decimal                                   | `u64`       |
//! | `f:`   | 16 hex digits (`f64::to_bits`)            | `f64`       |
//! | `b:`   | `0` or `1`                                | `bool`      |
//! | `s:`   | hex-encoded UTF-8 bytes                   | `String`    |
//! | `U:`   | `;`-separated decimals                    | `Vec<u64>`  |
//! | `F:`   | `;`-separated 16-hex-digit bit patterns   | `Vec<f64>`  |
//!
//! Floats travel as raw bit patterns, so every value — including NaN payloads
//! and the ±∞ sentinels inside histograms — round-trips exactly. The reader
//! is *lenient*: unknown fields, unknown section ids and unknown line types
//! are ignored (a newer writer remains readable), while a wrong version,
//! missing section or undecodable value is a typed [`CheckpointError`] —
//! hostile input never panics.

use std::collections::BTreeMap;
use std::fmt;

use crate::export::{field, parse_flat, str_field};

/// Current checkpoint schema version (the `version` header field).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Typed failure of checkpoint parsing or restore. Hostile bytes (torn
/// writes, corrupted headers, bit-flipped values) map onto these variants —
/// never onto a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The document ended before the header's `sections` count was met.
    Truncated {
        /// Sections the header promised.
        expected: usize,
        /// Parseable section lines actually found.
        found: usize,
    },
    /// The first line is not a well-formed `ckpt_meta` header.
    BadHeader,
    /// The header's schema version is not [`CHECKPOINT_VERSION`].
    BadVersion(u64),
    /// A component's section is absent from the checkpoint.
    MissingSection(String),
    /// A required field is absent from its section.
    MissingField(String),
    /// A field value failed to decode (wrong type prefix or corrupt payload).
    BadValue(String),
    /// The target does not support checkpointing (e.g. a scheduler handle
    /// built without the checkpointable constructor).
    Unsupported,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { expected, found } => {
                write!(f, "truncated checkpoint: {found}/{expected} sections")
            }
            CheckpointError::BadHeader => write!(f, "missing or malformed checkpoint header"),
            CheckpointError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::MissingSection(id) => write!(f, "missing section '{id}'"),
            CheckpointError::MissingField(key) => write!(f, "missing field '{key}'"),
            CheckpointError::BadValue(key) => write!(f, "undecodable value for '{key}'"),
            CheckpointError::Unsupported => write!(f, "target does not support checkpointing"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn hex_str(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn unhex_str(s: &str) -> Option<String> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        bytes.push(u8::from_str_radix(s.get(i..i + 2)?, 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

fn enc_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn dec_f64(s: &str) -> Option<f64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))
        .flatten()
}

/// One named bundle of key/value state inside a [`Checkpoint`] — typically
/// one component's mutable fields under its namespace (`"telemetry"`,
/// `"governor"`, `"sensor.inner"`, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Section {
    id: String,
    fields: BTreeMap<String, String>,
}

impl Section {
    /// An empty section under `id`.
    pub fn new(id: impl Into<String>) -> Self {
        Section {
            id: id.into(),
            fields: BTreeMap::new(),
        }
    }

    /// The section's namespace id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Whether `key` is present.
    pub fn has(&self, key: &str) -> bool {
        self.fields.contains_key(key)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the section holds no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Store a `u64`.
    pub fn put_u64(&mut self, key: &str, v: u64) {
        self.fields.insert(key.to_string(), format!("u:{v}"));
    }

    /// Store an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, key: &str, v: f64) {
        self.fields
            .insert(key.to_string(), format!("f:{}", enc_f64(v)));
    }

    /// Store a `bool`.
    pub fn put_bool(&mut self, key: &str, v: bool) {
        self.fields
            .insert(key.to_string(), format!("b:{}", v as u8));
    }

    /// Store a string (hex-encoded, so arbitrary content survives the flat
    /// JSONL line).
    pub fn put_str(&mut self, key: &str, v: &str) {
        self.fields
            .insert(key.to_string(), format!("s:{}", hex_str(v.as_bytes())));
    }

    /// Store a `u64` slice.
    pub fn put_u64s(&mut self, key: &str, vs: &[u64]) {
        let body: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
        self.fields
            .insert(key.to_string(), format!("U:{}", body.join(";")));
    }

    /// Store an `f64` slice as exact bit patterns.
    pub fn put_f64s(&mut self, key: &str, vs: &[f64]) {
        let body: Vec<String> = vs.iter().map(|v| enc_f64(*v)).collect();
        self.fields
            .insert(key.to_string(), format!("F:{}", body.join(";")));
    }

    fn raw(&self, key: &str, prefix: char) -> Result<&str, CheckpointError> {
        let v = self
            .fields
            .get(key)
            .ok_or_else(|| CheckpointError::MissingField(format!("{}.{key}", self.id)))?;
        v.strip_prefix(prefix)
            .and_then(|rest| rest.strip_prefix(':'))
            .ok_or_else(|| CheckpointError::BadValue(format!("{}.{key}", self.id)))
    }

    fn bad(&self, key: &str) -> CheckpointError {
        CheckpointError::BadValue(format!("{}.{key}", self.id))
    }

    /// Read a `u64`.
    pub fn get_u64(&self, key: &str) -> Result<u64, CheckpointError> {
        self.raw(key, 'u')?.parse().map_err(|_| self.bad(key))
    }

    /// Read an `f64` (bit-exact).
    pub fn get_f64(&self, key: &str) -> Result<f64, CheckpointError> {
        dec_f64(self.raw(key, 'f')?).ok_or_else(|| self.bad(key))
    }

    /// Read a `bool`.
    pub fn get_bool(&self, key: &str) -> Result<bool, CheckpointError> {
        match self.raw(key, 'b')? {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(self.bad(key)),
        }
    }

    /// Read a string.
    pub fn get_str(&self, key: &str) -> Result<String, CheckpointError> {
        unhex_str(self.raw(key, 's')?).ok_or_else(|| self.bad(key))
    }

    /// Read a `u64` list.
    pub fn get_u64s(&self, key: &str) -> Result<Vec<u64>, CheckpointError> {
        let body = self.raw(key, 'U')?;
        if body.is_empty() {
            return Ok(Vec::new());
        }
        body.split(';')
            .map(|p| p.parse().map_err(|_| self.bad(key)))
            .collect()
    }

    /// Read an `f64` list (bit-exact).
    pub fn get_f64s(&self, key: &str) -> Result<Vec<f64>, CheckpointError> {
        let body = self.raw(key, 'F')?;
        if body.is_empty() {
            return Ok(Vec::new());
        }
        body.split(';')
            .map(|p| dec_f64(p).ok_or_else(|| self.bad(key)))
            .collect()
    }

    fn to_json(&self) -> String {
        let mut line = format!("{{\"type\":\"ckpt_section\",\"id\":\"{}\"", self.id);
        for (k, v) in &self.fields {
            line.push_str(&format!(",\"{k}\":\"{v}\""));
        }
        line.push('}');
        line
    }

    fn from_fields(fields: &[(&str, &str)]) -> Option<Section> {
        let id = str_field(fields, "id")?;
        let mut section = Section::new(id);
        for (k, v) in fields {
            if *k == "type" || *k == "id" {
                continue;
            }
            // Lenient: skip fields that are not quoted strings (a future
            // writer may add raw-number fields) instead of failing the line.
            let Some(v) = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                continue;
            };
            section.fields.insert((*k).to_string(), v.to_string());
        }
        Some(section)
    }
}

/// A versioned, named collection of [`Section`]s — one component tree's
/// complete serialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    version: u32,
    name: String,
    sections: Vec<Section>,
}

impl Checkpoint {
    /// An empty checkpoint at the current schema version.
    pub fn new(name: impl Into<String>) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            name: name.into(),
            sections: Vec::new(),
        }
    }

    /// Schema version of this checkpoint.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Checkpoint name (typically the loop name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a section. Later sections with the same id shadow earlier ones
    /// on lookup (last write wins), mirroring lenient-reader semantics.
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// All sections, in order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Look up a section by id, or a typed error.
    pub fn section(&self, id: &str) -> Result<&Section, CheckpointError> {
        self.sections
            .iter()
            .rev()
            .find(|s| s.id == id)
            .ok_or_else(|| CheckpointError::MissingSection(id.to_string()))
    }

    /// Look up a section by id.
    pub fn section_opt(&self, id: &str) -> Option<&Section> {
        self.sections.iter().rev().find(|s| s.id == id)
    }

    /// Serialize as a length-prefixed JSONL document (trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"ckpt_meta\",\"version\":{},\"name\":\"{}\",\"sections\":{}}}\n",
            self.version,
            hex_str(self.name.as_bytes()),
            self.sections.len()
        );
        for s in &self.sections {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL document produced by [`Checkpoint::to_jsonl`].
    ///
    /// Lenient on unknown fields and unknown line types; typed errors (never
    /// panics) on a malformed header, a wrong schema version, or a document
    /// shorter than the header's `sections` length prefix.
    pub fn from_jsonl(doc: &str) -> Result<Checkpoint, CheckpointError> {
        let mut lines = doc.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or(CheckpointError::BadHeader)?;
        let fields = parse_flat(header).ok_or(CheckpointError::BadHeader)?;
        if str_field(&fields, "type") != Some("ckpt_meta") {
            return Err(CheckpointError::BadHeader);
        }
        let version: u64 = field(&fields, "version")
            .and_then(|v| v.parse().ok())
            .ok_or(CheckpointError::BadHeader)?;
        if version != CHECKPOINT_VERSION as u64 {
            return Err(CheckpointError::BadVersion(version));
        }
        let name = str_field(&fields, "name")
            .and_then(unhex_str)
            .ok_or(CheckpointError::BadHeader)?;
        let expected: usize = field(&fields, "sections")
            .and_then(|v| v.parse().ok())
            .ok_or(CheckpointError::BadHeader)?;
        let mut sections = Vec::new();
        for line in lines {
            // Lenient: skip anything that is not a parseable section line
            // (unknown event types, comments). A torn final line simply
            // fails to parse and is not counted.
            let Some(fields) = parse_flat(line) else {
                continue;
            };
            if str_field(&fields, "type") != Some("ckpt_section") {
                continue;
            }
            if let Some(section) = Section::from_fields(&fields) {
                sections.push(section);
            }
        }
        if sections.len() < expected {
            return Err(CheckpointError::Truncated {
                expected,
                found: sections.len(),
            });
        }
        Ok(Checkpoint {
            version: version as u32,
            name,
            sections,
        })
    }
}

/// A component that can serialize its mutable state into a [`Checkpoint`]
/// and later rebuild it on an identically-constructed instance.
///
/// Both methods default to no-ops so stateless stages (closure adapters,
/// constant monitors, pure-config policies) participate for free. A stage
/// with hidden mutable state that keeps the no-op default is *not* silently
/// fine: the restored loop diverges from the recording and the replay differ
/// names the first field that drifts — the intended failure mode.
pub trait StageState {
    /// Serialize mutable state into `ckpt` under the `ns` namespace.
    fn save_state(&self, _ckpt: &mut Checkpoint, _ns: &str) {}

    /// Restore mutable state from `ckpt`'s `ns` namespace. Implementations
    /// that wrote a section in [`StageState::save_state`] should treat a
    /// missing section as an error; stateless components accept anything.
    fn restore_state(&mut self, _ckpt: &Checkpoint, _ns: &str) -> Result<(), CheckpointError> {
        Ok(())
    }
}

/// Values that serialize to/from a flat `f64` vector — environments, held
/// features, `last_good` samples. The checkpoint layer uses this to carry
/// generic payloads (a [`FaultInjector`](crate::fault::FaultInjector)'s
/// last-good reading, a closed loop's environment) bit-exactly.
pub trait StateVec: Sized {
    /// Flatten into `f64` words.
    fn to_state(&self) -> Vec<f64>;
    /// Rebuild from the exact words [`StateVec::to_state`] produced; `None`
    /// if the shape is wrong.
    fn from_state(v: &[f64]) -> Option<Self>;
}

impl StateVec for f64 {
    fn to_state(&self) -> Vec<f64> {
        vec![*self]
    }
    fn from_state(v: &[f64]) -> Option<Self> {
        (v.len() == 1).then(|| v[0])
    }
}

impl StateVec for Vec<f64> {
    fn to_state(&self) -> Vec<f64> {
        self.clone()
    }
    fn from_state(v: &[f64]) -> Option<Self> {
        Some(v.to_vec())
    }
}

impl<const N: usize> StateVec for [f64; N] {
    fn to_state(&self) -> Vec<f64> {
        self.to_vec()
    }
    fn from_state(v: &[f64]) -> Option<Self> {
        v.try_into().ok()
    }
}

impl StateVec for (f64, f64) {
    fn to_state(&self) -> Vec<f64> {
        vec![self.0, self.1]
    }
    fn from_state(v: &[f64]) -> Option<Self> {
        (v.len() == 2).then(|| (v[0], v[1]))
    }
}

/// Save an `Option<V: StateVec>` into a section as a presence flag plus the
/// flattened payload.
pub fn put_opt_state<V: StateVec>(section: &mut Section, key: &str, v: &Option<V>) {
    match v {
        Some(v) => {
            section.put_bool(&format!("{key}_some"), true);
            section.put_f64s(key, &v.to_state());
        }
        None => {
            section.put_bool(&format!("{key}_some"), false);
            section.put_f64s(key, &[]);
        }
    }
}

/// Read back an `Option<V: StateVec>` written by [`put_opt_state`].
pub fn get_opt_state<V: StateVec>(
    section: &Section,
    key: &str,
) -> Result<Option<V>, CheckpointError> {
    if !section.get_bool(&format!("{key}_some"))? {
        return Ok(None);
    }
    let words = section.get_f64s(key)?;
    V::from_state(&words)
        .map(Some)
        .ok_or_else(|| CheckpointError::BadValue(format!("{}.{key}", section.id())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ckpt = Checkpoint::new("loop-a");
        let mut s = Section::new("alpha");
        s.put_u64("ticks", 1000);
        s.put_f64("energy", 0.1 + 0.2);
        s.put_f64("nan", f64::NAN);
        s.put_f64("neg_inf", f64::NEG_INFINITY);
        s.put_bool("active", true);
        s.put_str("name", "loop a, with \"punctuation\" {and braces}");
        s.put_u64s("ring", &[3, 1, 4, 1, 5]);
        s.put_f64s("stats", &[1.0 / 3.0, -0.0, f64::INFINITY]);
        s.put_u64s("empty_u", &[]);
        s.put_f64s("empty_f", &[]);
        ckpt.push(s);
        ckpt.push(Section::new("beta"));
        ckpt
    }

    #[test]
    fn round_trips_bit_exactly() {
        let ckpt = sample();
        let doc = ckpt.to_jsonl();
        let back = Checkpoint::from_jsonl(&doc).expect("parses");
        assert_eq!(back.name(), "loop-a");
        assert_eq!(back.version(), CHECKPOINT_VERSION);
        let s = back.section("alpha").unwrap();
        assert_eq!(s.get_u64("ticks").unwrap(), 1000);
        assert_eq!(
            s.get_f64("energy").unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert!(s.get_f64("nan").unwrap().is_nan());
        assert_eq!(s.get_f64("neg_inf").unwrap(), f64::NEG_INFINITY);
        assert!(s.get_bool("active").unwrap());
        assert_eq!(
            s.get_str("name").unwrap(),
            "loop a, with \"punctuation\" {and braces}"
        );
        assert_eq!(s.get_u64s("ring").unwrap(), vec![3, 1, 4, 1, 5]);
        let fs = s.get_f64s("stats").unwrap();
        assert_eq!(fs[0].to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(fs[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(fs[2], f64::INFINITY);
        assert!(s.get_u64s("empty_u").unwrap().is_empty());
        assert!(s.get_f64s("empty_f").unwrap().is_empty());
        assert!(back.section("beta").unwrap().is_empty());
        // Full structural equality through the wire.
        assert_eq!(back, ckpt);
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let doc = sample().to_jsonl();
        for cut in 0..doc.len() {
            let r = Checkpoint::from_jsonl(&doc[..cut]);
            if let Ok(c) = &r {
                // Only a cut beyond the last section line can still parse:
                // it must carry every promised section.
                assert_eq!(c.sections().len(), 2, "cut at {cut} parsed short");
            }
        }
        // A cut mid-way through the section list is Truncated specifically.
        let upto_first = doc.lines().take(2).collect::<Vec<_>>().join("\n");
        assert_eq!(
            Checkpoint::from_jsonl(&upto_first),
            Err(CheckpointError::Truncated {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn corrupted_headers_are_typed_errors() {
        assert_eq!(Checkpoint::from_jsonl(""), Err(CheckpointError::BadHeader));
        assert_eq!(
            Checkpoint::from_jsonl("garbage\n"),
            Err(CheckpointError::BadHeader)
        );
        assert_eq!(
            Checkpoint::from_jsonl("{\"type\":\"span\",\"tick\":1}\n"),
            Err(CheckpointError::BadHeader)
        );
        assert_eq!(
            Checkpoint::from_jsonl(
                "{\"type\":\"ckpt_meta\",\"version\":99,\"name\":\"\",\"sections\":0}\n"
            ),
            Err(CheckpointError::BadVersion(99))
        );
        assert_eq!(
            Checkpoint::from_jsonl(
                "{\"type\":\"ckpt_meta\",\"version\":x,\"name\":\"\",\"sections\":0}\n"
            ),
            Err(CheckpointError::BadHeader)
        );
        assert_eq!(
            Checkpoint::from_jsonl(
                "{\"type\":\"ckpt_meta\",\"version\":1,\"name\":\"zz\",\"sections\":0}\n"
            ),
            Err(CheckpointError::BadHeader)
        );
    }

    #[test]
    fn reader_is_lenient_on_unknown_content() {
        let mut doc = sample().to_jsonl();
        // Unknown line types and unknown fields must be ignored.
        doc.push_str("{\"type\":\"future_event\",\"x\":1}\n");
        doc.push_str("{\"type\":\"ckpt_section\",\"id\":\"gamma\",\"novel\":\"u:7\"}\n");
        let back = Checkpoint::from_jsonl(&doc).expect("lenient parse");
        assert_eq!(back.section("gamma").unwrap().get_u64("novel").unwrap(), 7);
        // More sections than promised is fine — the prefix is a lower bound.
        assert_eq!(back.sections().len(), 3);
    }

    #[test]
    fn wrong_type_prefix_is_bad_value() {
        let mut s = Section::new("x");
        s.put_u64("n", 5);
        assert!(matches!(s.get_f64("n"), Err(CheckpointError::BadValue(_))));
        assert!(matches!(
            s.get_u64("absent"),
            Err(CheckpointError::MissingField(_))
        ));
        assert!(matches!(s.get_bool("n"), Err(CheckpointError::BadValue(_))));
    }

    #[test]
    fn opt_state_round_trips() {
        let mut s = Section::new("opt");
        put_opt_state(&mut s, "held", &Some(vec![1.0, f64::NAN]));
        put_opt_state::<f64>(&mut s, "nothing", &None);
        let held: Option<Vec<f64>> = get_opt_state(&s, "held").unwrap();
        let held = held.unwrap();
        assert_eq!(held[0], 1.0);
        assert!(held[1].is_nan());
        assert_eq!(get_opt_state::<f64>(&s, "nothing").unwrap(), None);
        // Shape mismatch is a typed error, not a panic.
        assert!(matches!(
            get_opt_state::<[f64; 3]>(&s, "held"),
            Err(CheckpointError::BadValue(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::Truncated {
            expected: 4,
            found: 1,
        };
        assert!(e.to_string().contains("1/4"));
        assert!(CheckpointError::BadVersion(9).to_string().contains('9'));
        assert!(CheckpointError::MissingSection("telemetry".into())
            .to_string()
            .contains("telemetry"));
    }
}
