//! Fleet health / SLO scoring with hysteresis.
//!
//! The paper's robustness argument (§V) is that an edge fleet must *notice*
//! when a loop degrades — a miss storm, a straggler link, a drifting
//! monitor — and react before the failure cascades. This module turns the
//! raw signals the scheduler and network already count (deadline-miss rate,
//! backpressure drops, trust drift, staleness, retransmits) into a small
//! state machine:
//!
//! * [`HealthSignals`] — the normalized per-loop inputs;
//! * [`HealthPolicy`] — degraded/critical thresholds per signal plus
//!   hysteresis depths and fleet-rollup fractions;
//! * [`HealthScorer`] — per-loop scorer with *hysteresis*: a state change
//!   must be observed for `trip` (worsening) or `clear` (recovering)
//!   consecutive evaluations before it is reported, so one noisy window
//!   never flaps the fleet state;
//! * [`FleetHealth`] — the fleet-level rollup of per-loop statuses.
//!
//! Transitions are reported back to the caller so they can be recorded as
//! [`SpanKind::Health`](crate::trace::SpanKind) spans in the trace stream —
//! health state changes are events with causes, and belong in the same
//! timeline as the ticks and messages that produced them.

use crate::checkpoint::{Checkpoint, CheckpointError, Section, StageState};

/// A loop's (or the fleet's) health state, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum HealthStatus {
    /// All signals under their degraded thresholds.
    #[default]
    Healthy,
    /// At least one signal at or above its degraded threshold.
    Degraded,
    /// At least one signal at or above its critical threshold.
    Critical,
}

impl HealthStatus {
    /// All statuses, benign first.
    pub const ALL: [HealthStatus; 3] = [
        HealthStatus::Healthy,
        HealthStatus::Degraded,
        HealthStatus::Critical,
    ];

    /// Short static name used in exports (`"healthy"`, …).
    pub const fn name(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        }
    }

    /// Parse a status from its [`HealthStatus::name`].
    pub fn from_name(name: &str) -> Option<HealthStatus> {
        HealthStatus::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stable numeric code (0 healthy, 1 degraded, 2 critical).
    pub const fn code(self) -> u64 {
        match self {
            HealthStatus::Healthy => 0,
            HealthStatus::Degraded => 1,
            HealthStatus::Critical => 2,
        }
    }

    /// Inverse of [`HealthStatus::code`].
    pub const fn from_code(code: u64) -> Option<HealthStatus> {
        match code {
            0 => Some(HealthStatus::Healthy),
            1 => Some(HealthStatus::Degraded),
            2 => Some(HealthStatus::Critical),
            _ => None,
        }
    }
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Encode a health transition into a span `detail` payload.
pub const fn encode_transition(from: HealthStatus, to: HealthStatus) -> u64 {
    (from.code() << 8) | to.code()
}

/// Decode a span `detail` payload back into a health transition.
pub const fn decode_transition(detail: u64) -> Option<(HealthStatus, HealthStatus)> {
    match (
        HealthStatus::from_code(detail >> 8),
        HealthStatus::from_code(detail & 0xFF),
    ) {
        (Some(f), Some(t)) => Some((f, t)),
        _ => None,
    }
}

/// Normalized health inputs for one evaluation window.
///
/// All rates are fractions of opportunities in the window (0 = clean);
/// `staleness` is the completion lag in units of the loop's period (1.0 =
/// one full period late); `trust_drift` is the fraction of ticks whose
/// monitor verdict was suspect or worse.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthSignals {
    /// Deadline misses / releases.
    pub miss_rate: f64,
    /// Backpressure-dropped releases / releases.
    pub drop_rate: f64,
    /// Suspect-or-worse ticks / ticks.
    pub trust_drift: f64,
    /// Completion lag in periods (0 = on time).
    pub staleness: f64,
    /// Network retransmissions / messages sent.
    pub retransmit_rate: f64,
}

impl HealthSignals {
    /// `(name, value)` pairs in declaration order, for reports.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> {
        [
            ("miss_rate", self.miss_rate),
            ("drop_rate", self.drop_rate),
            ("trust_drift", self.trust_drift),
            ("staleness", self.staleness),
            ("retransmit_rate", self.retransmit_rate),
        ]
        .into_iter()
    }
}

/// Thresholds and hysteresis depths for health classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Per-signal values at or above which a loop is degraded.
    pub degraded: HealthSignals,
    /// Per-signal values at or above which a loop is critical.
    pub critical: HealthSignals,
    /// Consecutive worsening evaluations before a downgrade is reported.
    pub trip: u32,
    /// Consecutive recovering evaluations before an upgrade is reported.
    pub clear: u32,
    /// Fleet is critical when ≥ this fraction of loops are critical.
    pub fleet_critical_frac: f64,
    /// Fleet is degraded when ≥ this fraction of loops are non-healthy.
    pub fleet_degraded_frac: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degraded: HealthSignals {
                miss_rate: 0.05,
                drop_rate: 0.02,
                trust_drift: 0.20,
                staleness: 2.0,
                retransmit_rate: 0.15,
            },
            critical: HealthSignals {
                miss_rate: 0.25,
                drop_rate: 0.15,
                trust_drift: 0.50,
                staleness: 5.0,
                retransmit_rate: 0.50,
            },
            trip: 2,
            clear: 3,
            fleet_critical_frac: 0.10,
            fleet_degraded_frac: 0.25,
        }
    }
}

impl HealthPolicy {
    /// Instantaneous (hysteresis-free) classification of one window.
    pub fn classify(&self, s: &HealthSignals) -> HealthStatus {
        let mut worst = HealthStatus::Healthy;
        for ((_, v), ((_, deg), (_, crit))) in
            s.iter().zip(self.degraded.iter().zip(self.critical.iter()))
        {
            let status = if v >= crit {
                HealthStatus::Critical
            } else if v >= deg {
                HealthStatus::Degraded
            } else {
                HealthStatus::Healthy
            };
            worst = worst.max(status);
        }
        worst
    }

    /// Continuous severity score: the worst signal's fraction of its
    /// critical threshold (1.0 = at critical, may exceed 1).
    pub fn score(&self, s: &HealthSignals) -> f64 {
        s.iter()
            .zip(self.critical.iter())
            .map(|((_, v), (_, crit))| if crit > 0.0 { v / crit } else { 0.0 })
            .fold(0.0, f64::max)
    }
}

/// Per-loop health state machine with hysteresis.
#[derive(Debug, Clone)]
pub struct HealthScorer {
    policy: HealthPolicy,
    status: HealthStatus,
    candidate: HealthStatus,
    streak: u32,
    last_score: f64,
    evaluations: u64,
}

impl HealthScorer {
    /// A scorer starting healthy under `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthScorer {
            policy,
            status: HealthStatus::Healthy,
            candidate: HealthStatus::Healthy,
            streak: 0,
            last_score: 0.0,
            evaluations: 0,
        }
    }

    /// Current (hysteresis-filtered) status.
    pub fn status(&self) -> HealthStatus {
        self.status
    }

    /// Severity score of the most recent evaluation.
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Number of windows evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The policy this scorer classifies under.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Evaluate one window. Returns `Some((from, to))` when the filtered
    /// status transitions — after `trip` consecutive worsening windows or
    /// `clear` consecutive recovering ones.
    pub fn observe(&mut self, signals: &HealthSignals) -> Option<(HealthStatus, HealthStatus)> {
        self.evaluations += 1;
        self.last_score = self.policy.score(signals);
        let raw = self.policy.classify(signals);
        if raw == self.status {
            // Back in agreement: any pending candidate streak dissolves.
            self.candidate = self.status;
            self.streak = 0;
            return None;
        }
        if raw == self.candidate {
            self.streak += 1;
        } else {
            self.candidate = raw;
            self.streak = 1;
        }
        let needed = if raw > self.status {
            self.policy.trip
        } else {
            self.policy.clear
        };
        if self.streak >= needed.max(1) {
            let from = self.status;
            self.status = raw;
            self.streak = 0;
            return Some((from, raw));
        }
        None
    }
}

impl StageState for HealthScorer {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        let mut s = Section::new(ns);
        // The policy is config; the hysteresis machine is the state. All
        // three of status/candidate/streak must travel together: restoring
        // only `status` silently resets a partially-accumulated trip or
        // clear streak and shifts every subsequent transition.
        s.put_u64("status", self.status.code());
        s.put_u64("candidate", self.candidate.code());
        s.put_u64("streak", self.streak as u64);
        s.put_f64("last_score", self.last_score);
        s.put_u64("evaluations", self.evaluations);
        ckpt.push(s);
    }

    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        let s = ckpt.section(ns)?;
        let bad = |key: &str| CheckpointError::BadValue(format!("{ns}.{key}"));
        self.status = HealthStatus::from_code(s.get_u64("status")?).ok_or_else(|| bad("status"))?;
        self.candidate =
            HealthStatus::from_code(s.get_u64("candidate")?).ok_or_else(|| bad("candidate"))?;
        self.streak = s.get_u64("streak")? as u32;
        self.last_score = s.get_f64("last_score")?;
        self.evaluations = s.get_u64("evaluations")?;
        Ok(())
    }
}

/// Fleet-level rollup of per-loop health statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetHealth {
    /// Loops currently healthy.
    pub healthy: usize,
    /// Loops currently degraded.
    pub degraded: usize,
    /// Loops currently critical.
    pub critical: usize,
    /// The rolled-up fleet status.
    pub status: HealthStatus,
}

impl FleetHealth {
    /// Roll up per-loop statuses under `policy`'s fleet fractions: the
    /// fleet is critical when ≥ `fleet_critical_frac` of loops are
    /// critical, degraded when ≥ `fleet_degraded_frac` are non-healthy (or
    /// any loop is critical), healthy otherwise. An empty fleet is healthy.
    pub fn roll_up(
        statuses: impl IntoIterator<Item = HealthStatus>,
        policy: &HealthPolicy,
    ) -> Self {
        let mut h = FleetHealth::default();
        for s in statuses {
            match s {
                HealthStatus::Healthy => h.healthy += 1,
                HealthStatus::Degraded => h.degraded += 1,
                HealthStatus::Critical => h.critical += 1,
            }
        }
        let total = h.healthy + h.degraded + h.critical;
        h.status = if total == 0 {
            HealthStatus::Healthy
        } else {
            let critical_frac = h.critical as f64 / total as f64;
            let unhealthy_frac = (h.degraded + h.critical) as f64 / total as f64;
            if critical_frac >= policy.fleet_critical_frac {
                HealthStatus::Critical
            } else if h.critical > 0 || unhealthy_frac >= policy.fleet_degraded_frac {
                HealthStatus::Degraded
            } else {
                HealthStatus::Healthy
            }
        };
        h
    }

    /// Total loops rolled up.
    pub fn total(&self) -> usize {
        self.healthy + self.degraded + self.critical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> HealthSignals {
        HealthSignals::default()
    }

    fn missy(rate: f64) -> HealthSignals {
        HealthSignals {
            miss_rate: rate,
            ..HealthSignals::default()
        }
    }

    #[test]
    fn status_names_codes_round_trip() {
        for s in HealthStatus::ALL {
            assert_eq!(HealthStatus::from_name(s.name()), Some(s));
            assert_eq!(HealthStatus::from_code(s.code()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(HealthStatus::from_name("fine"), None);
        assert_eq!(HealthStatus::from_code(9), None);
        assert!(HealthStatus::Healthy < HealthStatus::Degraded);
        assert!(HealthStatus::Degraded < HealthStatus::Critical);
    }

    #[test]
    fn transition_encoding_round_trips() {
        for from in HealthStatus::ALL {
            for to in HealthStatus::ALL {
                let d = encode_transition(from, to);
                assert_eq!(decode_transition(d), Some((from, to)));
            }
        }
        assert_eq!(decode_transition(0xFFFF), None);
    }

    #[test]
    fn classify_takes_the_worst_signal() {
        let p = HealthPolicy::default();
        assert_eq!(p.classify(&clean()), HealthStatus::Healthy);
        assert_eq!(p.classify(&missy(0.05)), HealthStatus::Degraded);
        assert_eq!(p.classify(&missy(0.25)), HealthStatus::Critical);
        let mixed = HealthSignals {
            miss_rate: 0.06,      // degraded
            retransmit_rate: 0.9, // critical
            ..HealthSignals::default()
        };
        assert_eq!(p.classify(&mixed), HealthStatus::Critical);
        // Thresholds are inclusive.
        assert_eq!(p.classify(&missy(0.049)), HealthStatus::Healthy);
    }

    #[test]
    fn score_is_worst_fraction_of_critical() {
        let p = HealthPolicy::default();
        assert_eq!(p.score(&clean()), 0.0);
        let s = p.score(&missy(0.125)); // half of the 0.25 critical bar
        assert!((s - 0.5).abs() < 1e-12, "score {s}");
        assert!(p.score(&missy(0.5)) > 1.0);
    }

    #[test]
    fn hysteresis_filters_one_bad_window() {
        let mut sc = HealthScorer::new(HealthPolicy {
            trip: 2,
            clear: 3,
            ..HealthPolicy::default()
        });
        // One bad window: no transition yet.
        assert_eq!(sc.observe(&missy(0.3)), None);
        assert_eq!(sc.status(), HealthStatus::Healthy);
        // A clean window dissolves the streak.
        assert_eq!(sc.observe(&clean()), None);
        assert_eq!(sc.observe(&missy(0.3)), None);
        // Second *consecutive* bad window trips it.
        assert_eq!(
            sc.observe(&missy(0.3)),
            Some((HealthStatus::Healthy, HealthStatus::Critical))
        );
        assert_eq!(sc.status(), HealthStatus::Critical);
        // Recovery needs `clear` = 3 consecutive clean windows.
        assert_eq!(sc.observe(&clean()), None);
        assert_eq!(sc.observe(&clean()), None);
        assert_eq!(
            sc.observe(&clean()),
            Some((HealthStatus::Critical, HealthStatus::Healthy))
        );
        assert_eq!(sc.status(), HealthStatus::Healthy);
        assert_eq!(sc.evaluations(), 7);
    }

    #[test]
    fn candidate_switch_resets_the_streak() {
        let mut sc = HealthScorer::new(HealthPolicy {
            trip: 2,
            ..HealthPolicy::default()
        });
        assert_eq!(sc.observe(&missy(0.3)), None); // candidate critical, streak 1
        assert_eq!(sc.observe(&missy(0.06)), None); // candidate degraded, streak 1
                                                    // Degraded again: streak 2 >= trip -> transition to degraded.
        assert_eq!(
            sc.observe(&missy(0.06)),
            Some((HealthStatus::Healthy, HealthStatus::Degraded))
        );
    }

    /// A scorer restored mid-streak must report the same transitions at the
    /// same evaluations as the uninterrupted scorer — one window's worth of
    /// lost hysteresis state delays every downstream transition.
    #[test]
    fn checkpoint_restores_hysteresis_mid_streak() {
        use crate::checkpoint::Checkpoint;
        let policy = HealthPolicy {
            trip: 3,
            clear: 2,
            ..HealthPolicy::default()
        };
        let mut live = HealthScorer::new(policy);
        assert_eq!(live.observe(&missy(0.3)), None); // streak 1 of 3
        assert_eq!(live.observe(&missy(0.3)), None); // streak 2 of 3

        let mut ckpt = Checkpoint::new("h");
        live.save_state(&mut ckpt, "health");
        let ckpt = Checkpoint::from_jsonl(&ckpt.to_jsonl()).expect("parses");
        let mut restored = HealthScorer::new(policy);
        restored.restore_state(&ckpt, "health").expect("restores");
        assert_eq!(restored.status(), live.status());
        assert_eq!(restored.evaluations(), live.evaluations());
        assert_eq!(restored.last_score().to_bits(), live.last_score().to_bits());

        // The third bad window trips BOTH at the same evaluation.
        let a = live.observe(&missy(0.3));
        let b = restored.observe(&missy(0.3));
        assert_eq!(a, b);
        assert_eq!(a, Some((HealthStatus::Healthy, HealthStatus::Critical)));
        // And recovery stays in lockstep too.
        for _ in 0..2 {
            assert_eq!(live.observe(&clean()), restored.observe(&clean()));
        }
        assert_eq!(live.status(), restored.status());
    }

    #[test]
    fn checkpoint_rejects_corrupt_status_codes() {
        use crate::checkpoint::{Checkpoint, CheckpointError};
        let mut ckpt = Checkpoint::new("h");
        HealthScorer::new(HealthPolicy::default()).save_state(&mut ckpt, "health");
        let doc = ckpt
            .to_jsonl()
            .replace("\"status\":\"u:0\"", "\"status\":\"u:7\"");
        let ckpt = Checkpoint::from_jsonl(&doc).expect("parses");
        let mut sc = HealthScorer::new(HealthPolicy::default());
        assert!(matches!(
            sc.restore_state(&ckpt, "health"),
            Err(CheckpointError::BadValue(_))
        ));
    }

    #[test]
    fn fleet_roll_up_applies_fractions() {
        let p = HealthPolicy::default(); // critical ≥10%, degraded ≥25%
        let mk = |h: usize, d: usize, c: usize| {
            let statuses = std::iter::repeat_n(HealthStatus::Healthy, h)
                .chain(std::iter::repeat_n(HealthStatus::Degraded, d))
                .chain(std::iter::repeat_n(HealthStatus::Critical, c));
            FleetHealth::roll_up(statuses, &p)
        };
        assert_eq!(mk(0, 0, 0).status, HealthStatus::Healthy);
        assert_eq!(mk(10, 0, 0).status, HealthStatus::Healthy);
        assert_eq!(mk(9, 1, 0).status, HealthStatus::Healthy); // 10% degraded < 25%
        assert_eq!(mk(6, 4, 0).status, HealthStatus::Degraded); // 40% ≥ 25%
        assert_eq!(mk(19, 0, 1).status, HealthStatus::Degraded); // any critical
        assert_eq!(mk(9, 0, 1).status, HealthStatus::Critical); // 10% ≥ 10%
        let h = mk(6, 3, 1);
        assert_eq!((h.healthy, h.degraded, h.critical), (6, 3, 1));
        assert_eq!(h.total(), 10);
    }
}
