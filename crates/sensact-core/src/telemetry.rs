//! Loop telemetry: per-tick records and running aggregates.
//!
//! The cyclical nature of sensing-action loops makes them sensitive to
//! cascading errors (§II); telemetry is how the experiments observe drift —
//! energy/latency trends, trust degradation, consecutive-suspect streaks,
//! and (for fallible loops) fault/retry/fallback counts.
//!
//! Aggregates are maintained *incrementally*: totals, suspect fractions and
//! the energy/latency statistics are exact over **all** ticks and O(1) to
//! query, while the per-tick [`TickRecord`] history is retained in a bounded
//! ring buffer (capacity via [`LoopTelemetry::with_capacity`]) so a
//! million-tick production run does not grow memory without bound.
//!
//! Since the observability layer, every record also carries a per-stage
//! [`StageBreakdown`] (sense/perceive/monitor/control/act attribution), and
//! the telemetry keeps per-stage totals plus log-bucketed latency
//! [`Histogram`]s — still O(1) per tick and O(1) to query. Export via
//! [`export::ticks_to_jsonl`](crate::export::ticks_to_jsonl) (round-trip
//! JSONL) or [`export::text_report`](crate::export::text_report).

use crate::checkpoint::{Checkpoint, CheckpointError, Section, StageState};
use crate::fault::StageError;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::precision::Precision;
use crate::stage::Trust;
use crate::trace::{StageBreakdown, StageId, STAGE_COUNT};
use sensact_math::RunningStats;

/// Default number of per-tick records retained by the ring buffer.
pub const DEFAULT_RECORD_CAPACITY: usize = 4096;

/// One tick's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickRecord {
    /// Tick index (0-based).
    pub tick: u64,
    /// Energy consumed this tick (joules).
    pub energy_j: f64,
    /// Latency of this tick (seconds).
    pub latency_s: f64,
    /// Monitor verdict.
    pub trust: Trust,
    /// Numeric precision mode the tick computed at (f64 unless a precision
    /// governor chose otherwise).
    pub precision: Precision,
    /// Per-stage energy/latency attribution of this tick.
    pub stages: StageBreakdown,
}

/// Fault-handling counters of a fallible loop (all zero for infallible
/// loops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Stage errors observed (including ones later recovered by retry).
    pub faults: u64,
    /// Faults that were dropouts.
    pub dropouts: u64,
    /// Faults that were latency-budget timeouts.
    pub timeouts: u64,
    /// Faults that were out-of-range readings.
    pub out_of_range: u64,
    /// Faults that were NaN-poisoned outputs.
    pub poisoned: u64,
    /// Stage re-attempts issued by the retry policy.
    pub retries: u64,
    /// Ticks served from held (stale) last-good features.
    pub holds: u64,
    /// Ticks that fell back to the controller's fail-safe action.
    pub fallbacks: u64,
}

impl std::fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} faults ({} dropouts, {} timeouts, {} out-of-range, {} poisoned; \
             {} retries, {} holds, {} fallbacks)",
            self.faults,
            self.dropouts,
            self.timeouts,
            self.out_of_range,
            self.poisoned,
            self.retries,
            self.holds,
            self.fallbacks
        )
    }
}

/// Communication counters of a loop that talks over a (possibly simulated)
/// network — federated clients, coverage coordinators, serving front-ends.
/// All zero for loops that never communicate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommCounters {
    /// Messages handed to the network for transmission.
    pub msgs_sent: u64,
    /// Messages confirmed delivered to the peer.
    pub msgs_delivered: u64,
    /// Messages lost in transit (exhausted retries, partitions).
    pub msgs_dropped: u64,
    /// Retransmission attempts beyond each message's first send.
    pub retransmits: u64,
    /// Payload bytes transmitted (per attempt-0 payload, not per retry).
    pub bytes_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Total off-compute communication time (propagation tails, seconds).
    pub comm_s: f64,
}

impl std::fmt::Display for CommCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sent ({} delivered, {} dropped, {} retransmits), {} B up, {} B down, {:.3e} s comm",
            self.msgs_sent,
            self.msgs_delivered,
            self.msgs_dropped,
            self.retransmits,
            self.bytes_tx,
            self.bytes_rx,
            self.comm_s
        )
    }
}

/// Aggregated telemetry of one loop.
#[derive(Debug, Clone)]
pub struct LoopTelemetry {
    records: Vec<TickRecord>,
    /// Oldest record's index once the ring is full.
    head: usize,
    capacity: usize,
    ticks: u64,
    total_energy_j: f64,
    total_latency_s: f64,
    suspect_ticks: u64,
    energy: RunningStats,
    latency: RunningStats,
    suspect_streak: u32,
    max_suspect_streak: u32,
    counters: FaultCounters,
    comm: CommCounters,
    /// Running per-stage energy/latency totals over all ticks.
    stage_totals: StageBreakdown,
    /// Per-stage charged-latency histograms (only ticks where the stage
    /// charged anything are recorded, so idle stages stay empty).
    stage_latency: [Histogram; STAGE_COUNT],
    /// Whole-tick latency histogram over all ticks.
    latency_hist: Histogram,
    /// Ticks computed per precision mode (indexed by [`Precision::rank`]).
    precision_ticks: [u64; 3],
}

impl Default for LoopTelemetry {
    fn default() -> Self {
        LoopTelemetry::with_capacity(DEFAULT_RECORD_CAPACITY)
    }
}

impl LoopTelemetry {
    /// Fresh telemetry with the default record capacity.
    pub fn new() -> Self {
        LoopTelemetry::default()
    }

    /// Fresh telemetry retaining at most `capacity` per-tick records
    /// (clamped to ≥ 1). Aggregate statistics remain exact over all ticks
    /// regardless of capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        LoopTelemetry {
            records: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            ticks: 0,
            total_energy_j: 0.0,
            total_latency_s: 0.0,
            suspect_ticks: 0,
            energy: RunningStats::new(),
            latency: RunningStats::new(),
            suspect_streak: 0,
            max_suspect_streak: 0,
            counters: FaultCounters::default(),
            comm: CommCounters::default(),
            stage_totals: StageBreakdown::new(),
            stage_latency: std::array::from_fn(|_| Histogram::new()),
            latency_hist: Histogram::new(),
            precision_ticks: [0; 3],
        }
    }

    /// Record a tick with no per-stage attribution (all stages zero).
    pub fn record(&mut self, energy_j: f64, latency_s: f64, trust: Trust) {
        self.record_with_stages(energy_j, latency_s, trust, StageBreakdown::new());
    }

    /// Record a tick with its per-stage energy/latency attribution (at the
    /// default f64 precision).
    pub fn record_with_stages(
        &mut self,
        energy_j: f64,
        latency_s: f64,
        trust: Trust,
        stages: StageBreakdown,
    ) {
        self.record_with_precision(energy_j, latency_s, trust, stages, Precision::F64);
    }

    /// Record a tick with per-stage attribution and the precision mode it
    /// computed at.
    pub fn record_with_precision(
        &mut self,
        energy_j: f64,
        latency_s: f64,
        trust: Trust,
        stages: StageBreakdown,
        precision: Precision,
    ) {
        let rec = TickRecord {
            tick: self.ticks,
            energy_j,
            latency_s,
            trust,
            precision,
            stages,
        };
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
        self.ticks += 1;
        self.total_energy_j += energy_j;
        self.total_latency_s += latency_s;
        self.energy.push(energy_j);
        self.latency.push(latency_s);
        self.latency_hist.record(latency_s);
        self.precision_ticks[precision.rank() as usize] += 1;
        self.stage_totals.merge(&stages);
        for (stage, cost) in stages.iter() {
            // Idle stages (charged nothing) don't pollute the histogram
            // with zeros — their count stays the number of active ticks.
            if cost.energy_j > 0.0 || cost.latency_s > 0.0 {
                self.stage_latency[stage.index()].record(cost.latency_s);
            }
        }
        if trust.suspicion() > 0.0 {
            self.suspect_ticks += 1;
            self.suspect_streak += 1;
            self.max_suspect_streak = self.max_suspect_streak.max(self.suspect_streak);
        } else {
            self.suspect_streak = 0;
        }
    }

    /// Count one stage error (classified by kind).
    pub fn record_fault(&mut self, error: &StageError) {
        self.counters.faults += 1;
        match error {
            StageError::Dropout => self.counters.dropouts += 1,
            StageError::Timeout { .. } => self.counters.timeouts += 1,
            StageError::OutOfRange { .. } => self.counters.out_of_range += 1,
            StageError::Poisoned => self.counters.poisoned += 1,
        }
    }

    /// Count `n` retry attempts issued within one tick.
    pub fn record_retries(&mut self, n: u32) {
        self.counters.retries += n as u64;
    }

    /// Count one tick served from held (stale) features.
    pub fn record_hold(&mut self) {
        self.counters.holds += 1;
    }

    /// Count one tick resolved by the fail-safe fallback action.
    pub fn record_fallback(&mut self) {
        self.counters.fallbacks += 1;
    }

    /// Count one transmitted message: its payload size, retransmissions
    /// beyond the first attempt, whether it was ultimately delivered, and
    /// the off-compute communication tail it cost (propagation + retry
    /// timeouts; non-finite/negative tails count as zero).
    pub fn record_comm_tx(&mut self, bytes: u64, retransmits: u32, delivered: bool, comm_s: f64) {
        self.comm.msgs_sent += 1;
        self.comm.bytes_tx += bytes;
        self.comm.retransmits += retransmits as u64;
        if delivered {
            self.comm.msgs_delivered += 1;
        } else {
            self.comm.msgs_dropped += 1;
        }
        if comm_s.is_finite() && comm_s > 0.0 {
            self.comm.comm_s += comm_s;
        }
    }

    /// Count one received message.
    pub fn record_comm_rx(&mut self, bytes: u64) {
        self.comm.bytes_rx += bytes;
    }

    /// Number of recorded ticks (all ticks ever, not just retained records).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Retained per-tick records in chronological (oldest-first) order,
    /// across ring wraparound. At most [`LoopTelemetry::capacity`] of the
    /// most recent ticks are kept.
    pub fn records(&self) -> impl Iterator<Item = &TickRecord> {
        let (wrapped, ordered) = self.records.split_at(self.head);
        ordered.iter().chain(wrapped.iter())
    }

    /// The most recently recorded tick, if any; O(1). This is what a replay
    /// driver compares against after each tick, so replay verification works
    /// even when the ring capacity is smaller than the run length.
    pub fn last_record(&self) -> Option<&TickRecord> {
        if self.records.is_empty() {
            return None;
        }
        let idx = if self.head == 0 {
            self.records.len() - 1
        } else {
            self.head - 1
        };
        Some(&self.records[idx])
    }

    /// Maximum number of per-tick records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total energy over all ticks (joules); O(1).
    pub fn total_energy_j(&self) -> f64 {
        self.total_energy_j
    }

    /// Total latency over all ticks (seconds); O(1).
    pub fn total_latency_s(&self) -> f64 {
        self.total_latency_s
    }

    /// Energy statistics across ticks.
    pub fn energy_stats(&self) -> &RunningStats {
        &self.energy
    }

    /// Latency statistics across ticks.
    pub fn latency_stats(&self) -> &RunningStats {
        &self.latency
    }

    /// Per-stage energy/latency totals over all ticks; O(1).
    pub fn stage_totals(&self) -> &StageBreakdown {
        &self.stage_totals
    }

    /// Charged-latency histogram of one stage (ticks where the stage
    /// charged nothing are excluded).
    pub fn stage_latency(&self, stage: StageId) -> &Histogram {
        &self.stage_latency[stage.index()]
    }

    /// Whole-tick latency histogram over all ticks.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Fault-handling counters (zero for loops without a fault layer).
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// Communication counters (all zero for loops that never communicate).
    pub fn comm_counters(&self) -> CommCounters {
        self.comm
    }

    /// Number of ticks computed at the given precision mode; O(1).
    pub fn precision_ticks(&self, precision: Precision) -> u64 {
        self.precision_ticks[precision.rank() as usize]
    }

    /// Export aggregates into a [`MetricsRegistry`] under the standard
    /// metric names: `loop.*` counters/gauges, `stage.<name>.*` per-stage
    /// energy gauges and latency histograms.
    pub fn export_into(&self, registry: &mut MetricsRegistry) {
        registry.add("loop.ticks_total", self.ticks);
        registry.add("loop.faults_total", self.counters.faults);
        registry.add("loop.retries_total", self.counters.retries);
        registry.add("loop.holds_total", self.counters.holds);
        registry.add("loop.fallbacks_total", self.counters.fallbacks);
        registry.set("loop.energy_j", self.total_energy_j);
        registry.set("loop.latency_s", self.total_latency_s);
        registry.set("loop.suspect_fraction", self.suspect_fraction());
        registry.add("loop.precision.f64_ticks", self.precision_ticks[0]);
        registry.add("loop.precision.f32_ticks", self.precision_ticks[1]);
        registry.add("loop.precision.int8_ticks", self.precision_ticks[2]);
        if self.comm != CommCounters::default() {
            registry.add("loop.comm.msgs_sent_total", self.comm.msgs_sent);
            registry.add("loop.comm.msgs_delivered_total", self.comm.msgs_delivered);
            registry.add("loop.comm.msgs_dropped_total", self.comm.msgs_dropped);
            registry.add("loop.comm.retransmits_total", self.comm.retransmits);
            registry.add("loop.comm.bytes_tx_total", self.comm.bytes_tx);
            registry.add("loop.comm.bytes_rx_total", self.comm.bytes_rx);
            registry.set("loop.comm.latency_s", self.comm.comm_s);
        }
        registry.install_histogram("loop.tick.latency_s", self.latency_hist.clone());
        for stage in StageId::ALL {
            registry.set(stage.energy_key(), self.stage_totals.get(stage).energy_j);
            registry.install_histogram(
                stage.latency_key(),
                self.stage_latency[stage.index()].clone(),
            );
        }
    }

    /// Fraction of ticks with non-zero suspicion; O(1).
    pub fn suspect_fraction(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.suspect_ticks as f64 / self.ticks as f64
    }

    /// Longest run of consecutive suspect/untrusted ticks — the cascading-
    /// error indicator.
    pub fn max_suspect_streak(&self) -> u32 {
        self.max_suspect_streak
    }

    /// Current (ongoing) suspect streak.
    pub fn current_suspect_streak(&self) -> u32 {
        self.suspect_streak
    }
}

fn trust_code(t: Trust) -> (u64, f64) {
    match t {
        Trust::Trusted => (0, 0.0),
        Trust::Suspect(s) => (1, s),
        Trust::Untrusted => (2, 0.0),
    }
}

fn trust_from_code(code: u64, suspicion: f64) -> Option<Trust> {
    match code {
        0 => Some(Trust::Trusted),
        1 => Some(Trust::Suspect(suspicion)),
        2 => Some(Trust::Untrusted),
        _ => None,
    }
}

fn precision_from_rank(rank: u64) -> Option<Precision> {
    Precision::ALL.into_iter().find(|p| p.rank() as u64 == rank)
}

fn save_stats(section: &mut Section, prefix: &str, stats: &RunningStats) {
    let (count, mean, m2, min, max) = stats.raw_parts();
    section.put_u64(&format!("{prefix}_count"), count);
    section.put_f64s(&format!("{prefix}_acc"), &[mean, m2, min, max]);
}

fn restore_stats(section: &Section, prefix: &str) -> Result<RunningStats, CheckpointError> {
    let count = section.get_u64(&format!("{prefix}_count"))?;
    let acc = section.get_f64s(&format!("{prefix}_acc"))?;
    if acc.len() != 4 {
        return Err(CheckpointError::BadValue(format!(
            "{}.{prefix}_acc",
            section.id()
        )));
    }
    Ok(RunningStats::from_raw_parts(
        count, acc[0], acc[1], acc[2], acc[3],
    ))
}

impl StageState for LoopTelemetry {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        let mut s = Section::new(ns);
        s.put_u64("capacity", self.capacity as u64);
        s.put_u64("ticks", self.ticks);
        s.put_f64("total_energy_j", self.total_energy_j);
        s.put_f64("total_latency_s", self.total_latency_s);
        s.put_u64("suspect_ticks", self.suspect_ticks);
        s.put_u64("suspect_streak", self.suspect_streak as u64);
        s.put_u64("max_suspect_streak", self.max_suspect_streak as u64);
        save_stats(&mut s, "energy", &self.energy);
        save_stats(&mut s, "latency", &self.latency);
        let c = &self.counters;
        s.put_u64s(
            "fault_counters",
            &[
                c.faults,
                c.dropouts,
                c.timeouts,
                c.out_of_range,
                c.poisoned,
                c.retries,
                c.holds,
                c.fallbacks,
            ],
        );
        s.put_u64s(
            "comm_counters",
            &[
                self.comm.msgs_sent,
                self.comm.msgs_delivered,
                self.comm.msgs_dropped,
                self.comm.retransmits,
                self.comm.bytes_tx,
                self.comm.bytes_rx,
            ],
        );
        s.put_f64("comm_s", self.comm.comm_s);
        let totals: Vec<f64> = StageId::ALL
            .into_iter()
            .flat_map(|st| {
                let cost = self.stage_totals.get(st);
                [cost.energy_j, cost.latency_s]
            })
            .collect();
        s.put_f64s("stage_totals", &totals);
        for (i, h) in self.stage_latency.iter().enumerate() {
            h.save_into(&mut s, &format!("stage{i}"));
        }
        self.latency_hist.save_into(&mut s, "lat");
        s.put_u64s("precision_ticks", &self.precision_ticks);

        // Retained records, serialized in *chronological* order as parallel
        // arrays. Restore rebuilds them from index 0 with `head = 0`, which
        // makes the on-disk form canonical: a ring snapshotted exactly at
        // its wrap boundary restores with identical record order (the
        // head-vs-len ambiguity at len == capacity never reaches the wire).
        let recs: Vec<&TickRecord> = self.records().collect();
        s.put_u64s("rec_tick", &recs.iter().map(|r| r.tick).collect::<Vec<_>>());
        s.put_f64s(
            "rec_energy",
            &recs.iter().map(|r| r.energy_j).collect::<Vec<_>>(),
        );
        s.put_f64s(
            "rec_latency",
            &recs.iter().map(|r| r.latency_s).collect::<Vec<_>>(),
        );
        let (trust_codes, suspicions): (Vec<u64>, Vec<f64>) =
            recs.iter().map(|r| trust_code(r.trust)).unzip();
        s.put_u64s("rec_trust", &trust_codes);
        s.put_f64s("rec_susp", &suspicions);
        s.put_u64s(
            "rec_prec",
            &recs
                .iter()
                .map(|r| r.precision.rank() as u64)
                .collect::<Vec<_>>(),
        );
        let mut stage_e = Vec::with_capacity(recs.len() * STAGE_COUNT);
        let mut stage_l = Vec::with_capacity(recs.len() * STAGE_COUNT);
        for r in &recs {
            for (_, cost) in r.stages.iter() {
                stage_e.push(cost.energy_j);
                stage_l.push(cost.latency_s);
            }
        }
        s.put_f64s("rec_stage_e", &stage_e);
        s.put_f64s("rec_stage_l", &stage_l);
        ckpt.push(s);
    }

    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        let s = ckpt.section(ns)?;
        let bad = |key: &str| CheckpointError::BadValue(format!("{ns}.{key}"));
        let mut t = LoopTelemetry::with_capacity(s.get_u64("capacity")? as usize);
        t.ticks = s.get_u64("ticks")?;
        t.total_energy_j = s.get_f64("total_energy_j")?;
        t.total_latency_s = s.get_f64("total_latency_s")?;
        t.suspect_ticks = s.get_u64("suspect_ticks")?;
        t.suspect_streak = s.get_u64("suspect_streak")? as u32;
        t.max_suspect_streak = s.get_u64("max_suspect_streak")? as u32;
        t.energy = restore_stats(s, "energy")?;
        t.latency = restore_stats(s, "latency")?;
        let fc = s.get_u64s("fault_counters")?;
        if fc.len() != 8 {
            return Err(bad("fault_counters"));
        }
        t.counters = FaultCounters {
            faults: fc[0],
            dropouts: fc[1],
            timeouts: fc[2],
            out_of_range: fc[3],
            poisoned: fc[4],
            retries: fc[5],
            holds: fc[6],
            fallbacks: fc[7],
        };
        let cc = s.get_u64s("comm_counters")?;
        if cc.len() != 6 {
            return Err(bad("comm_counters"));
        }
        t.comm = CommCounters {
            msgs_sent: cc[0],
            msgs_delivered: cc[1],
            msgs_dropped: cc[2],
            retransmits: cc[3],
            bytes_tx: cc[4],
            bytes_rx: cc[5],
            comm_s: s.get_f64("comm_s")?,
        };
        let totals = s.get_f64s("stage_totals")?;
        if totals.len() != 2 * STAGE_COUNT {
            return Err(bad("stage_totals"));
        }
        t.stage_totals = StageBreakdown::new();
        for (i, st) in StageId::ALL.into_iter().enumerate() {
            t.stage_totals.add(st, totals[2 * i], totals[2 * i + 1]);
        }
        for (i, h) in t.stage_latency.iter_mut().enumerate() {
            *h = Histogram::restore_from(s, &format!("stage{i}"))?;
        }
        t.latency_hist = Histogram::restore_from(s, "lat")?;
        let pt = s.get_u64s("precision_ticks")?;
        t.precision_ticks = pt.try_into().map_err(|_| bad("precision_ticks"))?;

        let ticks = s.get_u64s("rec_tick")?;
        let energies = s.get_f64s("rec_energy")?;
        let latencies = s.get_f64s("rec_latency")?;
        let trusts = s.get_u64s("rec_trust")?;
        let susps = s.get_f64s("rec_susp")?;
        let precs = s.get_u64s("rec_prec")?;
        let stage_e = s.get_f64s("rec_stage_e")?;
        let stage_l = s.get_f64s("rec_stage_l")?;
        let n = ticks.len();
        if n > t.capacity
            || [
                energies.len(),
                latencies.len(),
                trusts.len(),
                susps.len(),
                precs.len(),
            ]
            .iter()
            .any(|&l| l != n)
            || stage_e.len() != n * STAGE_COUNT
            || stage_l.len() != n * STAGE_COUNT
        {
            return Err(bad("rec_tick"));
        }
        for i in 0..n {
            let mut stages = StageBreakdown::new();
            for (j, st) in StageId::ALL.into_iter().enumerate() {
                stages.add(
                    st,
                    stage_e[i * STAGE_COUNT + j],
                    stage_l[i * STAGE_COUNT + j],
                );
            }
            t.records.push(TickRecord {
                tick: ticks[i],
                energy_j: energies[i],
                latency_s: latencies[i],
                trust: trust_from_code(trusts[i], susps[i]).ok_or_else(|| bad("rec_trust"))?,
                precision: precision_from_rank(precs[i]).ok_or_else(|| bad("rec_prec"))?,
                stages,
            });
        }
        t.head = 0;
        *self = t;
        Ok(())
    }
}

impl std::fmt::Display for LoopTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ticks, {:.3e} J total, mean latency {:.3e} s, {:.0}% suspect",
            self.ticks(),
            self.total_energy_j(),
            self.latency.mean(),
            self.suspect_fraction() * 100.0
        )?;
        if self.counters != FaultCounters::default() {
            write!(f, ", {}", self.counters)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.1, Trust::Trusted);
        t.record(3.0, 0.3, Trust::Suspect(0.5));
        assert_eq!(t.ticks(), 2);
        assert_eq!(t.total_energy_j(), 4.0);
        assert_eq!(t.energy_stats().mean(), 2.0);
        assert_eq!(t.latency_stats().max(), 0.3);
        assert_eq!(t.records().nth(1).unwrap().tick, 1);
    }

    #[test]
    fn precision_ticks_are_counted_per_mode() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.1, Trust::Trusted);
        let stages = StageBreakdown::new();
        t.record_with_precision(1.0, 0.1, Trust::Trusted, stages, Precision::F32);
        t.record_with_precision(1.0, 0.1, Trust::Trusted, stages, Precision::Int8);
        t.record_with_precision(1.0, 0.1, Trust::Trusted, stages, Precision::Int8);
        assert_eq!(t.precision_ticks(Precision::F64), 1);
        assert_eq!(t.precision_ticks(Precision::F32), 1);
        assert_eq!(t.precision_ticks(Precision::Int8), 2);
        assert_eq!(t.last_record().unwrap().precision, Precision::Int8);
        let mut m = MetricsRegistry::new();
        t.export_into(&mut m);
        assert_eq!(m.counter("loop.precision.int8_ticks"), 2);
    }

    #[test]
    fn suspect_fraction_and_streaks() {
        let mut t = LoopTelemetry::new();
        for trust in [
            Trust::Trusted,
            Trust::Suspect(0.2),
            Trust::Untrusted,
            Trust::Suspect(0.9),
            Trust::Trusted,
            Trust::Suspect(0.1),
        ] {
            t.record(0.0, 0.0, trust);
        }
        assert!((t.suspect_fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.max_suspect_streak(), 3);
        assert_eq!(t.current_suspect_streak(), 1);
    }

    #[test]
    fn empty_telemetry_is_benign() {
        let t = LoopTelemetry::new();
        assert_eq!(t.ticks(), 0);
        assert_eq!(t.suspect_fraction(), 0.0);
        assert_eq!(t.total_energy_j(), 0.0);
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.latency_histogram().count(), 0);
        assert_eq!(t.stage_latency(StageId::Sense).count(), 0);
    }

    #[test]
    fn ring_buffer_caps_records_but_keeps_exact_aggregates() {
        let mut t = LoopTelemetry::with_capacity(4);
        for i in 0..10 {
            let trust = if i % 2 == 0 {
                Trust::Trusted
            } else {
                Trust::Suspect(0.5)
            };
            t.record(i as f64, 0.1, trust);
        }
        // Only the 4 most recent records retained, oldest first.
        let kept: Vec<u64> = t.records().map(|r| r.tick).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(t.capacity(), 4);
        // Aggregates stay exact over all 10 ticks.
        assert_eq!(t.ticks(), 10);
        assert_eq!(t.total_energy_j(), 45.0);
        assert!((t.total_latency_s() - 1.0).abs() < 1e-12);
        assert_eq!(t.suspect_fraction(), 0.5);
        assert_eq!(t.energy_stats().mean(), 4.5);
        assert_eq!(t.latency_histogram().count(), 10);
    }

    /// Regression: `records()` must yield chronological order exactly at the
    /// capacity boundaries, where an off-by-one in the head index is easiest
    /// to introduce (len == cap: no wraparound yet; len == cap + 1: the ring
    /// has wrapped by exactly one slot).
    #[test]
    fn records_chronological_at_capacity_boundaries() {
        const CAP: usize = 5;
        // len == cap: every record retained, insertion order.
        let mut t = LoopTelemetry::with_capacity(CAP);
        for i in 0..CAP {
            t.record(i as f64, 0.0, Trust::Trusted);
        }
        let kept: Vec<u64> = t.records().map(|r| r.tick).collect();
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
        // len == cap + 1: oldest evicted, order still strictly ascending.
        t.record(CAP as f64, 0.0, Trust::Trusted);
        let kept: Vec<u64> = t.records().map(|r| r.tick).collect();
        assert_eq!(kept, vec![1, 2, 3, 4, 5]);
        assert_eq!(t.records().count(), CAP);
        // Energies ride along with their ticks (records were not merely
        // reordered indices).
        for rec in t.records() {
            assert_eq!(rec.energy_j, rec.tick as f64);
        }
        // And a full extra lap keeps the invariant.
        for i in (CAP + 1)..(2 * CAP + 2) {
            t.record(i as f64, 0.0, Trust::Trusted);
        }
        let kept: Vec<u64> = t.records().map(|r| r.tick).collect();
        assert_eq!(kept, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let mut t = LoopTelemetry::with_capacity(0);
        t.record(1.0, 0.0, Trust::Trusted);
        t.record(2.0, 0.0, Trust::Trusted);
        assert_eq!(t.capacity(), 1);
        assert_eq!(t.records().count(), 1);
        assert_eq!(t.records().next().unwrap().tick, 1);
        assert_eq!(t.total_energy_j(), 3.0);
    }

    #[test]
    fn stage_attribution_accumulates() {
        let mut t = LoopTelemetry::new();
        let mut stages = StageBreakdown::new();
        stages.add(StageId::Sense, 2e-3, 1e-3);
        stages.add(StageId::Control, 1e-3, 5e-4);
        t.record_with_stages(3e-3, 1.5e-3, Trust::Trusted, stages);
        t.record_with_stages(3e-3, 1.5e-3, Trust::Trusted, stages);
        let totals = t.stage_totals();
        assert!((totals.get(StageId::Sense).energy_j - 4e-3).abs() < 1e-15);
        assert!((totals.get(StageId::Control).latency_s - 1e-3).abs() < 1e-15);
        assert_eq!(totals.get(StageId::Perceive).energy_j, 0.0);
        // Active stages have histogram samples; idle stages stay empty.
        assert_eq!(t.stage_latency(StageId::Sense).count(), 2);
        assert_eq!(t.stage_latency(StageId::Perceive).count(), 0);
        assert_eq!(t.latency_histogram().count(), 2);
        // The retained record carries the breakdown.
        assert_eq!(t.records().next().unwrap().stages, stages);
    }

    #[test]
    fn export_into_registry_uses_standard_names() {
        let mut t = LoopTelemetry::new();
        let mut stages = StageBreakdown::new();
        stages.add(StageId::Sense, 1e-3, 1e-4);
        t.record_with_stages(1e-3, 1e-4, Trust::Trusted, stages);
        t.record_fault(&StageError::Dropout);
        let mut reg = MetricsRegistry::new();
        t.export_into(&mut reg);
        assert_eq!(reg.counter("loop.ticks_total"), 1);
        assert_eq!(reg.counter("loop.faults_total"), 1);
        assert_eq!(reg.gauge("loop.energy_j"), Some(1e-3));
        assert_eq!(reg.gauge(StageId::Sense.energy_key()), Some(1e-3));
        assert_eq!(reg.histogram("loop.tick.latency_s").unwrap().count(), 1);
        assert_eq!(
            reg.histogram(StageId::Sense.latency_key()).unwrap().count(),
            1
        );
        assert_eq!(
            reg.histogram(StageId::Perceive.latency_key())
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn fault_counters_classify_errors() {
        let mut t = LoopTelemetry::new();
        t.record_fault(&StageError::Dropout);
        t.record_fault(&StageError::Dropout);
        t.record_fault(&StageError::Timeout {
            latency_s: 0.2,
            budget_s: 0.1,
        });
        t.record_fault(&StageError::OutOfRange {
            value: 9.0,
            min: 0.0,
            max: 1.0,
        });
        t.record_fault(&StageError::Poisoned);
        t.record_retries(3);
        t.record_hold();
        t.record_fallback();
        let c = t.fault_counters();
        assert_eq!(c.faults, 5);
        assert_eq!(c.dropouts, 2);
        assert_eq!(c.timeouts, 1);
        assert_eq!(c.out_of_range, 1);
        assert_eq!(c.poisoned, 1);
        assert_eq!(c.retries, 3);
        assert_eq!(c.holds, 1);
        assert_eq!(c.fallbacks, 1);
    }

    #[test]
    fn fault_counters_display_formats_every_field() {
        let c = FaultCounters {
            faults: 9,
            dropouts: 4,
            timeouts: 2,
            out_of_range: 2,
            poisoned: 1,
            retries: 5,
            holds: 3,
            fallbacks: 1,
        };
        let s = c.to_string();
        assert_eq!(
            s,
            "9 faults (4 dropouts, 2 timeouts, 2 out-of-range, 1 poisoned; \
             5 retries, 3 holds, 1 fallbacks)"
        );
        // All-zero counters still render (callers decide whether to show).
        let zero = FaultCounters::default().to_string();
        assert!(zero.starts_with("0 faults"));
        assert!(zero.contains("0 fallbacks"));
    }

    #[test]
    fn comm_counters_accumulate_and_export() {
        let mut t = LoopTelemetry::new();
        assert_eq!(t.comm_counters(), CommCounters::default());
        // Fresh telemetry exports no comm metrics at all.
        let mut reg = MetricsRegistry::new();
        t.export_into(&mut reg);
        assert_eq!(reg.counter("loop.comm.msgs_sent_total"), 0);
        assert!(reg.gauge("loop.comm.latency_s").is_none());

        t.record_comm_tx(1024, 2, true, 3e-3);
        t.record_comm_tx(512, 0, false, 1e-3);
        t.record_comm_rx(2048);
        // Non-finite and negative tails are ignored, not accumulated.
        t.record_comm_tx(16, 0, true, f64::NAN);
        t.record_comm_tx(16, 0, true, -1.0);
        let c = t.comm_counters();
        assert_eq!(c.msgs_sent, 4);
        assert_eq!(c.msgs_delivered, 3);
        assert_eq!(c.msgs_dropped, 1);
        assert_eq!(c.retransmits, 2);
        assert_eq!(c.bytes_tx, 1024 + 512 + 32);
        assert_eq!(c.bytes_rx, 2048);
        assert!((c.comm_s - 4e-3).abs() < 1e-15);

        let mut reg = MetricsRegistry::new();
        t.export_into(&mut reg);
        assert_eq!(reg.counter("loop.comm.msgs_sent_total"), 4);
        assert_eq!(reg.counter("loop.comm.msgs_dropped_total"), 1);
        assert_eq!(reg.counter("loop.comm.bytes_rx_total"), 2048);
        assert_eq!(reg.gauge("loop.comm.latency_s"), Some(c.comm_s));

        let s = c.to_string();
        assert!(s.contains("4 sent"), "{s}");
        assert!(s.contains("1 dropped"), "{s}");
        assert!(s.contains("2 retransmits"), "{s}");
    }

    /// Snapshot `t`, restore into a fresh instance, and assert the restored
    /// telemetry is observably identical — records (order included),
    /// aggregates, histograms, counters.
    fn assert_round_trip(t: &LoopTelemetry) -> LoopTelemetry {
        use crate::checkpoint::Checkpoint;
        let mut ckpt = Checkpoint::new("t");
        t.save_state(&mut ckpt, "telemetry");
        // Through the wire, not just through the object graph.
        let ckpt = Checkpoint::from_jsonl(&ckpt.to_jsonl()).expect("parses");
        let mut back = LoopTelemetry::new();
        back.restore_state(&ckpt, "telemetry").expect("restores");
        assert_eq!(back.ticks(), t.ticks());
        assert_eq!(back.capacity(), t.capacity());
        let a: Vec<TickRecord> = t.records().copied().collect();
        let b: Vec<TickRecord> = back.records().copied().collect();
        assert_eq!(a, b, "record order/content diverged");
        assert_eq!(back.last_record().copied(), t.last_record().copied());
        assert_eq!(
            back.total_energy_j().to_bits(),
            t.total_energy_j().to_bits()
        );
        assert_eq!(
            back.energy_stats().mean().to_bits(),
            t.energy_stats().mean().to_bits()
        );
        assert_eq!(
            back.suspect_fraction().to_bits(),
            t.suspect_fraction().to_bits()
        );
        assert_eq!(back.max_suspect_streak(), t.max_suspect_streak());
        assert_eq!(back.current_suspect_streak(), t.current_suspect_streak());
        assert_eq!(back.fault_counters(), t.fault_counters());
        assert_eq!(back.comm_counters(), t.comm_counters());
        assert_eq!(
            back.latency_histogram().count(),
            t.latency_histogram().count()
        );
        for st in StageId::ALL {
            assert_eq!(
                back.stage_latency(st).nonzero_buckets(),
                t.stage_latency(st).nonzero_buckets()
            );
        }
        for p in Precision::ALL {
            assert_eq!(back.precision_ticks(p), t.precision_ticks(p));
        }
        back
    }

    fn busy_telemetry(capacity: usize, ticks: usize) -> LoopTelemetry {
        let mut t = LoopTelemetry::with_capacity(capacity);
        for i in 0..ticks {
            let trust = match i % 3 {
                0 => Trust::Trusted,
                1 => Trust::Suspect(0.1 + (i as f64) * 1e-3),
                _ => Trust::Untrusted,
            };
            let prec = Precision::ALL[i % 3];
            let mut stages = StageBreakdown::new();
            stages.add(StageId::Sense, 1e-3 + i as f64 * 1e-6, 1e-4);
            stages.add(StageId::Control, 2e-3, 5e-5 + i as f64 * 1e-8);
            t.record_with_precision(i as f64 * 1e-3, 1e-4 + i as f64 * 1e-7, trust, stages, prec);
        }
        t.record_fault(&StageError::Dropout);
        t.record_comm_tx(128, 1, true, 2e-3);
        t
    }

    #[test]
    fn checkpoint_round_trips_live_telemetry() {
        assert_round_trip(&LoopTelemetry::new());
        assert_round_trip(&busy_telemetry(8, 3)); // partially filled ring
        assert_round_trip(&busy_telemetry(8, 100)); // well past wraparound
    }

    /// Regression (hidden-state sweep): the ring's `head` is ambiguous
    /// against `len` exactly when `len == capacity` (head == 0 both before
    /// the first wrap and after every full lap). Snapshot/restore at
    /// `capacity - 1`, `capacity`, and `capacity + 1` ticks must preserve
    /// chronological record order, and a restored ring must keep evicting
    /// in the right order as new ticks land.
    #[test]
    fn checkpoint_preserves_ring_order_at_wrap_boundary() {
        const CAP: usize = 6;
        for ticks in [CAP - 1, CAP, CAP + 1] {
            let t = busy_telemetry(CAP, ticks);
            let mut restored = assert_round_trip(&t);
            let mut uninterrupted = busy_telemetry(CAP, ticks);
            // Keep ticking both: eviction order must stay identical.
            for i in 0..CAP {
                let e = 100.0 + i as f64;
                restored.record(e, 0.0, Trust::Trusted);
                uninterrupted.record(e, 0.0, Trust::Trusted);
                let a: Vec<u64> = restored.records().map(|r| r.tick).collect();
                let b: Vec<u64> = uninterrupted.records().map(|r| r.tick).collect();
                assert_eq!(a, b, "snapshot at {ticks} ticks, +{} more", i + 1);
            }
        }
    }

    #[test]
    fn checkpoint_restore_rejects_inconsistent_records() {
        use crate::checkpoint::{Checkpoint, CheckpointError};
        let t = busy_telemetry(8, 5);
        let mut ckpt = Checkpoint::new("t");
        t.save_state(&mut ckpt, "telemetry");
        // Parse, then corrupt one parallel array's length.
        let doc = ckpt.to_jsonl();
        let broken = doc.replace("\"rec_trust\":\"U:0;1;2;0;1\"", "\"rec_trust\":\"U:0;1\"");
        assert_ne!(doc, broken, "corruption target not found");
        let ckpt = Checkpoint::from_jsonl(&broken).expect("still parses");
        let mut back = LoopTelemetry::new();
        assert!(matches!(
            back.restore_state(&ckpt, "telemetry"),
            Err(CheckpointError::BadValue(_))
        ));
        // Missing section is typed, not a panic.
        let empty = Checkpoint::new("t");
        assert!(matches!(
            back.restore_state(&empty, "telemetry"),
            Err(CheckpointError::MissingSection(_))
        ));
    }

    #[test]
    fn display_summarizes() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.5, Trust::Trusted);
        let s = t.to_string();
        assert!(s.contains("1 ticks"));
        assert!(s.contains("0% suspect"));
        assert!(!s.contains("faults"), "clean loop shows no fault section");
        t.record_fault(&StageError::Dropout);
        t.record_fallback();
        let s = t.to_string();
        assert!(s.contains("1 faults"), "{s}");
        assert!(s.contains("1 fallbacks"), "{s}");
    }
}
