//! Loop telemetry: per-tick records and running aggregates.
//!
//! The cyclical nature of sensing-action loops makes them sensitive to
//! cascading errors (§II); telemetry is how the experiments observe drift —
//! energy/latency trends, trust degradation, consecutive-suspect streaks,
//! and (for fallible loops) fault/retry/fallback counts.
//!
//! Aggregates are maintained *incrementally*: totals, suspect fractions and
//! the energy/latency statistics are exact over **all** ticks and O(1) to
//! query, while the per-tick [`TickRecord`] history is retained in a bounded
//! ring buffer (capacity via [`LoopTelemetry::with_capacity`]) so a
//! million-tick production run does not grow memory without bound.

use crate::fault::StageError;
use crate::stage::Trust;
use sensact_math::RunningStats;

/// Default number of per-tick records retained by the ring buffer.
pub const DEFAULT_RECORD_CAPACITY: usize = 4096;

/// One tick's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickRecord {
    /// Tick index (0-based).
    pub tick: u64,
    /// Energy consumed this tick (joules).
    pub energy_j: f64,
    /// Latency of this tick (seconds).
    pub latency_s: f64,
    /// Monitor verdict.
    pub trust: Trust,
}

/// Fault-handling counters of a fallible loop (all zero for infallible
/// loops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Stage errors observed (including ones later recovered by retry).
    pub faults: u64,
    /// Faults that were dropouts.
    pub dropouts: u64,
    /// Faults that were latency-budget timeouts.
    pub timeouts: u64,
    /// Faults that were out-of-range readings.
    pub out_of_range: u64,
    /// Faults that were NaN-poisoned outputs.
    pub poisoned: u64,
    /// Stage re-attempts issued by the retry policy.
    pub retries: u64,
    /// Ticks served from held (stale) last-good features.
    pub holds: u64,
    /// Ticks that fell back to the controller's fail-safe action.
    pub fallbacks: u64,
}

/// Aggregated telemetry of one loop.
#[derive(Debug, Clone)]
pub struct LoopTelemetry {
    records: Vec<TickRecord>,
    /// Oldest record's index once the ring is full.
    head: usize,
    capacity: usize,
    ticks: u64,
    total_energy_j: f64,
    total_latency_s: f64,
    suspect_ticks: u64,
    energy: RunningStats,
    latency: RunningStats,
    suspect_streak: u32,
    max_suspect_streak: u32,
    counters: FaultCounters,
}

impl Default for LoopTelemetry {
    fn default() -> Self {
        LoopTelemetry::with_capacity(DEFAULT_RECORD_CAPACITY)
    }
}

impl LoopTelemetry {
    /// Fresh telemetry with the default record capacity.
    pub fn new() -> Self {
        LoopTelemetry::default()
    }

    /// Fresh telemetry retaining at most `capacity` per-tick records
    /// (clamped to ≥ 1). Aggregate statistics remain exact over all ticks
    /// regardless of capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        LoopTelemetry {
            records: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            ticks: 0,
            total_energy_j: 0.0,
            total_latency_s: 0.0,
            suspect_ticks: 0,
            energy: RunningStats::new(),
            latency: RunningStats::new(),
            suspect_streak: 0,
            max_suspect_streak: 0,
            counters: FaultCounters::default(),
        }
    }

    /// Record a tick.
    pub fn record(&mut self, energy_j: f64, latency_s: f64, trust: Trust) {
        let rec = TickRecord {
            tick: self.ticks,
            energy_j,
            latency_s,
            trust,
        };
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
        self.ticks += 1;
        self.total_energy_j += energy_j;
        self.total_latency_s += latency_s;
        self.energy.push(energy_j);
        self.latency.push(latency_s);
        if trust.suspicion() > 0.0 {
            self.suspect_ticks += 1;
            self.suspect_streak += 1;
            self.max_suspect_streak = self.max_suspect_streak.max(self.suspect_streak);
        } else {
            self.suspect_streak = 0;
        }
    }

    /// Count one stage error (classified by kind).
    pub fn record_fault(&mut self, error: &StageError) {
        self.counters.faults += 1;
        match error {
            StageError::Dropout => self.counters.dropouts += 1,
            StageError::Timeout { .. } => self.counters.timeouts += 1,
            StageError::OutOfRange { .. } => self.counters.out_of_range += 1,
            StageError::Poisoned => self.counters.poisoned += 1,
        }
    }

    /// Count `n` retry attempts issued within one tick.
    pub fn record_retries(&mut self, n: u32) {
        self.counters.retries += n as u64;
    }

    /// Count one tick served from held (stale) features.
    pub fn record_hold(&mut self) {
        self.counters.holds += 1;
    }

    /// Count one tick resolved by the fail-safe fallback action.
    pub fn record_fallback(&mut self) {
        self.counters.fallbacks += 1;
    }

    /// Number of recorded ticks (all ticks ever, not just retained records).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Retained per-tick records, oldest first. At most
    /// [`LoopTelemetry::capacity`] of the most recent ticks are kept.
    pub fn records(&self) -> impl Iterator<Item = &TickRecord> {
        let (wrapped, ordered) = self.records.split_at(self.head);
        ordered.iter().chain(wrapped.iter())
    }

    /// Maximum number of per-tick records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total energy over all ticks (joules); O(1).
    pub fn total_energy_j(&self) -> f64 {
        self.total_energy_j
    }

    /// Total latency over all ticks (seconds); O(1).
    pub fn total_latency_s(&self) -> f64 {
        self.total_latency_s
    }

    /// Energy statistics across ticks.
    pub fn energy_stats(&self) -> &RunningStats {
        &self.energy
    }

    /// Latency statistics across ticks.
    pub fn latency_stats(&self) -> &RunningStats {
        &self.latency
    }

    /// Fault-handling counters (zero for loops without a fault layer).
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// Fraction of ticks with non-zero suspicion; O(1).
    pub fn suspect_fraction(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.suspect_ticks as f64 / self.ticks as f64
    }

    /// Longest run of consecutive suspect/untrusted ticks — the cascading-
    /// error indicator.
    pub fn max_suspect_streak(&self) -> u32 {
        self.max_suspect_streak
    }

    /// Current (ongoing) suspect streak.
    pub fn current_suspect_streak(&self) -> u32 {
        self.suspect_streak
    }
}

impl std::fmt::Display for LoopTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ticks, {:.3e} J total, mean latency {:.3e} s, {:.0}% suspect",
            self.ticks(),
            self.total_energy_j(),
            self.latency.mean(),
            self.suspect_fraction() * 100.0
        )?;
        let c = self.counters;
        if c != FaultCounters::default() {
            write!(
                f,
                ", {} faults ({} retries, {} holds, {} fallbacks)",
                c.faults, c.retries, c.holds, c.fallbacks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.1, Trust::Trusted);
        t.record(3.0, 0.3, Trust::Suspect(0.5));
        assert_eq!(t.ticks(), 2);
        assert_eq!(t.total_energy_j(), 4.0);
        assert_eq!(t.energy_stats().mean(), 2.0);
        assert_eq!(t.latency_stats().max(), 0.3);
        assert_eq!(t.records().nth(1).unwrap().tick, 1);
    }

    #[test]
    fn suspect_fraction_and_streaks() {
        let mut t = LoopTelemetry::new();
        for trust in [
            Trust::Trusted,
            Trust::Suspect(0.2),
            Trust::Untrusted,
            Trust::Suspect(0.9),
            Trust::Trusted,
            Trust::Suspect(0.1),
        ] {
            t.record(0.0, 0.0, trust);
        }
        assert!((t.suspect_fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.max_suspect_streak(), 3);
        assert_eq!(t.current_suspect_streak(), 1);
    }

    #[test]
    fn empty_telemetry_is_benign() {
        let t = LoopTelemetry::new();
        assert_eq!(t.ticks(), 0);
        assert_eq!(t.suspect_fraction(), 0.0);
        assert_eq!(t.total_energy_j(), 0.0);
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn ring_buffer_caps_records_but_keeps_exact_aggregates() {
        let mut t = LoopTelemetry::with_capacity(4);
        for i in 0..10 {
            let trust = if i % 2 == 0 {
                Trust::Trusted
            } else {
                Trust::Suspect(0.5)
            };
            t.record(i as f64, 0.1, trust);
        }
        // Only the 4 most recent records retained, oldest first.
        let kept: Vec<u64> = t.records().map(|r| r.tick).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(t.capacity(), 4);
        // Aggregates stay exact over all 10 ticks.
        assert_eq!(t.ticks(), 10);
        assert_eq!(t.total_energy_j(), 45.0);
        assert!((t.total_latency_s() - 1.0).abs() < 1e-12);
        assert_eq!(t.suspect_fraction(), 0.5);
        assert_eq!(t.energy_stats().mean(), 4.5);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let mut t = LoopTelemetry::with_capacity(0);
        t.record(1.0, 0.0, Trust::Trusted);
        t.record(2.0, 0.0, Trust::Trusted);
        assert_eq!(t.capacity(), 1);
        assert_eq!(t.records().count(), 1);
        assert_eq!(t.records().next().unwrap().tick, 1);
        assert_eq!(t.total_energy_j(), 3.0);
    }

    #[test]
    fn fault_counters_classify_errors() {
        let mut t = LoopTelemetry::new();
        t.record_fault(&StageError::Dropout);
        t.record_fault(&StageError::Dropout);
        t.record_fault(&StageError::Timeout {
            latency_s: 0.2,
            budget_s: 0.1,
        });
        t.record_fault(&StageError::OutOfRange {
            value: 9.0,
            min: 0.0,
            max: 1.0,
        });
        t.record_fault(&StageError::Poisoned);
        t.record_retries(3);
        t.record_hold();
        t.record_fallback();
        let c = t.fault_counters();
        assert_eq!(c.faults, 5);
        assert_eq!(c.dropouts, 2);
        assert_eq!(c.timeouts, 1);
        assert_eq!(c.out_of_range, 1);
        assert_eq!(c.poisoned, 1);
        assert_eq!(c.retries, 3);
        assert_eq!(c.holds, 1);
        assert_eq!(c.fallbacks, 1);
    }

    #[test]
    fn display_summarizes() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.5, Trust::Trusted);
        let s = t.to_string();
        assert!(s.contains("1 ticks"));
        assert!(s.contains("0% suspect"));
        assert!(!s.contains("faults"), "clean loop shows no fault section");
        t.record_fault(&StageError::Dropout);
        t.record_fallback();
        let s = t.to_string();
        assert!(s.contains("1 faults"), "{s}");
        assert!(s.contains("1 fallbacks"), "{s}");
    }
}
