//! Loop telemetry: per-tick records and running aggregates.
//!
//! The cyclical nature of sensing-action loops makes them sensitive to
//! cascading errors (§II); telemetry is how the experiments observe drift —
//! energy/latency trends, trust degradation, and consecutive-suspect streaks.

use crate::stage::Trust;
use sensact_math::RunningStats;

/// One tick's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickRecord {
    /// Tick index (0-based).
    pub tick: u64,
    /// Energy consumed this tick (joules).
    pub energy_j: f64,
    /// Latency of this tick (seconds).
    pub latency_s: f64,
    /// Monitor verdict.
    pub trust: Trust,
}

/// Aggregated telemetry of one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopTelemetry {
    records: Vec<TickRecord>,
    energy: RunningStats,
    latency: RunningStats,
    suspect_streak: u32,
    max_suspect_streak: u32,
}

impl LoopTelemetry {
    /// Fresh telemetry.
    pub fn new() -> Self {
        LoopTelemetry::default()
    }

    /// Record a tick.
    pub fn record(&mut self, energy_j: f64, latency_s: f64, trust: Trust) {
        let tick = self.records.len() as u64;
        self.records.push(TickRecord {
            tick,
            energy_j,
            latency_s,
            trust,
        });
        self.energy.push(energy_j);
        self.latency.push(latency_s);
        if trust.suspicion() > 0.0 {
            self.suspect_streak += 1;
            self.max_suspect_streak = self.max_suspect_streak.max(self.suspect_streak);
        } else {
            self.suspect_streak = 0;
        }
    }

    /// Number of recorded ticks.
    pub fn ticks(&self) -> u64 {
        self.records.len() as u64
    }

    /// All per-tick records.
    pub fn records(&self) -> &[TickRecord] {
        &self.records
    }

    /// Total energy over all ticks (joules).
    pub fn total_energy_j(&self) -> f64 {
        self.records.iter().map(|r| r.energy_j).sum()
    }

    /// Energy statistics across ticks.
    pub fn energy_stats(&self) -> &RunningStats {
        &self.energy
    }

    /// Latency statistics across ticks.
    pub fn latency_stats(&self) -> &RunningStats {
        &self.latency
    }

    /// Fraction of ticks with non-zero suspicion.
    pub fn suspect_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|r| r.trust.suspicion() > 0.0)
            .count() as f64
            / self.records.len() as f64
    }

    /// Longest run of consecutive suspect/untrusted ticks — the cascading-
    /// error indicator.
    pub fn max_suspect_streak(&self) -> u32 {
        self.max_suspect_streak
    }

    /// Current (ongoing) suspect streak.
    pub fn current_suspect_streak(&self) -> u32 {
        self.suspect_streak
    }
}

impl std::fmt::Display for LoopTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ticks, {:.3e} J total, mean latency {:.3e} s, {:.0}% suspect",
            self.ticks(),
            self.total_energy_j(),
            self.latency.mean(),
            self.suspect_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.1, Trust::Trusted);
        t.record(3.0, 0.3, Trust::Suspect(0.5));
        assert_eq!(t.ticks(), 2);
        assert_eq!(t.total_energy_j(), 4.0);
        assert_eq!(t.energy_stats().mean(), 2.0);
        assert_eq!(t.latency_stats().max(), 0.3);
        assert_eq!(t.records()[1].tick, 1);
    }

    #[test]
    fn suspect_fraction_and_streaks() {
        let mut t = LoopTelemetry::new();
        for trust in [
            Trust::Trusted,
            Trust::Suspect(0.2),
            Trust::Untrusted,
            Trust::Suspect(0.9),
            Trust::Trusted,
            Trust::Suspect(0.1),
        ] {
            t.record(0.0, 0.0, trust);
        }
        assert!((t.suspect_fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.max_suspect_streak(), 3);
        assert_eq!(t.current_suspect_streak(), 1);
    }

    #[test]
    fn empty_telemetry_is_benign() {
        let t = LoopTelemetry::new();
        assert_eq!(t.ticks(), 0);
        assert_eq!(t.suspect_fraction(), 0.0);
        assert_eq!(t.total_energy_j(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.5, Trust::Trusted);
        let s = t.to_string();
        assert!(s.contains("1 ticks"));
        assert!(s.contains("0% suspect"));
    }
}
