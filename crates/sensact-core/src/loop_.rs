//! The sensing-to-action loop runner.

use crate::adapt::{AdaptationPolicy, NoAdaptation};
use crate::budget::EnergyBudget;
use crate::checkpoint::{Checkpoint, CheckpointError, StageState};
use crate::precision::{Precision, PrecisionGovernor, PrecisionPolicy};
use crate::stage::{AlwaysTrust, Controller, Monitor, Perceptor, Sensor, StageContext, Trust};
use crate::telemetry::LoopTelemetry;
use crate::trace::{StageBreakdown, StageId, Tracer};

/// Output of one loop tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopOutput<A> {
    /// The decided action.
    pub action: A,
    /// Monitor verdict for this tick.
    pub trust: Trust,
    /// Energy charged this tick (joules).
    pub energy_j: f64,
    /// Latency of this tick (seconds).
    pub latency_s: f64,
    /// Tick index.
    pub tick: u64,
}

/// A complete sensing-to-action loop: sensor → perceptor → monitor →
/// controller, with an action-to-sensing adaptation policy and an energy
/// budget.
///
/// Construct through [`LoopBuilder`].
#[derive(Debug)]
pub struct SensingActionLoop<S, P, M, C, Ad> {
    name: String,
    sensor: S,
    perceptor: P,
    monitor: M,
    controller: C,
    policy: Ad,
    budget: EnergyBudget,
    telemetry: LoopTelemetry,
    tracer: Tracer,
    governor: PrecisionGovernor,
}

impl<S, P, M, C, Ad> SensingActionLoop<S, P, M, C, Ad> {
    /// Loop name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Telemetry accumulated so far.
    pub fn telemetry(&self) -> &LoopTelemetry {
        &self.telemetry
    }

    /// Mutably borrow the telemetry — the hook an external runtime (e.g. a
    /// fleet scheduler) uses to attribute events it observes from outside the
    /// loop, such as a deadline miss surfaced as a
    /// [`StageError::Timeout`](crate::fault::StageError::Timeout) fault.
    pub fn telemetry_mut(&mut self) -> &mut LoopTelemetry {
        &mut self.telemetry
    }

    /// Budget state.
    pub fn budget(&self) -> &EnergyBudget {
        &self.budget
    }

    /// Borrow the sensor (e.g. to read its adapted knobs).
    pub fn sensor(&self) -> &S {
        &self.sensor
    }

    /// Mutably borrow the sensor.
    pub fn sensor_mut(&mut self) -> &mut S {
        &mut self.sensor
    }

    /// Borrow the controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Borrow the tracer (e.g. to export collected spans).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutably borrow the tracer (e.g. to drain spans via
    /// [`Tracer::take_spans`]).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The precision governor deciding each tick's numeric mode (disabled —
    /// always f64 — unless [`LoopBuilder::with_precision`] installed a
    /// policy).
    pub fn precision_governor(&self) -> &PrecisionGovernor {
        &self.governor
    }

    /// Install or clear a fleet-level precision hint (e.g. the scheduler's
    /// energy arbiter recommending a cheaper mode). A disabled governor
    /// ignores hints.
    pub fn set_precision_hint(&mut self, hint: Option<Precision>) {
        self.governor.set_hint(hint);
    }

    /// Run one tick against an environment snapshot: sense, perceive, assess,
    /// decide, then adapt the sensor for the next tick.
    ///
    /// Every stage's charged energy/latency is attributed to a
    /// [`StageBreakdown`] carried by the tick's telemetry record; when the
    /// loop's [`Tracer`] is enabled, each stage also emits a [`Span`](crate::trace::Span).
    pub fn tick<E>(&mut self, env: &E) -> LoopOutput<C::Action>
    where
        S: Sensor<E>,
        P: Perceptor<S::Reading>,
        M: Monitor<P::Features>,
        C: Controller<P::Features>,
        Ad: AdaptationPolicy<S, C::Action>,
    {
        let tick = self.telemetry.ticks();
        self.tracer.new_tick();
        let mut ctx = StageContext::new();
        // Decide this tick's numeric mode from current budget pressure and
        // stamp it into the context before any stage runs.
        let precision = self.governor.decide(self.budget.pressure());
        ctx.set_precision(precision);
        let mut stages = StageBreakdown::new();
        // Attribute each stage by snapshotting the ledger around it. The
        // closure-free repetition keeps the hot path monomorphic and branch-
        // predictable; tracer start/finish are single branches when disabled.
        let (mut e0, mut l0) = (0.0f64, 0.0f64);
        let mut charge = |ctx: &StageContext,
                          stages: &mut StageBreakdown,
                          tracer: &mut Tracer,
                          stage: StageId,
                          t0: f64| {
            let (de, dl) = (ctx.energy_j() - e0, ctx.latency_s() - l0);
            (e0, l0) = (ctx.energy_j(), ctx.latency_s());
            stages.add(stage, de, dl);
            tracer.finish(tick, stage, t0, de, dl, true);
        };

        let t0 = self.tracer.start();
        let reading = self.sensor.sense(env, &mut ctx);
        charge(&ctx, &mut stages, &mut self.tracer, StageId::Sense, t0);

        let t0 = self.tracer.start();
        let features = self.perceptor.perceive(&reading, &mut ctx);
        charge(&ctx, &mut stages, &mut self.tracer, StageId::Perceive, t0);

        let t0 = self.tracer.start();
        let trust = self.monitor.assess(&features, &mut ctx);
        charge(&ctx, &mut stages, &mut self.tracer, StageId::Monitor, t0);
        // Trust drift feeds back into the governor: suspicion at or above
        // the policy's drift threshold forces f64 from the next tick on.
        self.governor.observe_trust(trust);

        let t0 = self.tracer.start();
        let action = self.controller.decide(&features, trust, &mut ctx);
        charge(&ctx, &mut stages, &mut self.tracer, StageId::Control, t0);

        // Act stage: consume *before* adapting — the policy must see this
        // tick's budget pressure, not last tick's, or a single huge-energy
        // tick could not throttle the very next one.
        let t0 = self.tracer.start();
        self.budget.consume(ctx.energy_j(), ctx.latency_s());
        self.policy
            .adapt(&mut self.sensor, &action, trust, &self.budget);
        charge(&ctx, &mut stages, &mut self.tracer, StageId::Act, t0);

        self.telemetry.record_with_precision(
            ctx.energy_j(),
            ctx.latency_s(),
            trust,
            stages,
            precision,
        );
        LoopOutput {
            action,
            trust,
            energy_j: ctx.energy_j(),
            latency_s: ctx.latency_s(),
            tick,
        }
    }

    /// Serialize the loop's complete live state — telemetry, budget,
    /// precision governor, tracer ring, plus every stage's [`StageState`] —
    /// into a versioned [`Checkpoint`] for kill-and-resume or live migration.
    ///
    /// The contract: [`SensingActionLoop::restore`] of this checkpoint onto
    /// an *identically constructed* loop makes every subsequent tick
    /// bit-identical to the uninterrupted run.
    pub fn snapshot(&self) -> Checkpoint
    where
        S: StageState,
        P: StageState,
        M: StageState,
        C: StageState,
        Ad: StageState,
    {
        let mut ckpt = Checkpoint::new(&self.name);
        self.telemetry.save_state(&mut ckpt, "telemetry");
        self.budget.save_state(&mut ckpt, "budget");
        self.governor.save_state(&mut ckpt, "governor");
        self.tracer.save_state(&mut ckpt, "tracer");
        self.sensor.save_state(&mut ckpt, "sensor");
        self.perceptor.save_state(&mut ckpt, "perceptor");
        self.monitor.save_state(&mut ckpt, "monitor");
        self.controller.save_state(&mut ckpt, "controller");
        self.policy.save_state(&mut ckpt, "policy");
        ckpt
    }

    /// Restore live state saved by [`SensingActionLoop::snapshot`]. The loop
    /// must be built with the same configuration (stages, budget capacity,
    /// precision policy, telemetry capacity) as the snapshotted one; only
    /// mutable state travels through the checkpoint.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError>
    where
        S: StageState,
        P: StageState,
        M: StageState,
        C: StageState,
        Ad: StageState,
    {
        self.telemetry.restore_state(ckpt, "telemetry")?;
        self.budget.restore_state(ckpt, "budget")?;
        self.governor.restore_state(ckpt, "governor")?;
        self.tracer.restore_state(ckpt, "tracer")?;
        self.sensor.restore_state(ckpt, "sensor")?;
        self.perceptor.restore_state(ckpt, "perceptor")?;
        self.monitor.restore_state(ckpt, "monitor")?;
        self.controller.restore_state(ckpt, "controller")?;
        self.policy.restore_state(ckpt, "policy")
    }

    /// Run `n` ticks against a mutable environment, applying each action via
    /// `apply`. Returns the outputs.
    pub fn run<E>(
        &mut self,
        env: &mut E,
        n: usize,
        mut apply: impl FnMut(&mut E, &C::Action),
    ) -> Vec<LoopOutput<C::Action>>
    where
        S: Sensor<E>,
        P: Perceptor<S::Reading>,
        M: Monitor<P::Features>,
        C: Controller<P::Features>,
        Ad: AdaptationPolicy<S, C::Action>,
    {
        let mut outputs = Vec::with_capacity(n);
        for _ in 0..n {
            let out = self.tick(env);
            apply(env, &out.action);
            outputs.push(out);
        }
        outputs
    }
}

/// Builder for [`SensingActionLoop`].
#[derive(Debug)]
pub struct LoopBuilder {
    name: String,
    budget: EnergyBudget,
    telemetry_capacity: usize,
    tracer: Tracer,
    governor: PrecisionGovernor,
}

impl LoopBuilder {
    /// Start building a loop with the given name, an unlimited budget and a
    /// disabled tracer.
    pub fn new(name: impl Into<String>) -> Self {
        LoopBuilder {
            name: name.into(),
            budget: EnergyBudget::unlimited(),
            telemetry_capacity: crate::telemetry::DEFAULT_RECORD_CAPACITY,
            tracer: Tracer::disabled(),
            governor: PrecisionGovernor::disabled(),
        }
    }

    /// Attach an energy budget.
    pub fn with_budget(mut self, budget: EnergyBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Cap the number of per-tick telemetry records retained (aggregate
    /// statistics stay exact over all ticks regardless).
    pub fn with_telemetry_capacity(mut self, capacity: usize) -> Self {
        self.telemetry_capacity = capacity;
        self
    }

    /// Attach a tracer (e.g. [`Tracer::sim`] for deterministic spans,
    /// [`Tracer::wall`] for real timing). Defaults to [`Tracer::disabled`].
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Enable runtime mixed precision under the given policy: each tick the
    /// loop maps its budget pressure (and any scheduler hint) to a
    /// [`Precision`] mode, stamps it into the
    /// [`StageContext`](crate::stage::StageContext), and records it in
    /// telemetry. Without this call the loop always runs at f64.
    pub fn with_precision(mut self, policy: PrecisionPolicy) -> Self {
        self.governor = PrecisionGovernor::new(policy);
        self
    }

    /// Minimal loop: no monitor (always trusted), no adaptation.
    pub fn build<S, P, C>(
        self,
        sensor: S,
        perceptor: P,
        controller: C,
    ) -> SensingActionLoop<S, P, AlwaysTrust, C, NoAdaptation> {
        self.build_full(sensor, perceptor, AlwaysTrust, controller, NoAdaptation)
    }

    /// Monitored loop without adaptation.
    pub fn build_monitored<S, P, M, C>(
        self,
        sensor: S,
        perceptor: P,
        monitor: M,
        controller: C,
    ) -> SensingActionLoop<S, P, M, C, NoAdaptation> {
        self.build_full(sensor, perceptor, monitor, controller, NoAdaptation)
    }

    /// Fully-specified loop with monitor and adaptation policy.
    pub fn build_full<S, P, M, C, Ad>(
        self,
        sensor: S,
        perceptor: P,
        monitor: M,
        controller: C,
        policy: Ad,
    ) -> SensingActionLoop<S, P, M, C, Ad> {
        SensingActionLoop {
            name: self.name,
            sensor,
            perceptor,
            monitor,
            controller,
            policy,
            budget: self.budget,
            telemetry: LoopTelemetry::with_capacity(self.telemetry_capacity),
            tracer: self.tracer,
            governor: self.governor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::{ActionMagnitudeRate, SensingKnobs};
    use crate::stage::{FnController, FnMonitor, FnPerceptor, FnSensor};

    #[test]
    fn closed_loop_regulates_scalar_env() {
        let mut env = 8.0f64;
        let mut looop = LoopBuilder::new("reg").build(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-6, 1e-4);
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.4 * f),
        );
        let outs = looop.run(&mut env, 40, |e, a| *e += a);
        assert!(env.abs() < 1e-3, "env {env}");
        assert_eq!(outs.len(), 40);
        assert_eq!(looop.telemetry().ticks(), 40);
        assert!(looop.budget().consumed_j() > 0.0);
    }

    #[test]
    fn monitor_verdict_reaches_controller() {
        let mut looop = LoopBuilder::new("m").build_monitored(
            FnSensor::new(|e: &f64, _: &mut StageContext| *e),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnMonitor::new(|f: &f64, _: &mut StageContext| {
                if f.abs() > 5.0 {
                    Trust::Untrusted
                } else {
                    Trust::Trusted
                }
            }),
            FnController::new(|f: &f64, t: Trust, _: &mut StageContext| {
                if t.is_actionable() {
                    -*f
                } else {
                    0.0 // fail safe
                }
            }),
        );
        let safe = looop.tick(&10.0);
        assert_eq!(safe.action, 0.0);
        assert_eq!(safe.trust, Trust::Untrusted);
        let act = looop.tick(&2.0);
        assert_eq!(act.action, -2.0);
        assert_eq!(looop.telemetry().suspect_fraction(), 0.5);
    }

    /// Sensor with adjustable knobs; rate scales its (simulated) energy cost.
    #[derive(Debug)]
    struct RateSensor {
        rate: f64,
        resolution: f64,
    }

    impl SensingKnobs for RateSensor {
        fn rate(&self) -> f64 {
            self.rate
        }
        fn set_rate(&mut self, r: f64) {
            self.rate = r.clamp(0.0, 1.0);
        }
        fn resolution(&self) -> f64 {
            self.resolution
        }
        fn set_resolution(&mut self, r: f64) {
            self.resolution = r.clamp(0.0, 1.0);
        }
    }

    impl Sensor<f64> for RateSensor {
        type Reading = f64;
        fn sense(&mut self, env: &f64, ctx: &mut StageContext) -> f64 {
            ctx.charge(1e-3 * self.rate, 1e-4);
            *env
        }
    }

    #[test]
    fn adaptation_cuts_energy_in_quiet_environment() {
        // Quiet environment (stays at 0): adaptive loop should spend far less
        // energy than a fixed-rate loop — the §IV effect.
        let run = |adaptive: bool| -> f64 {
            let sensor = RateSensor {
                rate: 1.0,
                resolution: 1.0,
            };
            let perceptor = FnPerceptor::new(|r: &f64, _: &mut StageContext| *r);
            let controller = FnController::new(|f: &f64, _t, _: &mut StageContext| -0.1 * f);
            let mut env = 0.0f64;
            if adaptive {
                let mut l = LoopBuilder::new("a").build_full(
                    sensor,
                    perceptor,
                    AlwaysTrust,
                    controller,
                    ActionMagnitudeRate::default(),
                );
                l.run(&mut env, 100, |e, a| *e += a);
                l.telemetry().total_energy_j()
            } else {
                let mut l = LoopBuilder::new("f").build(sensor, perceptor, controller);
                l.run(&mut env, 100, |e, a| *e += a);
                l.telemetry().total_energy_j()
            }
        };
        let fixed = run(false);
        let adaptive = run(true);
        assert!(
            adaptive < fixed * 0.4,
            "adaptive {adaptive} vs fixed {fixed}"
        );
    }

    #[test]
    fn adaptation_keeps_rate_high_when_dynamic() {
        let sensor = RateSensor {
            rate: 1.0,
            resolution: 1.0,
        };
        let mut l = LoopBuilder::new("dyn").build_full(
            sensor,
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            AlwaysTrust,
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.9 * f),
            ActionMagnitudeRate::default(),
        );
        // Environment driven by an external disturbance each tick.
        let mut env = 0.0f64;
        for i in 0..60 {
            let out = l.tick(&env);
            env += out.action + if i % 2 == 0 { 3.0 } else { -3.0 };
        }
        assert!(l.sensor().rate() > 0.6, "rate {}", l.sensor().rate());
    }

    /// Regression: `tick` must consume the budget *before* the adaptation
    /// policy runs, so `ActionMagnitudeRate`'s budget-pressure ceiling acts
    /// on this tick's pressure. With the old (adapt-then-consume) ordering a
    /// single huge-energy tick left the rate at full for the next tick.
    #[test]
    fn budget_pressure_throttles_the_very_next_tick() {
        let sensor = RateSensor {
            rate: 1.0,
            resolution: 1.0,
        };
        let mut l = LoopBuilder::new("spike")
            .with_budget(EnergyBudget::new(1.0))
            .build_full(
                sensor,
                FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
                AlwaysTrust,
                // Huge action keeps the dynamism target at 1 — only the
                // budget ceiling can pull the rate down.
                FnController::new(|_f: &f64, _t, ctx: &mut StageContext| {
                    // One tick burns 90 % of the whole budget.
                    ctx.charge(0.9, 0.0);
                    100.0
                }),
                ActionMagnitudeRate {
                    gain: 1.0,
                    ..ActionMagnitudeRate::default()
                },
            );
        let _ = l.tick(&0.0);
        // Pressure after the spike is ≈0.9 ⇒ ceiling = 1 − 0.9·0.9 ≈ 0.19.
        // The *very next* tick must already sense at the throttled rate.
        assert!(
            l.sensor().rate() < 0.2,
            "rate {} not throttled by the spike tick",
            l.sensor().rate()
        );
    }

    #[test]
    fn telemetry_capacity_flows_through_builder() {
        let mut l = LoopBuilder::new("cap").with_telemetry_capacity(2).build(
            FnSensor::new(|e: &f64, _: &mut StageContext| *e),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|_f: &f64, _t, _: &mut StageContext| 0.0),
        );
        for _ in 0..5 {
            let _ = l.tick(&0.0);
        }
        assert_eq!(l.telemetry().capacity(), 2);
        assert_eq!(l.telemetry().records().count(), 2);
        assert_eq!(l.telemetry().ticks(), 5);
    }

    #[test]
    fn budget_exhaustion_visible() {
        let mut l = LoopBuilder::new("b")
            .with_budget(EnergyBudget::new(5e-3))
            .build(
                FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                    ctx.charge(1e-3, 0.0);
                    *e
                }),
                FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
                FnController::new(|_f: &f64, _t, _: &mut StageContext| 0.0),
            );
        for _ in 0..10 {
            let _ = l.tick(&0.0);
        }
        assert!(l.budget().exhausted());
        assert!((l.budget().consumed_j() - 10e-3).abs() < 1e-12);
    }

    #[test]
    fn tick_attributes_cost_per_stage() {
        let mut l = LoopBuilder::new("attr").build_monitored(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(3e-3, 1e-4);
                *e
            }),
            FnPerceptor::new(|r: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-3, 2e-4);
                *r
            }),
            FnMonitor::new(|_f: &f64, ctx: &mut StageContext| {
                ctx.charge(5e-4, 0.0);
                Trust::Trusted
            }),
            FnController::new(|f: &f64, _t, ctx: &mut StageContext| {
                ctx.charge(2e-3, 5e-5);
                -*f
            }),
        );
        let out = l.tick(&1.0);
        let rec = *l.telemetry().records().next().unwrap();
        use crate::trace::StageId::*;
        // Deltas come from ledger subtraction — tolerate ulp-level noise.
        let close = |a: f64, b: f64| (a - b).abs() < 1e-15;
        assert!(close(rec.stages.get(Sense).energy_j, 3e-3));
        assert!(close(rec.stages.get(Perceive).latency_s, 2e-4));
        assert!(close(rec.stages.get(Monitor).energy_j, 5e-4));
        assert!(close(rec.stages.get(Control).energy_j, 2e-3));
        // Act (consume + no-op adaptation) charges nothing here.
        assert!(close(rec.stages.get(Act).energy_j, 0.0));
        // Breakdown sums to the blended totals.
        assert!((rec.stages.total_energy_j() - out.energy_j).abs() < 1e-15);
        assert!((rec.stages.total_latency_s() - out.latency_s).abs() < 1e-15);
        assert_eq!(l.telemetry().stage_latency(Sense).count(), 1);
    }

    #[test]
    fn traced_loop_emits_one_span_per_stage() {
        let mut l = LoopBuilder::new("traced")
            .with_tracer(Tracer::sim(1.0))
            .build(
                FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                    ctx.charge(1e-3, 1e-4);
                    *e
                }),
                FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
                FnController::new(|f: &f64, _t, _: &mut StageContext| -*f),
            );
        let _ = l.tick(&1.0);
        let _ = l.tick(&2.0);
        assert!(l.tracer().is_enabled());
        assert_eq!(l.tracer().len(), 10); // 5 stages × 2 ticks
        let spans: Vec<_> = l.tracer().spans().copied().collect();
        let stage_order: Vec<StageId> = spans.iter().take(5).map(|s| s.stage).collect();
        assert_eq!(stage_order.as_slice(), StageId::ALL.as_slice());
        assert_eq!(spans[0].tick, 0);
        assert_eq!(spans[0].energy_j, 1e-3);
        assert_eq!(spans[5].tick, 1);
        // SimClock with step 1: span k runs [2k, 2k+1).
        assert_eq!(spans[3].start_s, 6.0);
        assert_eq!(spans[3].end_s, 7.0);
        assert!(spans.iter().all(|s| s.ok));
        // Untraced loop (default) stores no spans but still attributes.
        let drained = l.tracer_mut().take_spans();
        assert_eq!(drained.len(), 10);
        assert!(l.tracer().is_empty());
    }

    #[test]
    fn precision_mode_tracks_budget_pressure_and_trust_drift() {
        use std::cell::RefCell;
        use std::rc::Rc;
        // What the perceptor saw on the StageContext, tick by tick.
        let seen: Rc<RefCell<Vec<Precision>>> = Rc::default();
        let seen_p = Rc::clone(&seen);
        let mut l = LoopBuilder::new("mp")
            .with_budget(EnergyBudget::new(1.0))
            .with_precision(PrecisionPolicy::adaptive(0.3, 0.6).with_hold_ticks(2))
            .build_monitored(
                FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                    ctx.charge(0.05, 1e-4);
                    *e
                }),
                FnPerceptor::new(move |r: &f64, ctx: &mut StageContext| {
                    seen_p.borrow_mut().push(ctx.precision());
                    *r
                }),
                FnMonitor::new(|f: &f64, _: &mut StageContext| {
                    if f.abs() > 100.0 {
                        Trust::Suspect(0.9)
                    } else {
                        Trust::Trusted
                    }
                }),
                FnController::new(|f: &f64, _t, _: &mut StageContext| -*f),
            );
        // Pressure before tick t is 0.05·t: f64 until 0.3 (tick 6), f32
        // until 0.6 (tick 12), int8 after.
        for _ in 0..14 {
            let _ = l.tick(&1.0);
        }
        let recorded: Vec<Precision> = l.telemetry().records().map(|r| r.precision).collect();
        assert_eq!(&recorded[..6], &[Precision::F64; 6]);
        assert_eq!(&recorded[6..12], &[Precision::F32; 6]);
        assert_eq!(&recorded[12..14], &[Precision::Int8; 2]);
        // The context carried the same schedule the telemetry recorded.
        assert_eq!(*seen.borrow(), recorded);
        // Drift: suspicious features force f64 for hold_ticks ticks.
        let _ = l.tick(&1000.0); // decided before the verdict: still int8
        assert_eq!(
            l.telemetry().last_record().unwrap().precision,
            Precision::Int8
        );
        let _ = l.tick(&1.0);
        assert_eq!(
            l.telemetry().last_record().unwrap().precision,
            Precision::F64
        );
        let _ = l.tick(&1.0);
        assert_eq!(
            l.telemetry().last_record().unwrap().precision,
            Precision::F64
        );
        let _ = l.tick(&1.0);
        assert_eq!(
            l.telemetry().last_record().unwrap().precision,
            Precision::Int8
        );
        assert_eq!(l.precision_governor().current(), Precision::Int8);
        assert!(l.telemetry().precision_ticks(Precision::F64) >= 8);
    }

    #[test]
    fn precision_hint_cheapens_an_enabled_loop() {
        let mut l = LoopBuilder::new("hinted")
            .with_precision(PrecisionPolicy::adaptive(0.5, 0.9))
            .build(
                FnSensor::new(|e: &f64, _: &mut StageContext| *e),
                FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
                FnController::new(|_f: &f64, _t, _: &mut StageContext| 0.0),
            );
        let _ = l.tick(&0.0);
        assert_eq!(
            l.telemetry().last_record().unwrap().precision,
            Precision::F64
        );
        l.set_precision_hint(Some(Precision::F32));
        let _ = l.tick(&0.0);
        assert_eq!(
            l.telemetry().last_record().unwrap().precision,
            Precision::F32
        );
        l.set_precision_hint(None);
        let _ = l.tick(&0.0);
        assert_eq!(
            l.telemetry().last_record().unwrap().precision,
            Precision::F64
        );
    }

    /// A budgeted mixed-precision loop snapshotted mid-run (including mid-
    /// precision-hold) and restored onto a freshly built twin must continue
    /// bit-identically to the uninterrupted run.
    #[test]
    fn snapshot_restore_resumes_bit_exactly_mid_hold() {
        let build = || {
            LoopBuilder::new("ckpt")
                .with_budget(EnergyBudget::new(1.0))
                .with_precision(PrecisionPolicy::adaptive(0.3, 0.6).with_hold_ticks(3))
                .with_telemetry_capacity(16)
                .build_monitored(
                    FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                        ctx.charge(0.02, 1e-4);
                        *e
                    }),
                    FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
                    FnMonitor::new(|f: &f64, _: &mut StageContext| {
                        if f.abs() > 10.0 {
                            Trust::Suspect(0.9)
                        } else {
                            Trust::Trusted
                        }
                    }),
                    FnController::new(|f: &f64, _t, _: &mut StageContext| -0.3 * f),
                )
        };
        let drive =
            |l: &mut SensingActionLoop<_, _, _, _, _>, env: &mut f64, from: u64, to: u64| {
                for i in from..to {
                    // A spike at tick 24 arms the governor's f64 hold; the
                    // snapshot at tick 26 lands mid-hold.
                    if i == 24 {
                        *env = 50.0;
                    }
                    let out = l.tick(env);
                    *env += out.action;
                }
            };
        let mut env_a = 8.0f64;
        let mut uninterrupted = build();
        drive(&mut uninterrupted, &mut env_a, 0, 40);

        let mut env_b = 8.0f64;
        let mut first = build();
        drive(&mut first, &mut env_b, 0, 26);
        assert!(
            first.precision_governor().holding(),
            "snapshot point must land inside the forced-f64 hold"
        );
        let wire = first.snapshot().to_jsonl();
        drop(first);
        let mut resumed = build();
        resumed
            .restore(&Checkpoint::from_jsonl(&wire).unwrap())
            .unwrap();
        drive(&mut resumed, &mut env_b, 26, 40);

        assert_eq!(env_a.to_bits(), env_b.to_bits(), "trajectories diverged");
        let recs_a: Vec<_> = uninterrupted.telemetry().records().copied().collect();
        let recs_b: Vec<_> = resumed.telemetry().records().copied().collect();
        assert_eq!(recs_a, recs_b);
        let prec_a: Vec<Precision> = recs_a.iter().map(|r| r.precision).collect();
        assert!(
            prec_a.contains(&Precision::F64) && prec_a.iter().any(|p| *p != Precision::F64),
            "test must exercise a mixed-precision schedule, got {prec_a:?}"
        );
    }

    #[test]
    fn loop_name_and_output_ticks() {
        let mut l = LoopBuilder::new("named").build(
            FnSensor::new(|e: &f64, _: &mut StageContext| *e),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|_f: &f64, _t, _: &mut StageContext| 0.0),
        );
        assert_eq!(l.name(), "named");
        assert_eq!(l.tick(&0.0).tick, 0);
        assert_eq!(l.tick(&0.0).tick, 1);
    }
}
