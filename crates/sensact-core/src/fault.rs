//! Fault tolerance for sensing-to-action loops (paper §II, §V).
//!
//! The cyclical structure of a sensing-action loop makes it uniquely
//! vulnerable to cascading errors: one bad reading becomes a bad action,
//! which changes what is sensed next. This module makes stage failure a
//! *typed, first-class runtime event* instead of a panic:
//!
//! * [`StageError`] — what went wrong: dropout, latency-budget timeout,
//!   out-of-range reading, NaN poisoning;
//! * [`TrySensor`] / [`TryPerceptor`] — fallible stage traits, with
//!   [`Reliable`] lifting any infallible stage and [`FnTrySensor`] /
//!   [`FnTryPerceptor`] closure adapters;
//! * [`FaultInjector`] — a deterministic, seeded chaos wrapper around any
//!   sensor or perceptor that injects dropouts, stuck-at readings, latency
//!   spikes and NaN poisoning with configurable per-tick probabilities
//!   ([`FaultProfile`]);
//! * [`FallibleLoop`] — a loop runner with graceful-degradation policies
//!   ([`RecoveryPolicy`]): bounded retry with energy accounting,
//!   last-good-value hold with staleness-decayed trust, and a fail-safe
//!   fallback action supplied by the controller ([`FailSafe`] /
//!   [`WithFallback`]).
//!
//! Dropouts and timeouts surface as [`StageError`]s the runner can retry;
//! stuck-at and NaN faults are *silent* — the injector returns them as
//! ordinary `Ok` outputs, and it is the downstream defenses (the
//! [`FiniteCheck`] on features, the trust [`Monitor`]) that must catch them,
//! exactly as in a real pipeline.
//!
//! Every recovery action is visible in [`LoopTelemetry`]'s
//! [`FaultCounters`](crate::telemetry::FaultCounters) so experiments can
//! assert fault/retry/fallback budgets.

use crate::adapt::{AdaptationPolicy, NoAdaptation};
use crate::budget::EnergyBudget;
use crate::checkpoint::{
    get_opt_state, put_opt_state, Checkpoint, CheckpointError, Section, StageState, StateVec,
};
use crate::precision::{Precision, PrecisionGovernor, PrecisionPolicy};
use crate::stage::{Controller, Monitor, Perceptor, Sensor, StageContext, Trust};
use crate::telemetry::LoopTelemetry;
use crate::trace::{StageBreakdown, StageId, Tracer};
use sensact_math::rng::StdRng;

/// Tracks one tick's per-stage attribution: a cursor into the [`StageContext`]
/// ledger plus the accumulating [`StageBreakdown`].
struct Attribution {
    tick: u64,
    cursor: (f64, f64),
    stages: StageBreakdown,
}

impl Attribution {
    fn new(tick: u64) -> Self {
        Attribution {
            tick,
            cursor: (0.0, 0.0),
            stages: StageBreakdown::new(),
        }
    }

    /// Close one stage's window: compute the ledger delta since the cursor,
    /// attribute it to `stage`, and emit a span (no-op when the tracer is
    /// disabled).
    fn close(
        &mut self,
        tracer: &mut Tracer,
        ctx: &StageContext,
        stage: StageId,
        t0: f64,
        ok: bool,
    ) {
        let (de, dl) = (
            ctx.energy_j() - self.cursor.0,
            ctx.latency_s() - self.cursor.1,
        );
        self.cursor = (ctx.energy_j(), ctx.latency_s());
        self.stages.add(stage, de, dl);
        tracer.finish(self.tick, stage, t0, de, dl, ok);
    }
}

/// Which loop stage produced a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// The sensor failed to produce a reading.
    Sensing,
    /// The perceptor failed to produce features.
    Perception,
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageKind::Sensing => write!(f, "sensing"),
            StageKind::Perception => write!(f, "perception"),
        }
    }
}

/// A typed stage failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageError {
    /// The stage produced no output this tick (sensor blackout, dropped
    /// frame, lost packet).
    Dropout,
    /// The stage finished but blew its per-attempt latency budget; acting on
    /// the result would violate the loop deadline.
    Timeout {
        /// Latency the attempt actually took (seconds).
        latency_s: f64,
        /// The budget it was allowed (seconds).
        budget_s: f64,
    },
    /// A reading left its physically plausible range.
    OutOfRange {
        /// The offending value.
        value: f64,
        /// Lower plausibility bound.
        min: f64,
        /// Upper plausibility bound.
        max: f64,
    },
    /// The output contains non-finite values (NaN poisoning).
    Poisoned,
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Dropout => write!(f, "dropout"),
            StageError::Timeout {
                latency_s,
                budget_s,
            } => write!(f, "timeout ({latency_s:.2e} s > budget {budget_s:.2e} s)"),
            StageError::OutOfRange { value, min, max } => {
                write!(f, "out of range ({value} outside [{min}, {max}])")
            }
            StageError::Poisoned => write!(f, "poisoned (non-finite output)"),
        }
    }
}

/// A sensor whose acquisition can fail with a typed [`StageError`].
pub trait TrySensor<E> {
    /// Raw sensor reading type.
    type Reading;
    /// Sense the environment, charging costs to `ctx`. Costs already charged
    /// by a failing attempt stay charged — failure is not free.
    fn try_sense(&mut self, env: &E, ctx: &mut StageContext) -> Result<Self::Reading, StageError>;
}

/// A perceptor whose feature extraction can fail with a typed [`StageError`].
pub trait TryPerceptor<R> {
    /// Extracted feature type.
    type Features;
    /// Extract features from a reading, charging costs to `ctx`.
    fn try_perceive(
        &mut self,
        reading: &R,
        ctx: &mut StageContext,
    ) -> Result<Self::Features, StageError>;
}

/// Lifts an infallible stage into the fallible world: `Reliable(sensor)`
/// implements [`TrySensor`] (and `Reliable(perceptor)` implements
/// [`TryPerceptor`]) by never failing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reliable<T>(pub T);

impl<E, S: Sensor<E>> TrySensor<E> for Reliable<S> {
    type Reading = S::Reading;
    fn try_sense(&mut self, env: &E, ctx: &mut StageContext) -> Result<S::Reading, StageError> {
        Ok(self.0.sense(env, ctx))
    }
}

impl<R, P: Perceptor<R>> TryPerceptor<R> for Reliable<P> {
    type Features = P::Features;
    fn try_perceive(
        &mut self,
        reading: &R,
        ctx: &mut StageContext,
    ) -> Result<P::Features, StageError> {
        Ok(self.0.perceive(reading, ctx))
    }
}

/// Closure adapter implementing [`TrySensor`].
pub struct FnTrySensor<F>(F);

impl<F> FnTrySensor<F> {
    /// Wrap a closure `(env, ctx) -> Result<reading, StageError>`.
    pub fn new(f: F) -> Self {
        FnTrySensor(f)
    }
}

impl<E, R, F: FnMut(&E, &mut StageContext) -> Result<R, StageError>> TrySensor<E>
    for FnTrySensor<F>
{
    type Reading = R;
    fn try_sense(&mut self, env: &E, ctx: &mut StageContext) -> Result<R, StageError> {
        (self.0)(env, ctx)
    }
}

/// Closure adapter implementing [`TryPerceptor`].
pub struct FnTryPerceptor<F>(F);

impl<F> FnTryPerceptor<F> {
    /// Wrap a closure `(reading, ctx) -> Result<features, StageError>`.
    pub fn new(f: F) -> Self {
        FnTryPerceptor(f)
    }
}

impl<R, O, F: FnMut(&R, &mut StageContext) -> Result<O, StageError>> TryPerceptor<R>
    for FnTryPerceptor<F>
{
    type Features = O;
    fn try_perceive(&mut self, reading: &R, ctx: &mut StageContext) -> Result<O, StageError> {
        (self.0)(reading, ctx)
    }
}

/// Values that can report whether they are entirely finite — the cheap
/// poison detector [`FallibleLoop`] runs on every fresh feature vector.
pub trait FiniteCheck {
    /// `true` iff no component is NaN or infinite.
    fn all_finite(&self) -> bool;
}

impl FiniteCheck for f64 {
    fn all_finite(&self) -> bool {
        self.is_finite()
    }
}

impl FiniteCheck for f32 {
    fn all_finite(&self) -> bool {
        self.is_finite()
    }
}

impl FiniteCheck for Vec<f64> {
    fn all_finite(&self) -> bool {
        self.iter().all(|x| x.is_finite())
    }
}

impl<const N: usize> FiniteCheck for [f64; N] {
    fn all_finite(&self) -> bool {
        self.iter().all(|x| x.is_finite())
    }
}

/// Values the [`FaultInjector`] knows how to NaN-poison in place.
pub trait NanPoison {
    /// Overwrite the value with NaNs (every scalar component).
    fn poison(&mut self);
}

impl NanPoison for f64 {
    fn poison(&mut self) {
        *self = f64::NAN;
    }
}

impl NanPoison for f32 {
    fn poison(&mut self) {
        *self = f32::NAN;
    }
}

impl NanPoison for Vec<f64> {
    fn poison(&mut self) {
        for x in self.iter_mut() {
            *x = f64::NAN;
        }
    }
}

impl<const N: usize> NanPoison for [f64; N] {
    fn poison(&mut self) {
        for x in self.iter_mut() {
            *x = f64::NAN;
        }
    }
}

/// Per-tick fault probabilities of a [`FaultInjector`]. All probabilities
/// are in `[0, 1]` and rolled independently, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability the stage produces nothing ([`StageError::Dropout`]).
    pub dropout: f64,
    /// Probability the stage silently replays its previous output
    /// (stuck-at fault; surfaces as `Ok`, not as an error).
    pub stuck: f64,
    /// Probability the attempt is charged an extra latency spike.
    pub latency_spike: f64,
    /// Extra latency charged when a spike fires (seconds).
    pub spike_latency_s: f64,
    /// Probability the output is NaN-poisoned (surfaces as `Ok`; caught by
    /// the loop's [`FiniteCheck`] or the trust monitor).
    pub nan: f64,
}

impl FaultProfile {
    /// No faults at all (the injector becomes a transparent wrapper).
    pub fn none() -> Self {
        FaultProfile {
            dropout: 0.0,
            stuck: 0.0,
            latency_spike: 0.0,
            spike_latency_s: 0.0,
            nan: 0.0,
        }
    }

    /// Pure dropout faults with probability `p`.
    pub fn dropout(p: f64) -> Self {
        FaultProfile {
            dropout: p,
            ..FaultProfile::none()
        }
    }

    /// Whether any fault can ever fire under this profile.
    pub fn is_active(&self) -> bool {
        self.dropout > 0.0 || self.stuck > 0.0 || self.latency_spike > 0.0 || self.nan > 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// A deterministic, seeded fault injector wrapping any sensor or perceptor.
///
/// `V` is the wrapped stage's output type ([`Sensor::Reading`] or
/// [`Perceptor::Features`]); it must be [`Clone`] (stuck-at replays the last
/// output) and [`NanPoison`]-able. Wrapping a [`Sensor`] yields a
/// [`TrySensor`]; wrapping a [`Perceptor`] yields a [`TryPerceptor`].
///
/// Identical `(profile, seed)` pairs reproduce identical fault sequences —
/// the same guarantee `sensact_lidar::corrupt`-style corruptions give per
/// cloud, applied at the loop level.
#[derive(Debug)]
pub struct FaultInjector<T, V> {
    inner: T,
    profile: FaultProfile,
    /// Cached `profile.is_active()` so the fault-free fast path is a single
    /// predictable branch per call.
    active: bool,
    rng: StdRng,
    last_good: Option<V>,
    injected: u64,
}

impl<T, V> FaultInjector<T, V> {
    /// Wrap `inner`, injecting faults per `profile`, deterministically from
    /// `seed`.
    pub fn new(inner: T, profile: FaultProfile, seed: u64) -> Self {
        FaultInjector {
            inner,
            profile,
            active: profile.is_active(),
            rng: StdRng::seed_from_u64(seed ^ 0xFA_17),
            last_good: None,
            injected: 0,
        }
    }

    /// Number of faults injected so far (of any kind).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Borrow the wrapped stage.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutably borrow the wrapped stage (e.g. for [`SensingKnobs`]
    /// adaptation through the wrapper).
    ///
    /// [`SensingKnobs`]: crate::adapt::SensingKnobs
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T, V: Clone + NanPoison> FaultInjector<T, V> {
    /// Run one wrapped stage invocation through the fault dice.
    fn inject(
        &mut self,
        ctx: &mut StageContext,
        produce: impl FnOnce(&mut T, &mut StageContext) -> V,
    ) -> Result<V, StageError> {
        // Fault-free profiles take a zero-cost path: no dice, no last-good
        // bookkeeping (which would clone every output).
        if !self.active {
            return Ok(produce(&mut self.inner, ctx));
        }
        let p = self.profile;
        // Dropout: the stage never produces anything (and charges nothing).
        if p.dropout > 0.0 && self.rng.gen_f64() < p.dropout {
            self.injected += 1;
            return Err(StageError::Dropout);
        }
        // Stuck-at: silently replay the previous output. Only possible once
        // a good output exists.
        if p.stuck > 0.0 && self.rng.gen_f64() < p.stuck {
            if let Some(last) = &self.last_good {
                self.injected += 1;
                return Ok(last.clone());
            }
        }
        let mut v = produce(&mut self.inner, ctx);
        if p.latency_spike > 0.0 && self.rng.gen_f64() < p.latency_spike {
            self.injected += 1;
            ctx.charge(0.0, p.spike_latency_s);
        }
        if p.nan > 0.0 && self.rng.gen_f64() < p.nan {
            self.injected += 1;
            v.poison();
            // A poisoned output is not retained as last-good.
            return Ok(v);
        }
        // Last-good is only consulted by stuck-at faults; skip the clone
        // when the profile can never fire one.
        if p.stuck > 0.0 {
            self.last_good = Some(v.clone());
        }
        Ok(v)
    }
}

impl<T: StageState, V: StateVec> StageState for FaultInjector<T, V> {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        let mut s = Section::new(ns);
        s.put_bool("active", self.active);
        s.put_u64("injected", self.injected);
        s.put_u64s("rng", &self.rng.state());
        put_opt_state(&mut s, "last_good", &self.last_good);
        ckpt.push(s);
        self.inner.save_state(ckpt, &format!("{ns}.inner"));
    }

    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        let s = ckpt.section(ns)?;
        let words = s.get_u64s("rng")?;
        let state: [u64; 4] = words
            .as_slice()
            .try_into()
            .map_err(|_| CheckpointError::BadValue(format!("{ns}.rng")))?;
        // Resume the fault dice at their exact stream position. Reseeding
        // here would replay the fault sequence from tick 0 — the restored
        // run would see faults the recording never had (and vice versa),
        // and every downstream trust/precision decision would drift.
        self.rng = StdRng::from_state(state);
        self.active = s.get_bool("active")?;
        self.injected = s.get_u64("injected")?;
        self.last_good = get_opt_state(s, "last_good")?;
        self.inner.restore_state(ckpt, &format!("{ns}.inner"))
    }
}

// `Reliable` is a transparent lift: it checkpoints as whatever it wraps.
impl<T: StageState> StageState for Reliable<T> {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        self.0.save_state(ckpt, ns);
    }
    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        self.0.restore_state(ckpt, ns)
    }
}

// Closure adapters are declared stateless by contract (see `stage.rs`).
impl<F> StageState for FnTrySensor<F> {}
impl<F> StageState for FnTryPerceptor<F> {}

impl<E, S: Sensor<E>> TrySensor<E> for FaultInjector<S, S::Reading>
where
    S::Reading: Clone + NanPoison,
{
    type Reading = S::Reading;
    fn try_sense(&mut self, env: &E, ctx: &mut StageContext) -> Result<S::Reading, StageError> {
        self.inject(ctx, |inner, ctx| inner.sense(env, ctx))
    }
}

impl<R, P: Perceptor<R>> TryPerceptor<R> for FaultInjector<P, P::Features>
where
    P::Features: Clone + NanPoison,
{
    type Features = P::Features;
    fn try_perceive(
        &mut self,
        reading: &R,
        ctx: &mut StageContext,
    ) -> Result<P::Features, StageError> {
        self.inject(ctx, |inner, ctx| inner.perceive(reading, ctx))
    }
}

/// A controller that can also supply a fail-safe action for ticks where no
/// features could be produced at all (sensing dead beyond recovery).
pub trait FailSafe<F>: Controller<F> {
    /// The action emitted when the loop must fail safe (brake, hover, hold
    /// position). Charged to `ctx` like any stage.
    fn fail_safe(&mut self, ctx: &mut StageContext) -> Self::Action;
}

/// Pairs any controller with a constant fail-safe action, implementing
/// [`FailSafe`].
#[derive(Debug, Clone, Copy)]
pub struct WithFallback<C, A> {
    /// The decision-making controller.
    pub inner: C,
    /// The constant fail-safe action.
    pub fallback: A,
}

impl<C, A> WithFallback<C, A> {
    /// Pair `inner` with a constant `fallback` action.
    pub fn new(inner: C, fallback: A) -> Self {
        WithFallback { inner, fallback }
    }
}

impl<F, C: Controller<F>> Controller<F> for WithFallback<C, C::Action> {
    type Action = C::Action;
    fn decide(&mut self, features: &F, trust: Trust, ctx: &mut StageContext) -> C::Action {
        self.inner.decide(features, trust, ctx)
    }
}

impl<F, C: Controller<F>> FailSafe<F> for WithFallback<C, C::Action>
where
    C::Action: Clone,
{
    fn fail_safe(&mut self, _ctx: &mut StageContext) -> C::Action {
        self.fallback.clone()
    }
}

// The fallback action is configuration; only the wrapped controller may
// carry mutable state.
impl<C: StageState, A> StageState for WithFallback<C, A> {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        self.inner.save_state(ckpt, ns);
    }
    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        self.inner.restore_state(ckpt, ns)
    }
}

/// Recovery policy of a [`FallibleLoop`]: what to do when a stage fails.
///
/// Recovery escalates in order: bounded **retry** (each re-attempt re-runs
/// the stages, whose costs are charged to the tick — failure is never free),
/// then **hold** the last good features for up to `max_hold_ticks`
/// consecutive ticks with trust decayed by staleness, then emit the
/// controller's **fail-safe** action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum sense→perceive re-attempts within one tick.
    pub max_retries: u32,
    /// Fixed extra energy charged per retry (sensor re-arm cost), on top of
    /// whatever the re-run stages charge themselves (joules).
    pub retry_energy_j: f64,
    /// Maximum consecutive ticks served from held last-good features before
    /// falling back.
    pub max_hold_ticks: u32,
    /// Suspicion added per held tick — staleness decays trust until the
    /// verdict saturates at [`Trust::Untrusted`].
    pub staleness_decay: f64,
    /// Per-attempt latency budget; an attempt exceeding it fails with
    /// [`StageError::Timeout`] even though it produced output.
    pub latency_budget_s: Option<f64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            retry_energy_j: 0.0,
            max_hold_ticks: 3,
            staleness_decay: 0.25,
            latency_budget_s: None,
        }
    }
}

/// How a [`FallibleLoop`] tick obtained its action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickResolution {
    /// Fresh features from a successful sense→perceive pass.
    Fresh,
    /// Features held from a previous tick; `staleness` counts consecutive
    /// held ticks (≥ 1).
    Held {
        /// Consecutive ticks served from the same last-good features.
        staleness: u32,
    },
    /// No usable features — the controller's fail-safe action was emitted.
    Fallback,
}

/// Output of one [`FallibleLoop`] tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallibleOutput<A> {
    /// The decided (or fail-safe) action.
    pub action: A,
    /// Trust verdict, including any staleness degradation.
    pub trust: Trust,
    /// How the action was obtained.
    pub resolution: TickResolution,
    /// Stage errors observed this tick (including retried ones).
    pub faults: u32,
    /// Retries issued this tick.
    pub retries: u32,
    /// Energy charged this tick (joules), including failed attempts.
    pub energy_j: f64,
    /// Latency of this tick (seconds), including failed attempts.
    pub latency_s: f64,
    /// Tick index.
    pub tick: u64,
}

/// A sensing-to-action loop over *fallible* stages with graceful
/// degradation.
///
/// The type parameter `F` is the feature type held across ticks for the
/// last-good-value recovery path (it equals the perceptor's
/// [`TryPerceptor::Features`]; inference pins it at the first
/// [`FallibleLoop::tick`] call).
#[derive(Debug)]
pub struct FallibleLoop<S, P, M, C, Ad, F> {
    name: String,
    sensor: S,
    perceptor: P,
    monitor: M,
    controller: C,
    policy: Ad,
    budget: EnergyBudget,
    telemetry: LoopTelemetry,
    recovery: RecoveryPolicy,
    held: Option<F>,
    staleness: u32,
    tracer: Tracer,
    governor: PrecisionGovernor,
}

impl<S, P, M, C, F> FallibleLoop<S, P, M, C, NoAdaptation, F> {
    /// A fallible loop with the default [`RecoveryPolicy`], an unlimited
    /// budget and no adaptation; chain `with_*` to customize.
    pub fn new(
        name: impl Into<String>,
        sensor: S,
        perceptor: P,
        monitor: M,
        controller: C,
    ) -> Self {
        FallibleLoop {
            name: name.into(),
            sensor,
            perceptor,
            monitor,
            controller,
            policy: NoAdaptation,
            budget: EnergyBudget::unlimited(),
            telemetry: LoopTelemetry::new(),
            recovery: RecoveryPolicy::default(),
            held: None,
            staleness: 0,
            tracer: Tracer::disabled(),
            governor: PrecisionGovernor::disabled(),
        }
    }
}

impl<S, P, M, C, Ad, F> FallibleLoop<S, P, M, C, Ad, F> {
    /// Attach an energy budget.
    pub fn with_budget(mut self, budget: EnergyBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Replace the adaptation policy (action-to-sensing feedback).
    pub fn with_policy<Ad2>(self, policy: Ad2) -> FallibleLoop<S, P, M, C, Ad2, F> {
        FallibleLoop {
            name: self.name,
            sensor: self.sensor,
            perceptor: self.perceptor,
            monitor: self.monitor,
            controller: self.controller,
            policy,
            budget: self.budget,
            telemetry: self.telemetry,
            recovery: self.recovery,
            held: self.held,
            staleness: self.staleness,
            tracer: self.tracer,
            governor: self.governor,
        }
    }

    /// Enable runtime mixed precision under the given policy (see
    /// [`LoopBuilder::with_precision`](crate::LoopBuilder::with_precision)).
    pub fn with_precision(mut self, policy: PrecisionPolicy) -> Self {
        self.governor = PrecisionGovernor::new(policy);
        self
    }

    /// The precision governor deciding each tick's numeric mode.
    pub fn precision_governor(&self) -> &PrecisionGovernor {
        &self.governor
    }

    /// Install or clear a fleet-level precision hint (e.g. from the
    /// scheduler's energy arbiter). A disabled governor ignores hints.
    pub fn set_precision_hint(&mut self, hint: Option<Precision>) {
        self.governor.set_hint(hint);
    }

    /// Cap the number of per-tick telemetry records retained.
    pub fn with_telemetry_capacity(mut self, capacity: usize) -> Self {
        let counters_fresh = self.telemetry.ticks() == 0;
        debug_assert!(counters_fresh, "set capacity before ticking");
        self.telemetry = LoopTelemetry::with_capacity(capacity);
        self
    }

    /// Loop name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Telemetry accumulated so far (including fault counters).
    pub fn telemetry(&self) -> &LoopTelemetry {
        &self.telemetry
    }

    /// Mutably borrow the telemetry — lets an external runtime (e.g. a fleet
    /// scheduler) attribute events it observes from outside the loop, such as
    /// a deadline miss surfaced as a [`StageError::Timeout`] fault.
    pub fn telemetry_mut(&mut self) -> &mut LoopTelemetry {
        &mut self.telemetry
    }

    /// Budget state.
    pub fn budget(&self) -> &EnergyBudget {
        &self.budget
    }

    /// Borrow the sensor (e.g. to read its adapted knobs).
    pub fn sensor(&self) -> &S {
        &self.sensor
    }

    /// Mutably borrow the sensor.
    pub fn sensor_mut(&mut self) -> &mut S {
        &mut self.sensor
    }

    /// Borrow the controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Active recovery policy.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// Attach a tracer (e.g. [`Tracer::sim`] for deterministic spans).
    /// Defaults to [`Tracer::disabled`]. Failed sense/perceive attempts emit
    /// spans with `ok == false`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Borrow the tracer (e.g. to export collected spans).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutably borrow the tracer (e.g. to drain spans via
    /// [`Tracer::take_spans`]).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// One sense→perceive attempt with timeout and poison detection.
    ///
    /// Both stages are attributed to `stages` — *failed* attempts included
    /// (failure is charged where it happened) — and emit spans with
    /// `ok == false` on error when tracing is enabled.
    fn attempt<E>(
        &mut self,
        env: &E,
        ctx: &mut StageContext,
        attr: &mut Attribution,
    ) -> Result<F, (StageKind, StageError)>
    where
        S: TrySensor<E>,
        P: TryPerceptor<S::Reading, Features = F>,
        F: FiniteCheck,
    {
        let budget_s = self.recovery.latency_budget_s;
        let lat0 = ctx.latency_s();
        let t0 = self.tracer.start();
        let sensed = self.sensor.try_sense(env, ctx);
        let sense_result = match sensed {
            Err(e) => Err((StageKind::Sensing, e)),
            Ok(reading) => match budget_s {
                Some(b) if ctx.latency_s() - lat0 > b => Err((
                    StageKind::Sensing,
                    StageError::Timeout {
                        latency_s: ctx.latency_s() - lat0,
                        budget_s: b,
                    },
                )),
                _ => Ok(reading),
            },
        };
        attr.close(
            &mut self.tracer,
            ctx,
            StageId::Sense,
            t0,
            sense_result.is_ok(),
        );
        let reading = sense_result?;

        let lat1 = ctx.latency_s();
        let t1 = self.tracer.start();
        let perceived = self.perceptor.try_perceive(&reading, ctx);
        let perceive_result = match perceived {
            Err(e) => Err((StageKind::Perception, e)),
            Ok(features) => match budget_s {
                Some(b) if ctx.latency_s() - lat1 > b => Err((
                    StageKind::Perception,
                    StageError::Timeout {
                        latency_s: ctx.latency_s() - lat1,
                        budget_s: b,
                    },
                )),
                _ if !features.all_finite() => Err((StageKind::Perception, StageError::Poisoned)),
                _ => Ok(features),
            },
        };
        attr.close(
            &mut self.tracer,
            ctx,
            StageId::Perceive,
            t1,
            perceive_result.is_ok(),
        );
        perceive_result
    }

    /// Run one tick: sense → perceive (with retry/timeout/poison handling) →
    /// assess → decide — or degrade to held features / the fail-safe action.
    /// Never panics on stage faults; every tick yields an action.
    pub fn tick<E>(&mut self, env: &E) -> FallibleOutput<C::Action>
    where
        S: TrySensor<E>,
        P: TryPerceptor<S::Reading, Features = F>,
        F: Clone + FiniteCheck,
        M: Monitor<F>,
        C: FailSafe<F>,
        Ad: AdaptationPolicy<S, C::Action>,
    {
        let tick = self.telemetry.ticks();
        self.tracer.new_tick();
        let mut ctx = StageContext::new();
        // Decide this tick's numeric mode from current budget pressure and
        // stamp it into the context before any stage runs.
        let precision = self.governor.decide(self.budget.pressure());
        ctx.set_precision(precision);
        let mut attr = Attribution::new(tick);
        let mut retries = 0u32;
        let mut faults = 0u32;
        let fresh: Option<F> = loop {
            match self.attempt(env, &mut ctx, &mut attr) {
                Ok(features) => break Some(features),
                Err((_kind, error)) => {
                    faults += 1;
                    self.telemetry.record_fault(&error);
                    if retries < self.recovery.max_retries && !self.budget.exhausted() {
                        retries += 1;
                        // The re-arm surcharge lands before the next
                        // attempt's sense window closes, so it is
                        // attributed to the Sense stage.
                        ctx.charge(self.recovery.retry_energy_j, 0.0);
                        continue;
                    }
                    break None;
                }
            }
        };
        if retries > 0 {
            self.telemetry.record_retries(retries);
        }
        let (action, trust, resolution) = match fresh {
            Some(features) => {
                let t0 = self.tracer.start();
                let trust = self.monitor.assess(&features, &mut ctx);
                attr.close(&mut self.tracer, &ctx, StageId::Monitor, t0, true);
                let t0 = self.tracer.start();
                let action = self.controller.decide(&features, trust, &mut ctx);
                attr.close(&mut self.tracer, &ctx, StageId::Control, t0, true);
                self.held = Some(features);
                self.staleness = 0;
                (action, trust, TickResolution::Fresh)
            }
            None => {
                let can_hold = self.held.is_some() && self.staleness < self.recovery.max_hold_ticks;
                if can_hold {
                    self.staleness += 1;
                    let staleness = self.staleness;
                    let held = self.held.clone().expect("checked above");
                    let t0 = self.tracer.start();
                    let base = self.monitor.assess(&held, &mut ctx);
                    let trust = base.degraded(staleness as f64 * self.recovery.staleness_decay);
                    attr.close(&mut self.tracer, &ctx, StageId::Monitor, t0, true);
                    let t0 = self.tracer.start();
                    let action = self.controller.decide(&held, trust, &mut ctx);
                    attr.close(&mut self.tracer, &ctx, StageId::Control, t0, true);
                    self.telemetry.record_hold();
                    (action, trust, TickResolution::Held { staleness })
                } else {
                    let t0 = self.tracer.start();
                    let action = self.controller.fail_safe(&mut ctx);
                    attr.close(&mut self.tracer, &ctx, StageId::Control, t0, true);
                    self.telemetry.record_fallback();
                    (action, Trust::Untrusted, TickResolution::Fallback)
                }
            }
        };
        // Act: consume before adapting — the policy sees this tick's
        // pressure.
        let t0 = self.tracer.start();
        self.budget.consume(ctx.energy_j(), ctx.latency_s());
        self.policy
            .adapt(&mut self.sensor, &action, trust, &self.budget);
        attr.close(&mut self.tracer, &ctx, StageId::Act, t0, true);
        // Trust drift (fresh, degraded-held or fallback verdicts alike)
        // feeds back into the governor for the next tick.
        self.governor.observe_trust(trust);
        self.telemetry.record_with_precision(
            ctx.energy_j(),
            ctx.latency_s(),
            trust,
            attr.stages,
            precision,
        );
        FallibleOutput {
            action,
            trust,
            resolution,
            faults,
            retries,
            energy_j: ctx.energy_j(),
            latency_s: ctx.latency_s(),
            tick,
        }
    }

    /// Serialize the loop's complete live state — telemetry, budget,
    /// precision governor, tracer ring, held features and staleness, plus
    /// every stage's [`StageState`] (fault-injector RNG position included) —
    /// into a [`Checkpoint`] for kill-and-resume or live migration.
    ///
    /// The contract: [`FallibleLoop::restore`] of this checkpoint onto an
    /// *identically constructed* loop (same stages, seeds, policies) makes
    /// every subsequent tick bit-identical to the uninterrupted run.
    pub fn snapshot(&self) -> Checkpoint
    where
        S: StageState,
        P: StageState,
        M: StageState,
        C: StageState,
        Ad: StageState,
        F: StateVec,
    {
        let mut ckpt = Checkpoint::new(&self.name);
        let mut s = Section::new("loop");
        s.put_u64("staleness", self.staleness as u64);
        put_opt_state(&mut s, "held", &self.held);
        ckpt.push(s);
        self.telemetry.save_state(&mut ckpt, "telemetry");
        self.budget.save_state(&mut ckpt, "budget");
        self.governor.save_state(&mut ckpt, "governor");
        self.tracer.save_state(&mut ckpt, "tracer");
        self.sensor.save_state(&mut ckpt, "sensor");
        self.perceptor.save_state(&mut ckpt, "perceptor");
        self.monitor.save_state(&mut ckpt, "monitor");
        self.controller.save_state(&mut ckpt, "controller");
        self.policy.save_state(&mut ckpt, "policy");
        ckpt
    }

    /// Restore live state saved by [`FallibleLoop::snapshot`]. The loop must
    /// be constructed with the same configuration (stages, recovery policy,
    /// budget capacity, precision policy) as the one that was snapshotted;
    /// only mutable state travels through the checkpoint.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError>
    where
        S: StageState,
        P: StageState,
        M: StageState,
        C: StageState,
        Ad: StageState,
        F: StateVec,
    {
        let s = ckpt.section("loop")?;
        let staleness = s.get_u64("staleness")?;
        self.staleness = u32::try_from(staleness)
            .map_err(|_| CheckpointError::BadValue("loop.staleness".into()))?;
        self.held = get_opt_state(s, "held")?;
        self.telemetry.restore_state(ckpt, "telemetry")?;
        self.budget.restore_state(ckpt, "budget")?;
        self.governor.restore_state(ckpt, "governor")?;
        self.tracer.restore_state(ckpt, "tracer")?;
        self.sensor.restore_state(ckpt, "sensor")?;
        self.perceptor.restore_state(ckpt, "perceptor")?;
        self.monitor.restore_state(ckpt, "monitor")?;
        self.controller.restore_state(ckpt, "controller")?;
        self.policy.restore_state(ckpt, "policy")
    }

    /// Run `n` ticks against a mutable environment, applying each action via
    /// `apply`. Returns the outputs.
    pub fn run<E>(
        &mut self,
        env: &mut E,
        n: usize,
        mut apply: impl FnMut(&mut E, &C::Action),
    ) -> Vec<FallibleOutput<C::Action>>
    where
        S: TrySensor<E>,
        P: TryPerceptor<S::Reading, Features = F>,
        F: Clone + FiniteCheck,
        M: Monitor<F>,
        C: FailSafe<F>,
        Ad: AdaptationPolicy<S, C::Action>,
    {
        let mut outputs = Vec::with_capacity(n);
        for _ in 0..n {
            let out = self.tick(env);
            apply(env, &out.action);
            outputs.push(out);
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{AlwaysTrust, FnController, FnMonitor, FnPerceptor, FnSensor};

    fn scalar_sensor() -> FnSensor<impl FnMut(&f64, &mut StageContext) -> f64> {
        FnSensor::new(|e: &f64, ctx: &mut StageContext| {
            ctx.charge(1e-3, 1e-4);
            *e
        })
    }

    fn identity_perceptor() -> FnPerceptor<impl FnMut(&f64, &mut StageContext) -> f64> {
        FnPerceptor::new(|r: &f64, _: &mut StageContext| *r)
    }

    fn gain_controller(
    ) -> WithFallback<FnController<impl FnMut(&f64, Trust, &mut StageContext) -> f64>, f64> {
        WithFallback::new(
            FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.5 * f),
            0.0,
        )
    }

    #[test]
    fn stage_error_displays() {
        assert_eq!(StageError::Dropout.to_string(), "dropout");
        assert!(StageError::Timeout {
            latency_s: 0.2,
            budget_s: 0.1
        }
        .to_string()
        .contains("timeout"));
        assert!(StageError::OutOfRange {
            value: 9.0,
            min: 0.0,
            max: 1.0
        }
        .to_string()
        .contains("out of range"));
        assert!(StageError::Poisoned.to_string().contains("poisoned"));
        assert_eq!(StageKind::Sensing.to_string(), "sensing");
        assert_eq!(StageKind::Perception.to_string(), "perception");
    }

    #[test]
    fn reliable_lifts_infallible_stages() {
        let mut s = Reliable(scalar_sensor());
        let mut p = Reliable(identity_perceptor());
        let mut ctx = StageContext::new();
        let r = s.try_sense(&2.0, &mut ctx).unwrap();
        assert_eq!(p.try_perceive(&r, &mut ctx).unwrap(), 2.0);
        assert!(ctx.energy_j() > 0.0);
    }

    #[test]
    fn clean_loop_matches_infallible_behavior() {
        let mut env = 8.0f64;
        let mut looop = FallibleLoop::new(
            "clean",
            Reliable(scalar_sensor()),
            Reliable(identity_perceptor()),
            AlwaysTrust,
            gain_controller(),
        );
        let outs = looop.run(&mut env, 40, |e, a| *e += a);
        assert!(env.abs() < 1e-3, "env {env}");
        assert!(outs.iter().all(|o| o.resolution == TickResolution::Fresh));
        assert!(outs.iter().all(|o| o.faults == 0 && o.retries == 0));
        let c = looop.telemetry().fault_counters();
        assert_eq!((c.faults, c.retries, c.holds, c.fallbacks), (0, 0, 0, 0));
        assert_eq!(looop.telemetry().ticks(), 40);
        assert_eq!(looop.name(), "clean");
    }

    #[test]
    fn injector_dropout_is_deterministic_and_counted() {
        let run = |seed: u64| -> Vec<bool> {
            let mut inj: FaultInjector<_, f64> =
                FaultInjector::new(scalar_sensor(), FaultProfile::dropout(0.3), seed);
            (0..64)
                .map(|_| inj.try_sense(&1.0, &mut StageContext::new()).is_err())
                .collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same fault sequence");
        assert_ne!(a, run(8), "different seed, different faults");
        let dropped = a.iter().filter(|&&d| d).count();
        assert!((5..30).contains(&dropped), "{dropped}/64 dropped at p=0.3");
    }

    #[test]
    fn injector_stuck_at_replays_last_good() {
        let mut counter = 0.0;
        let sensor = FnSensor::new(move |_: &f64, _: &mut StageContext| {
            counter += 1.0;
            counter
        });
        let mut inj: FaultInjector<_, f64> = FaultInjector::new(
            sensor,
            FaultProfile {
                stuck: 0.5,
                ..FaultProfile::none()
            },
            3,
        );
        let mut ctx = StageContext::new();
        let vals: Vec<f64> = (0..32)
            .map(|_| inj.try_sense(&0.0, &mut ctx).unwrap())
            .collect();
        // Stuck ticks repeat the previous value instead of advancing.
        let repeats = vals.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 4, "only {repeats} stuck repeats in {vals:?}");
        assert!(inj.injected() > 0);
        // Monotone non-decreasing: stuck-at never invents new values.
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn injector_nan_poisons_output() {
        let mut inj: FaultInjector<_, f64> = FaultInjector::new(
            scalar_sensor(),
            FaultProfile {
                nan: 1.0,
                ..FaultProfile::none()
            },
            1,
        );
        let v = inj.try_sense(&1.0, &mut StageContext::new()).unwrap();
        assert!(v.is_nan());
    }

    #[test]
    fn injector_latency_spike_charges_ctx() {
        let mut inj: FaultInjector<_, f64> = FaultInjector::new(
            scalar_sensor(),
            FaultProfile {
                latency_spike: 1.0,
                spike_latency_s: 0.5,
                ..FaultProfile::none()
            },
            1,
        );
        let mut ctx = StageContext::new();
        let _ = inj.try_sense(&1.0, &mut ctx).unwrap();
        assert!(ctx.latency_s() > 0.5);
    }

    #[test]
    fn retry_recovers_from_transient_dropout() {
        // Fails exactly twice, then succeeds: default policy (2 retries)
        // recovers within the tick.
        let mut remaining_failures = 2;
        let sensor = FnTrySensor::new(move |e: &f64, ctx: &mut StageContext| {
            ctx.charge(1e-3, 0.0);
            if remaining_failures > 0 {
                remaining_failures -= 1;
                Err(StageError::Dropout)
            } else {
                Ok(*e)
            }
        });
        let mut looop = FallibleLoop::new(
            "retry",
            sensor,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            gain_controller(),
        )
        .with_recovery(RecoveryPolicy {
            retry_energy_j: 1e-4,
            ..RecoveryPolicy::default()
        });
        let out = looop.tick(&4.0);
        assert_eq!(out.resolution, TickResolution::Fresh);
        assert_eq!(out.action, -2.0);
        assert_eq!(out.faults, 2);
        assert_eq!(out.retries, 2);
        // Three sense attempts + two retry surcharges all charged.
        assert!(
            (out.energy_j - (3e-3 + 2e-4)).abs() < 1e-12,
            "{}",
            out.energy_j
        );
        let c = looop.telemetry().fault_counters();
        assert_eq!(c.faults, 2);
        assert_eq!(c.retries, 2);
        assert_eq!(c.dropouts, 2);
    }

    #[test]
    fn retry_surcharge_is_attributed_to_sense_and_failed_spans_marked() {
        use crate::trace::Tracer;
        // Fails exactly twice, then succeeds, with a retry surcharge.
        let mut remaining_failures = 2;
        let sensor = FnTrySensor::new(move |e: &f64, ctx: &mut StageContext| {
            ctx.charge(1e-3, 1e-4);
            if remaining_failures > 0 {
                remaining_failures -= 1;
                Err(StageError::Dropout)
            } else {
                Ok(*e)
            }
        });
        let mut looop = FallibleLoop::new(
            "retry-attr",
            sensor,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            gain_controller(),
        )
        .with_recovery(RecoveryPolicy {
            retry_energy_j: 1e-4,
            ..RecoveryPolicy::default()
        })
        .with_tracer(Tracer::sim(1.0));
        let out = looop.tick(&4.0);
        assert_eq!(out.resolution, TickResolution::Fresh);
        let rec = *looop.telemetry().records().next().unwrap();
        // Sense carries all three attempts plus both retry surcharges.
        let sense = rec.stages.get(StageId::Sense);
        assert!((sense.energy_j - (3e-3 + 2e-4)).abs() < 1e-12, "{sense:?}");
        assert!((sense.latency_s - 3e-4).abs() < 1e-12, "{sense:?}");
        // Breakdown sums to the blended totals.
        assert!((rec.stages.total_energy_j() - out.energy_j).abs() < 1e-12);
        assert!((rec.stages.total_latency_s() - out.latency_s).abs() < 1e-12);
        // Spans: two failed sense attempts, then sense/perceive/monitor/
        // control/act of the successful pass.
        let spans: Vec<_> = looop.tracer().spans().copied().collect();
        assert_eq!(spans.len(), 7);
        assert!(!spans[0].ok && spans[0].stage == StageId::Sense);
        assert!(!spans[1].ok && spans[1].stage == StageId::Sense);
        assert!(spans[2..].iter().all(|s| s.ok));
        assert_eq!(
            spans[2..].iter().map(|s| s.stage).collect::<Vec<_>>(),
            StageId::ALL.to_vec()
        );
        assert!(spans.iter().all(|s| s.tick == 0));
    }

    #[test]
    fn fallback_tick_attributes_failed_sense_and_failsafe_control() {
        // Sensor always down, no retries, no held features: the fail-safe
        // path must still attribute the failed attempt and the controller's
        // fail-safe cost.
        let sensor = FnTrySensor::new(|_e: &f64, ctx: &mut StageContext| {
            ctx.charge(5e-4, 2e-5);
            Err::<f64, _>(StageError::Dropout)
        });
        let mut looop = FallibleLoop::new(
            "fallback-attr",
            sensor,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            gain_controller(),
        )
        .with_recovery(RecoveryPolicy {
            max_retries: 0,
            max_hold_ticks: 0,
            ..RecoveryPolicy::default()
        });
        let out = looop.tick(&1.0);
        assert_eq!(out.resolution, TickResolution::Fallback);
        let rec = *looop.telemetry().records().next().unwrap();
        assert!((rec.stages.get(StageId::Sense).energy_j - 5e-4).abs() < 1e-15);
        // Perceive never ran; its attribution stays zero.
        assert_eq!(rec.stages.get(StageId::Perceive).energy_j, 0.0);
        assert!((rec.stages.total_energy_j() - out.energy_j).abs() < 1e-15);
        // Per-stage histograms: sense active, perceive idle.
        assert_eq!(looop.telemetry().stage_latency(StageId::Sense).count(), 1);
        assert_eq!(
            looop.telemetry().stage_latency(StageId::Perceive).count(),
            0
        );
    }

    #[test]
    fn hold_then_fallback_with_staleness_decayed_trust() {
        // One good tick, then the sensor dies for good.
        let mut alive = true;
        let sensor = FnTrySensor::new(move |e: &f64, _: &mut StageContext| {
            if alive {
                alive = false;
                Ok(*e)
            } else {
                Err(StageError::Dropout)
            }
        });
        let mut looop = FallibleLoop::new(
            "hold",
            sensor,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            WithFallback::new(
                FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| *f),
                -1.0,
            ),
        )
        .with_recovery(RecoveryPolicy {
            max_retries: 0,
            max_hold_ticks: 2,
            staleness_decay: 0.4,
            ..RecoveryPolicy::default()
        });
        let o0 = looop.tick(&7.0);
        assert_eq!(o0.resolution, TickResolution::Fresh);
        assert_eq!(o0.trust, Trust::Trusted);
        // Held tick 1: same features, trust degraded by one staleness step.
        let o1 = looop.tick(&99.0);
        assert_eq!(o1.resolution, TickResolution::Held { staleness: 1 });
        assert_eq!(o1.action, 7.0, "held features, not the new env");
        assert_eq!(o1.trust, Trust::Suspect(0.4));
        // Held tick 2: staleness decays trust further.
        let o2 = looop.tick(&99.0);
        assert_eq!(o2.resolution, TickResolution::Held { staleness: 2 });
        assert_eq!(o2.trust, Trust::Suspect(0.8));
        // Hold budget exhausted: fail-safe action, untrusted.
        let o3 = looop.tick(&99.0);
        assert_eq!(o3.resolution, TickResolution::Fallback);
        assert_eq!(o3.action, -1.0);
        assert_eq!(o3.trust, Trust::Untrusted);
        let c = looop.telemetry().fault_counters();
        assert_eq!(c.holds, 2);
        assert_eq!(c.fallbacks, 1);
        assert_eq!(c.faults, 3);
    }

    #[test]
    fn fresh_tick_resets_staleness() {
        // Alternating dead/alive sensor: each successful tick re-arms the
        // full hold budget.
        let mut tick = 0u32;
        let sensor = FnTrySensor::new(move |e: &f64, _: &mut StageContext| {
            tick += 1;
            if tick.is_multiple_of(2) {
                Err(StageError::Dropout)
            } else {
                Ok(*e)
            }
        });
        let mut looop = FallibleLoop::new(
            "alt",
            sensor,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            gain_controller(),
        )
        .with_recovery(RecoveryPolicy {
            max_retries: 0,
            max_hold_ticks: 1,
            ..RecoveryPolicy::default()
        });
        for _ in 0..6 {
            let out = looop.tick(&1.0);
            assert_ne!(out.resolution, TickResolution::Fallback);
        }
        assert_eq!(looop.telemetry().fault_counters().holds, 3);
        assert_eq!(looop.telemetry().fault_counters().fallbacks, 0);
    }

    #[test]
    fn poisoned_features_detected_and_recovered() {
        // NaN-poisoning injector at p=1 on the first attempt only would be
        // nondeterministic; instead poison every attempt and verify the
        // finite check converts it into a typed fault and the loop falls
        // back (never handing NaN to the controller).
        let inj: FaultInjector<_, f64> = FaultInjector::new(
            scalar_sensor(),
            FaultProfile {
                nan: 1.0,
                ..FaultProfile::none()
            },
            5,
        );
        let mut looop = FallibleLoop::new(
            "poison",
            inj,
            Reliable(identity_perceptor()),
            FnMonitor::new(|_f: &f64, _: &mut StageContext| Trust::Trusted),
            WithFallback::new(
                FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| {
                    assert!(f.is_finite(), "controller must never see NaN features");
                    *f
                }),
                0.0,
            ),
        );
        let out = looop.tick(&1.0);
        assert_eq!(out.resolution, TickResolution::Fallback);
        assert_eq!(out.action, 0.0);
        assert!(out.faults >= 1);
        assert_eq!(
            looop.telemetry().fault_counters().poisoned,
            out.faults as u64
        );
    }

    #[test]
    fn latency_budget_turns_spikes_into_timeouts() {
        let inj: FaultInjector<_, f64> = FaultInjector::new(
            scalar_sensor(),
            FaultProfile {
                latency_spike: 1.0,
                spike_latency_s: 0.2,
                ..FaultProfile::none()
            },
            2,
        );
        let mut looop = FallibleLoop::new(
            "timeout",
            inj,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            gain_controller(),
        )
        .with_recovery(RecoveryPolicy {
            max_retries: 1,
            latency_budget_s: Some(0.05),
            ..RecoveryPolicy::default()
        });
        let out = looop.tick(&1.0);
        // Every attempt spikes, so the tick degrades to fallback and the
        // faults are classified as timeouts.
        assert_eq!(out.resolution, TickResolution::Fallback);
        let c = looop.telemetry().fault_counters();
        assert_eq!(c.timeouts, out.faults as u64);
        assert!(c.timeouts >= 1);
    }

    #[test]
    fn retries_stop_when_budget_exhausted() {
        let sensor = FnTrySensor::new(|_: &f64, ctx: &mut StageContext| {
            ctx.charge(1.0, 0.0);
            Err::<f64, _>(StageError::Dropout)
        });
        let mut looop = FallibleLoop::new(
            "broke",
            sensor,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            gain_controller(),
        )
        .with_budget(EnergyBudget::new(0.5))
        .with_recovery(RecoveryPolicy {
            max_retries: 10,
            ..RecoveryPolicy::default()
        });
        let out = looop.tick(&1.0);
        // First failed attempt alone exhausts the budget — but consumption
        // happens at tick end, so exhaustion is only visible to *later*
        // retries... within the tick the budget still reads fresh. The
        // second attempt's failure then sees the un-consumed budget too:
        // retries are bounded by max_retries here, not the budget.
        assert_eq!(out.retries, 10);
        // Next tick the budget is exhausted: no retries at all.
        let out2 = looop.tick(&1.0);
        assert_eq!(out2.retries, 0);
        assert_eq!(out2.resolution, TickResolution::Fallback);
    }

    #[test]
    fn with_policy_adapts_sensor_through_injector() {
        use crate::adapt::{ActionMagnitudeRate, SensingKnobs};

        #[derive(Debug)]
        struct KnobSensor {
            rate: f64,
        }
        impl SensingKnobs for KnobSensor {
            fn rate(&self) -> f64 {
                self.rate
            }
            fn set_rate(&mut self, r: f64) {
                self.rate = r.clamp(0.0, 1.0);
            }
            fn resolution(&self) -> f64 {
                1.0
            }
            fn set_resolution(&mut self, _: f64) {}
        }
        impl Sensor<f64> for KnobSensor {
            type Reading = f64;
            fn sense(&mut self, env: &f64, ctx: &mut StageContext) -> f64 {
                ctx.charge(1e-3 * self.rate, 0.0);
                *env
            }
        }
        // Let adaptation reach the wrapped sensor through the injector.
        impl<V> SensingKnobs for FaultInjector<KnobSensor, V> {
            fn rate(&self) -> f64 {
                self.inner().rate()
            }
            fn set_rate(&mut self, r: f64) {
                self.inner_mut().set_rate(r);
            }
            fn resolution(&self) -> f64 {
                self.inner().resolution()
            }
            fn set_resolution(&mut self, r: f64) {
                self.inner_mut().set_resolution(r);
            }
        }

        let inj: FaultInjector<_, f64> =
            FaultInjector::new(KnobSensor { rate: 1.0 }, FaultProfile::none(), 0);
        let mut looop = FallibleLoop::new(
            "adapt",
            inj,
            Reliable(identity_perceptor()),
            AlwaysTrust,
            WithFallback::new(
                FnController::new(|_f: &f64, _t: Trust, _: &mut StageContext| 0.0f64),
                0.0,
            ),
        )
        .with_policy(ActionMagnitudeRate::default());
        for _ in 0..50 {
            let _ = looop.tick(&0.0);
        }
        // Quiet environment: the rate decays to idle through the wrapper.
        assert!(
            (looop.sensor().rate() - 0.1).abs() < 1e-6,
            "rate {}",
            looop.sensor().rate()
        );
    }

    #[test]
    fn finite_check_impls() {
        assert!(1.0f64.all_finite());
        assert!(!f64::NAN.all_finite());
        assert!(!f64::INFINITY.all_finite());
        assert!(vec![1.0, 2.0].all_finite());
        assert!(!vec![1.0, f64::NAN].all_finite());
        assert!([1.0, 2.0].all_finite());
        assert!(![f64::NAN].all_finite());
        assert!(2.0f32.all_finite());
    }

    #[test]
    fn nan_poison_impls() {
        let mut x = 1.0f64;
        x.poison();
        assert!(x.is_nan());
        let mut v = vec![1.0, 2.0];
        v.poison();
        assert!(v.iter().all(|x| x.is_nan()));
        let mut a = [1.0; 3];
        a.poison();
        assert!(a.iter().all(|x| x.is_nan()));
        let mut f = 1.0f32;
        f.poison();
        assert!(f.is_nan());
    }

    #[test]
    fn fn_try_adapters_compose() {
        let mut s = FnTrySensor::new(|e: &f64, _: &mut StageContext| {
            if *e < 0.0 {
                Err(StageError::OutOfRange {
                    value: *e,
                    min: 0.0,
                    max: 10.0,
                })
            } else {
                Ok(*e)
            }
        });
        let mut p = FnTryPerceptor::new(|r: &f64, _: &mut StageContext| Ok(*r * 2.0));
        let mut ctx = StageContext::new();
        let r = s.try_sense(&3.0, &mut ctx).unwrap();
        assert_eq!(p.try_perceive(&r, &mut ctx).unwrap(), 6.0);
        assert!(matches!(
            s.try_sense(&-1.0, &mut ctx),
            Err(StageError::OutOfRange { .. })
        ));
    }

    /// One injector outcome, comparable bit-exactly (NaN included).
    fn outcome(r: Result<f64, StageError>) -> String {
        match r {
            Ok(v) => format!("ok:{:016x}", v.to_bits()),
            Err(e) => format!("err:{e}"),
        }
    }

    /// Satellite: restoring a [`FaultInjector`] must resume its RNG stream at
    /// the exact position it was snapshotted, not reseed. Property-style:
    /// for several profiles and cut points, the post-restore fault sequence
    /// equals the uninterrupted one — even when the restore target was
    /// constructed with a *different* seed.
    #[test]
    fn injector_checkpoint_resumes_rng_stream_exactly() {
        let profiles = [
            FaultProfile {
                dropout: 0.2,
                stuck: 0.3,
                latency_spike: 0.15,
                spike_latency_s: 0.05,
                nan: 0.1,
            },
            FaultProfile::dropout(0.4),
            FaultProfile {
                stuck: 0.6,
                nan: 0.05,
                ..FaultProfile::none()
            },
        ];
        for (pi, profile) in profiles.iter().enumerate() {
            let make = |seed: u64| -> FaultInjector<_, f64> {
                FaultInjector::new(scalar_sensor(), *profile, seed)
            };
            // Uninterrupted reference sequence over a varying environment
            // (so stuck-at replays are observable in the values).
            let mut reference = make(42);
            let full: Vec<String> = (0..240)
                .map(|i| outcome(reference.try_sense(&(i as f64), &mut StageContext::new())))
                .collect();
            for cut in [1usize, 9, 120, 239] {
                let mut original = make(42);
                for i in 0..cut {
                    let _ = original.try_sense(&(i as f64), &mut StageContext::new());
                }
                let mut ckpt = Checkpoint::new("inj");
                original.save_state(&mut ckpt, "inj");
                // Through the wire, onto a differently-seeded fresh injector:
                // every bit that matters must come from the checkpoint.
                let ckpt = Checkpoint::from_jsonl(&ckpt.to_jsonl()).unwrap();
                let mut resumed = make(0xDEAD);
                resumed.restore_state(&ckpt, "inj").unwrap();
                assert_eq!(resumed.injected(), original.injected());
                let tail: Vec<String> = (cut..240)
                    .map(|i| outcome(resumed.try_sense(&(i as f64), &mut StageContext::new())))
                    .collect();
                assert_eq!(
                    tail,
                    full[cut..],
                    "profile {pi}: restored injector diverged after cut {cut}"
                );
            }
        }
    }

    /// A faulty, budgeted, mixed-precision loop snapshot-killed-resumed mid-
    /// run must tick forward bit-identically to the uninterrupted original —
    /// including held-feature staleness and every fault/recovery decision.
    #[test]
    fn fallible_loop_snapshot_resume_is_bit_exact() {
        use crate::precision::PrecisionPolicy;

        let profile = FaultProfile {
            dropout: 0.25,
            stuck: 0.2,
            latency_spike: 0.1,
            spike_latency_s: 0.01,
            nan: 0.1,
        };
        let build = || {
            FallibleLoop::new(
                "ckpt-loop",
                FaultInjector::<_, f64>::new(scalar_sensor(), profile, 11),
                Reliable(identity_perceptor()),
                FnMonitor::new(|f: &f64, _: &mut StageContext| {
                    if f.abs() > 6.0 {
                        Trust::Suspect(0.7)
                    } else {
                        Trust::Trusted
                    }
                }),
                gain_controller(),
            )
            .with_budget(EnergyBudget::new(5.0))
            .with_recovery(RecoveryPolicy {
                max_retries: 1,
                max_hold_ticks: 2,
                staleness_decay: 0.3,
                ..RecoveryPolicy::default()
            })
            .with_precision(PrecisionPolicy::default())
            .with_telemetry_capacity(32)
        };
        let mut env_a = 8.0f64;
        let mut uninterrupted = build();
        for _ in 0..50 {
            let out = uninterrupted.tick(&env_a);
            env_a += out.action * 0.1;
        }
        // Interrupted twin: 20 ticks, snapshot, "kill", restore onto a
        // freshly built loop, then finish the run in lockstep.
        let mut env_b = 8.0f64;
        let mut first = build();
        for _ in 0..20 {
            let out = first.tick(&env_b);
            env_b += out.action * 0.1;
        }
        let wire = first.snapshot().to_jsonl();
        drop(first);
        let mut resumed = build();
        resumed
            .restore(&Checkpoint::from_jsonl(&wire).unwrap())
            .unwrap();
        for _ in 20..50 {
            let out = resumed.tick(&env_b);
            env_b += out.action * 0.1;
        }
        assert_eq!(env_a.to_bits(), env_b.to_bits(), "trajectories diverged");
        let (ta, tb) = (uninterrupted.telemetry(), resumed.telemetry());
        assert_eq!(ta.ticks(), tb.ticks());
        assert_eq!(ta.fault_counters(), tb.fault_counters());
        assert_eq!(ta.total_energy_j().to_bits(), tb.total_energy_j().to_bits());
        let recs_a: Vec<_> = ta.records().copied().collect();
        let recs_b: Vec<_> = tb.records().copied().collect();
        assert_eq!(recs_a, recs_b, "telemetry rings diverged");
    }
}
