//! Structured telemetry export: JSONL span/tick events and a human-readable
//! text report.
//!
//! The JSONL format is one flat JSON object per line, tagged by a `"type"`
//! field (`"span"` or `"tick"`). Floats are serialized with Rust's shortest
//! round-trip `Display`, so `parse(export(x)) == x` holds bit-exactly — the
//! in-repo parser ([`parse_span`], [`parse_tick`]) needs no external JSON
//! dependency because events are flat: string values never contain commas,
//! braces or escapes.
//!
//! The text report ([`text_report`]) renders the per-stage attribution table
//! and an ASCII latency histogram for quick terminal inspection (see
//! `examples/observed_loop.rs`).

use crate::precision::Precision;
use crate::stage::Trust;
use crate::telemetry::{LoopTelemetry, TickRecord};
use crate::trace::{Span, StageBreakdown, StageId};
use std::fmt::Write as _;

/// Serialize one span as a single JSONL line (no trailing newline).
pub fn span_to_json(s: &Span) -> String {
    format!(
        "{{\"type\":\"span\",\"tick\":{},\"stage\":\"{}\",\"start_s\":{},\"end_s\":{},\"energy_j\":{},\"latency_s\":{},\"ok\":{}}}",
        s.tick, s.stage, s.start_s, s.end_s, s.energy_j, s.latency_s, s.ok
    )
}

/// Serialize one tick record (including its per-stage breakdown) as a single
/// JSONL line (no trailing newline).
pub fn tick_to_json(r: &TickRecord) -> String {
    let (kind, suspicion) = match r.trust {
        Trust::Trusted => ("trusted", 0.0),
        Trust::Suspect(s) => ("suspect", s),
        Trust::Untrusted => ("untrusted", 1.0),
    };
    let mut line = format!(
        "{{\"type\":\"tick\",\"tick\":{},\"energy_j\":{},\"latency_s\":{},\"trust\":\"{kind}\",\"suspicion\":{suspicion},\"precision\":\"{}\"",
        r.tick, r.energy_j, r.latency_s, r.precision.as_str()
    );
    for (stage, cost) in r.stages.iter() {
        let _ = write!(
            line,
            ",\"{n}_j\":{},\"{n}_s\":{}",
            cost.energy_j,
            cost.latency_s,
            n = stage.name()
        );
    }
    line.push('}');
    line
}

/// Export every retained tick record of a telemetry as JSONL (one event per
/// line, oldest first).
pub fn ticks_to_jsonl(telemetry: &LoopTelemetry) -> String {
    let mut out = String::new();
    for rec in telemetry.records() {
        out.push_str(&tick_to_json(rec));
        out.push('\n');
    }
    out
}

/// Export a slice of spans as JSONL (one event per line).
pub fn spans_to_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_to_json(s));
        out.push('\n');
    }
    out
}

/// Split a flat JSON object line into `(key, raw_value)` pairs. Returns
/// `None` on anything that is not a one-level `{"k":v,...}` object.
pub(crate) fn parse_flat(line: &str) -> Option<Vec<(&str, &str)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    for part in body.split(',') {
        let (k, v) = part.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        fields.push((k, v.trim()));
    }
    Some(fields)
}

pub(crate) fn field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

pub(crate) fn f64_field(fields: &[(&str, &str)], key: &str) -> Option<f64> {
    field(fields, key)?.parse().ok()
}

pub(crate) fn str_field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    field(fields, key)?.strip_prefix('"')?.strip_suffix('"')
}

/// Parse one JSONL line produced by [`span_to_json`].
pub fn parse_span(line: &str) -> Option<Span> {
    let fields = parse_flat(line)?;
    if str_field(&fields, "type")? != "span" {
        return None;
    }
    Some(Span {
        tick: field(&fields, "tick")?.parse().ok()?,
        stage: StageId::from_name(str_field(&fields, "stage")?)?,
        start_s: f64_field(&fields, "start_s")?,
        end_s: f64_field(&fields, "end_s")?,
        energy_j: f64_field(&fields, "energy_j")?,
        latency_s: f64_field(&fields, "latency_s")?,
        ok: field(&fields, "ok")?.parse().ok()?,
    })
}

/// Parse one JSONL line produced by [`tick_to_json`].
pub fn parse_tick(line: &str) -> Option<TickRecord> {
    let fields = parse_flat(line)?;
    if str_field(&fields, "type")? != "tick" {
        return None;
    }
    let trust = match str_field(&fields, "trust")? {
        "trusted" => Trust::Trusted,
        "untrusted" => Trust::Untrusted,
        "suspect" => Trust::Suspect(f64_field(&fields, "suspicion")?),
        _ => return None,
    };
    let mut stages = StageBreakdown::new();
    for stage in StageId::ALL {
        let e = f64_field(&fields, &format!("{}_j", stage.name()))?;
        let l = f64_field(&fields, &format!("{}_s", stage.name()))?;
        stages.add(stage, e, l);
    }
    // Lenient on the precision field so ticks recorded before the
    // mixed-precision mode existed still parse (they ran at f64).
    let precision = str_field(&fields, "precision")
        .and_then(Precision::parse)
        .unwrap_or(Precision::F64);
    Some(TickRecord {
        tick: field(&fields, "tick")?.parse().ok()?,
        energy_j: f64_field(&fields, "energy_j")?,
        latency_s: f64_field(&fields, "latency_s")?,
        trust,
        precision,
        stages,
    })
}

/// Parse a JSONL document, returning every tick event (other event types
/// and malformed lines are skipped).
pub fn parse_ticks(jsonl: &str) -> Vec<TickRecord> {
    jsonl.lines().filter_map(parse_tick).collect()
}

/// Parse a JSONL document, returning every span event.
pub fn parse_spans(jsonl: &str) -> Vec<Span> {
    jsonl.lines().filter_map(parse_span).collect()
}

/// Render an ASCII histogram of the non-empty buckets, coalesced into at
/// most `max_rows` rows, bars scaled to `bar_width` characters.
pub fn ascii_histogram(
    hist: &crate::metrics::Histogram,
    max_rows: usize,
    bar_width: usize,
) -> String {
    let buckets = hist.nonzero_buckets();
    if buckets.is_empty() {
        return "  (no samples)\n".to_string();
    }
    let max_rows = max_rows.max(1);
    // Coalesce adjacent buckets so at most max_rows rows render.
    let chunk = buckets.len().div_ceil(max_rows);
    let rows: Vec<(f64, f64, u64)> = buckets
        .chunks(chunk)
        .map(|c| {
            let lo = c.first().unwrap().0;
            let hi = c.last().unwrap().1;
            let n = c.iter().map(|(_, _, n)| n).sum();
            (lo, hi, n)
        })
        .collect();
    let peak = rows.iter().map(|(_, _, n)| *n).max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (lo, hi, n) in rows {
        let bar = (n as usize * bar_width).div_ceil(peak as usize);
        let hi_str = if hi.is_infinite() {
            "+inf".to_string()
        } else {
            format!("{hi:9.3e}")
        };
        let _ = writeln!(
            out,
            "  [{lo:9.3e}, {hi_str:>9})  {:<bar_width$}  {n}",
            "#".repeat(bar)
        );
    }
    out
}

/// Render a human-readable observability report: header aggregates, the
/// per-stage attribution table (energy share, latency quantiles), fault
/// counters, and an ASCII histogram of whole-tick latency.
pub fn text_report(name: &str, telemetry: &LoopTelemetry) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== loop '{name}' — {} ticks, {:.3e} J, mean tick latency {:.3e} s ==",
        telemetry.ticks(),
        telemetry.total_energy_j(),
        telemetry.latency_stats().mean(),
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>7} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "stage", "energy_j", "share", "ticks", "lat_mean_s", "lat_p50_s", "lat_p99_s", "lat_max_s"
    );
    let totals = telemetry.stage_totals();
    let total_e = totals.total_energy_j();
    for stage in StageId::ALL {
        let cost = totals.get(stage);
        let share = if total_e > 0.0 {
            100.0 * cost.energy_j / total_e
        } else {
            0.0
        };
        let h = telemetry.stage_latency(stage);
        let _ = writeln!(
            out,
            "{:<10} {:>12.3e} {:>6.1}% {:>8} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            stage.name(),
            cost.energy_j,
            share,
            h.count(),
            h.mean(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }
    let counters = telemetry.fault_counters();
    if counters != Default::default() {
        let _ = writeln!(out, "faults: {counters}");
    }
    let _ = writeln!(
        out,
        "suspect: {:.1}% of ticks, max streak {}",
        telemetry.suspect_fraction() * 100.0,
        telemetry.max_suspect_streak()
    );
    let _ = writeln!(out, "tick latency histogram:");
    out.push_str(&ascii_histogram(telemetry.latency_histogram(), 12, 40));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample_span() -> Span {
        Span {
            tick: 42,
            stage: StageId::Perceive,
            start_s: 0.125,
            end_s: 0.25,
            energy_j: 1.5e-3,
            latency_s: 2.5e-4,
            ok: false,
        }
    }

    #[test]
    fn span_round_trips() {
        let s = sample_span();
        let line = span_to_json(&s);
        assert_eq!(parse_span(&line), Some(s));
        // And through the multi-line path.
        let doc = spans_to_jsonl(&[s, s]);
        assert_eq!(parse_spans(&doc), vec![s, s]);
    }

    #[test]
    fn tick_round_trips_all_trust_kinds() {
        for trust in [
            Trust::Trusted,
            Trust::Suspect(0.123456789),
            Trust::Suspect(1.0 / 3.0), // not exactly representable in decimal
            Trust::Untrusted,
        ] {
            for precision in Precision::ALL {
                let mut stages = StageBreakdown::new();
                stages.add(StageId::Sense, 1e-3, 0.1 + 0.2); // 0.30000000000000004
                stages.add(StageId::Act, 7.25e-9, 0.0);
                let rec = TickRecord {
                    tick: 999,
                    energy_j: 0.1 + 0.2,
                    latency_s: 1e-4,
                    trust,
                    precision,
                    stages,
                };
                let line = tick_to_json(&rec);
                assert_eq!(parse_tick(&line), Some(rec), "line: {line}");
            }
        }
    }

    #[test]
    fn tick_without_precision_field_parses_as_f64() {
        // A pre-mixed-precision JSONL line (no "precision" key) still parses.
        let mut stages = StageBreakdown::new();
        stages.add(StageId::Sense, 1e-3, 2e-4);
        let rec = TickRecord {
            tick: 3,
            energy_j: 1e-3,
            latency_s: 2e-4,
            trust: Trust::Trusted,
            precision: Precision::F32,
            stages,
        };
        let line = tick_to_json(&rec).replace(",\"precision\":\"f32\"", "");
        let parsed = parse_tick(&line).expect("legacy line parses");
        assert_eq!(parsed.precision, Precision::F64);
        assert_eq!(parsed.tick, 3);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert_eq!(parse_span("not json"), None);
        assert_eq!(parse_span("{}"), None);
        assert_eq!(parse_span("{\"type\":\"tick\"}"), None);
        assert_eq!(parse_tick("{\"type\":\"span\"}"), None);
        assert_eq!(parse_tick(""), None);
        // Mixed documents: parse_ticks skips span lines and garbage.
        let doc = format!("{}\ngarbage\n", span_to_json(&sample_span()));
        assert!(parse_ticks(&doc).is_empty());
        assert_eq!(parse_spans(&doc).len(), 1);
    }

    #[test]
    fn parser_survives_truncated_lines() {
        // Truncation at *every* byte boundary — a torn write or a killed
        // process must yield `None`, never a panic or a half-parsed event.
        let span_line = span_to_json(&sample_span());
        let mut stages = StageBreakdown::new();
        stages.add(StageId::Sense, 1e-3, 2e-4);
        let tick_line = tick_to_json(&TickRecord {
            tick: 7,
            energy_j: 1e-3,
            latency_s: 2e-4,
            trust: Trust::Suspect(0.5),
            precision: Precision::Int8,
            stages,
        });
        for line in [span_line.as_str(), tick_line.as_str()] {
            for cut in 0..line.len() {
                let truncated = &line[..cut];
                assert_eq!(parse_span(truncated), None, "cut at {cut}: {truncated}");
                assert_eq!(parse_tick(truncated), None, "cut at {cut}: {truncated}");
            }
        }
    }

    #[test]
    fn parser_survives_corrupted_values() {
        // Field-level corruption: wrong types, missing fields, garbage
        // numbers — all must be rejected, not panic.
        for line in [
            "{\"type\":\"span\",\"tick\":abc,\"stage\":\"sense\"}",
            "{\"type\":\"span\",\"tick\":1,\"stage\":\"warp\",\"start_s\":0,\"end_s\":0,\"energy_j\":0,\"latency_s\":0,\"ok\":true}",
            "{\"type\":\"tick\",\"tick\":1,\"energy_j\":1e999x,\"latency_s\":0}",
            "{\"type\":\"tick\",\"tick\":1,\"energy_j\":0,\"latency_s\":0,\"trust\":\"odd\",\"suspicion\":0}",
            "{\"type\":\"tick\"",
            "{:}",
            "{\"\":}",
            "null",
            "[1,2,3]",
        ] {
            assert_eq!(parse_span(line), None, "span accepted: {line}");
            assert_eq!(parse_tick(line), None, "tick accepted: {line}");
        }
        // And document-level: a stream of junk parses to zero events.
        let doc = "{\"type\":\"tick\"\n\n}{\n";
        assert!(parse_ticks(doc).is_empty());
        assert!(parse_spans(doc).is_empty());
    }

    #[test]
    fn ascii_histogram_renders_and_coalesces() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let art = ascii_histogram(&h, 8, 30);
        assert!(art.lines().count() <= 8, "{art}");
        assert!(art.contains('#'));
        // Every sample accounted for across rows.
        let total: u64 = art
            .lines()
            .filter_map(|l| {
                l.rsplit_once("  ")
                    .and_then(|(_, n)| n.trim().parse::<u64>().ok())
            })
            .sum();
        assert_eq!(total, 100);
        assert_eq!(
            ascii_histogram(&Histogram::new(), 8, 30),
            "  (no samples)\n"
        );
    }
}
