//! Structured telemetry export: JSONL span/tick events and a human-readable
//! text report.
//!
//! The JSONL format is one flat JSON object per line, tagged by a `"type"`
//! field (`"span"` or `"tick"`). Floats are serialized with Rust's shortest
//! round-trip `Display`, so `parse(export(x)) == x` holds bit-exactly — the
//! in-repo parser ([`parse_span`], [`parse_tick`]) needs no external JSON
//! dependency because events are flat: string values never contain commas,
//! braces or escapes.
//!
//! The text report ([`text_report`]) renders the per-stage attribution table
//! and an ASCII latency histogram for quick terminal inspection (see
//! `examples/observed_loop.rs`).

use crate::metrics::MetricsRegistry;
use crate::precision::Precision;
use crate::stage::Trust;
use crate::telemetry::{LoopTelemetry, TickRecord};
use crate::trace::{CausalSpan, Span, SpanKind, StageBreakdown, StageId};
use std::fmt::Write as _;

/// Serialize one span as a single JSONL line (no trailing newline).
pub fn span_to_json(s: &Span) -> String {
    format!(
        "{{\"type\":\"span\",\"tick\":{},\"stage\":\"{}\",\"start_s\":{},\"end_s\":{},\"energy_j\":{},\"latency_s\":{},\"ok\":{}}}",
        s.tick, s.stage, s.start_s, s.end_s, s.energy_j, s.latency_s, s.ok
    )
}

/// Serialize one tick record (including its per-stage breakdown) as a single
/// JSONL line (no trailing newline).
pub fn tick_to_json(r: &TickRecord) -> String {
    let (kind, suspicion) = match r.trust {
        Trust::Trusted => ("trusted", 0.0),
        Trust::Suspect(s) => ("suspect", s),
        Trust::Untrusted => ("untrusted", 1.0),
    };
    let mut line = format!(
        "{{\"type\":\"tick\",\"tick\":{},\"energy_j\":{},\"latency_s\":{},\"trust\":\"{kind}\",\"suspicion\":{suspicion},\"precision\":\"{}\"",
        r.tick, r.energy_j, r.latency_s, r.precision.as_str()
    );
    for (stage, cost) in r.stages.iter() {
        let _ = write!(
            line,
            ",\"{n}_j\":{},\"{n}_s\":{}",
            cost.energy_j,
            cost.latency_s,
            n = stage.name()
        );
    }
    line.push('}');
    line
}

/// Export every retained tick record of a telemetry as JSONL (one event per
/// line, oldest first).
pub fn ticks_to_jsonl(telemetry: &LoopTelemetry) -> String {
    let mut out = String::new();
    for rec in telemetry.records() {
        out.push_str(&tick_to_json(rec));
        out.push('\n');
    }
    out
}

/// Export a slice of spans as JSONL (one event per line).
pub fn spans_to_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_to_json(s));
        out.push('\n');
    }
    out
}

/// Serialize one causal span as a single JSONL line (no trailing newline).
///
/// Ids are serialized as decimal `u64` — the in-repo parser reads them back
/// bit-exactly (tools that funnel JSON numbers through `f64` would truncate
/// above 2^53; use the in-repo parser for id-faithful reconstruction).
pub fn causal_span_to_json(s: &CausalSpan) -> String {
    format!(
        "{{\"type\":\"causal\",\"trace\":{},\"span\":{},\"parent\":{},\"kind\":\"{}\",\"node\":{},\"detail\":{},\"start_s\":{},\"end_s\":{},\"ok\":{}}}",
        s.trace_id, s.span_id, s.parent_id, s.kind, s.node, s.detail, s.start_s, s.end_s, s.ok
    )
}

/// Export a slice of causal spans as JSONL (one event per line).
pub fn causal_spans_to_jsonl(spans: &[CausalSpan]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&causal_span_to_json(s));
        out.push('\n');
    }
    out
}

/// Parse one JSONL line produced by [`causal_span_to_json`].
pub fn parse_causal_span(line: &str) -> Option<CausalSpan> {
    let fields = parse_flat(line)?;
    if str_field(&fields, "type")? != "causal" {
        return None;
    }
    Some(CausalSpan {
        trace_id: field(&fields, "trace")?.parse().ok()?,
        span_id: field(&fields, "span")?.parse().ok()?,
        parent_id: field(&fields, "parent")?.parse().ok()?,
        kind: SpanKind::from_name(str_field(&fields, "kind")?)?,
        node: field(&fields, "node")?.parse().ok()?,
        detail: field(&fields, "detail")?.parse().ok()?,
        start_s: f64_field(&fields, "start_s")?,
        end_s: f64_field(&fields, "end_s")?,
        ok: field(&fields, "ok")?.parse().ok()?,
    })
}

/// Parse a JSONL document, returning every causal-span event.
pub fn parse_causal_spans(jsonl: &str) -> Vec<CausalSpan> {
    jsonl.lines().filter_map(parse_causal_span).collect()
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Order-sensitive FNV-1a hash of a byte stream.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash over the exported JSONL of a causal-span stream — the
/// acceptance fingerprint for bit-for-bit trace reproducibility: two runs
/// from the same seeds must produce identical hashes.
pub fn trace_stream_hash(spans: &[CausalSpan]) -> u64 {
    fnv1a(causal_spans_to_jsonl(spans).as_bytes())
}

/// Split a flat JSON object line into `(key, raw_value)` pairs. Returns
/// `None` on anything that is not a one-level `{"k":v,...}` object.
pub(crate) fn parse_flat(line: &str) -> Option<Vec<(&str, &str)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    for part in body.split(',') {
        let (k, v) = part.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        fields.push((k, v.trim()));
    }
    Some(fields)
}

pub(crate) fn field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

pub(crate) fn f64_field(fields: &[(&str, &str)], key: &str) -> Option<f64> {
    field(fields, key)?.parse().ok()
}

pub(crate) fn str_field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    field(fields, key)?.strip_prefix('"')?.strip_suffix('"')
}

/// Parse one JSONL line produced by [`span_to_json`].
pub fn parse_span(line: &str) -> Option<Span> {
    let fields = parse_flat(line)?;
    if str_field(&fields, "type")? != "span" {
        return None;
    }
    Some(Span {
        tick: field(&fields, "tick")?.parse().ok()?,
        stage: StageId::from_name(str_field(&fields, "stage")?)?,
        start_s: f64_field(&fields, "start_s")?,
        end_s: f64_field(&fields, "end_s")?,
        energy_j: f64_field(&fields, "energy_j")?,
        latency_s: f64_field(&fields, "latency_s")?,
        ok: field(&fields, "ok")?.parse().ok()?,
    })
}

/// Parse one JSONL line produced by [`tick_to_json`].
pub fn parse_tick(line: &str) -> Option<TickRecord> {
    let fields = parse_flat(line)?;
    if str_field(&fields, "type")? != "tick" {
        return None;
    }
    let trust = match str_field(&fields, "trust")? {
        "trusted" => Trust::Trusted,
        "untrusted" => Trust::Untrusted,
        "suspect" => Trust::Suspect(f64_field(&fields, "suspicion")?),
        _ => return None,
    };
    let mut stages = StageBreakdown::new();
    for stage in StageId::ALL {
        let e = f64_field(&fields, &format!("{}_j", stage.name()))?;
        let l = f64_field(&fields, &format!("{}_s", stage.name()))?;
        stages.add(stage, e, l);
    }
    // Lenient on the precision field so ticks recorded before the
    // mixed-precision mode existed still parse (they ran at f64).
    let precision = str_field(&fields, "precision")
        .and_then(Precision::parse)
        .unwrap_or(Precision::F64);
    Some(TickRecord {
        tick: field(&fields, "tick")?.parse().ok()?,
        energy_j: f64_field(&fields, "energy_j")?,
        latency_s: f64_field(&fields, "latency_s")?,
        trust,
        precision,
        stages,
    })
}

/// Parse a JSONL document, returning every tick event (other event types
/// and malformed lines are skipped).
pub fn parse_ticks(jsonl: &str) -> Vec<TickRecord> {
    jsonl.lines().filter_map(parse_tick).collect()
}

/// Parse a JSONL document, returning every span event.
pub fn parse_spans(jsonl: &str) -> Vec<Span> {
    jsonl.lines().filter_map(parse_span).collect()
}

/// Render an ASCII histogram of the non-empty buckets, coalesced into at
/// most `max_rows` rows, bars scaled to `bar_width` characters.
pub fn ascii_histogram(
    hist: &crate::metrics::Histogram,
    max_rows: usize,
    bar_width: usize,
) -> String {
    let buckets = hist.nonzero_buckets();
    if buckets.is_empty() {
        return "  (no samples)\n".to_string();
    }
    let max_rows = max_rows.max(1);
    // Coalesce adjacent buckets so at most max_rows rows render.
    let chunk = buckets.len().div_ceil(max_rows);
    let rows: Vec<(f64, f64, u64)> = buckets
        .chunks(chunk)
        .map(|c| {
            let lo = c.first().unwrap().0;
            let hi = c.last().unwrap().1;
            let n = c.iter().map(|(_, _, n)| n).sum();
            (lo, hi, n)
        })
        .collect();
    let peak = rows.iter().map(|(_, _, n)| *n).max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (lo, hi, n) in rows {
        let bar = (n as usize * bar_width).div_ceil(peak as usize);
        let hi_str = if hi.is_infinite() {
            "+inf".to_string()
        } else {
            format!("{hi:9.3e}")
        };
        let _ = writeln!(
            out,
            "  [{lo:9.3e}, {hi_str:>9})  {:<bar_width$}  {n}",
            "#".repeat(bar)
        );
    }
    out
}

/// Sanitize a metric name for Prometheus: dots (and any other
/// non-alphanumeric byte) become underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Render a registry in the Prometheus text exposition format (version
/// 0.0.4): `# TYPE` comments plus `name{labels} value` sample lines.
///
/// Counters and gauges render as single samples; histograms render as
/// cumulative `_bucket{le="…"}` series (upper bucket edges, shortest
/// round-trip float form) plus `_sum` and `_count`. This is the scrape
/// payload ROADMAP item 3's serving front-end will mount at `/metrics`.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    prometheus_text_with_labels(registry, &[])
}

/// [`prometheus_text`] with constant labels attached to every sample —
/// e.g. `&[("fleet", "edge-a")]` or a per-loop `("loop", name)`.
pub fn prometheus_text_with_labels(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> String {
    let render_labels = |extra: Option<(&str, &str)>| -> String {
        let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    };
    let plain = render_labels(None);
    let mut out = String::new();
    for (name, v) in registry.counters() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n}{plain} {v}");
    }
    for (name, v) in registry.gauges() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n}{plain} {v}");
    }
    for (name, h) in registry.histograms() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (_, upper, count) in h.nonzero_buckets() {
            cumulative += count;
            if upper.is_finite() {
                let le = render_labels(Some(("le", &format!("{upper}"))));
                let _ = writeln!(out, "{n}_bucket{le} {cumulative}");
            }
        }
        let inf = render_labels(Some(("le", "+Inf")));
        let _ = writeln!(out, "{n}_bucket{inf} {}", h.count());
        let _ = writeln!(out, "{n}_sum{plain} {}", h.sum());
        let _ = writeln!(out, "{n}_count{plain} {}", h.count());
    }
    out
}

/// Render a human-readable observability report: header aggregates, the
/// per-stage attribution table (energy share, latency quantiles), fault
/// counters, and an ASCII histogram of whole-tick latency.
pub fn text_report(name: &str, telemetry: &LoopTelemetry) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== loop '{name}' — {} ticks, {:.3e} J, mean tick latency {:.3e} s ==",
        telemetry.ticks(),
        telemetry.total_energy_j(),
        telemetry.latency_stats().mean(),
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>7} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "stage", "energy_j", "share", "ticks", "lat_mean_s", "lat_p50_s", "lat_p99_s", "lat_max_s"
    );
    let totals = telemetry.stage_totals();
    let total_e = totals.total_energy_j();
    for stage in StageId::ALL {
        let cost = totals.get(stage);
        let share = if total_e > 0.0 {
            100.0 * cost.energy_j / total_e
        } else {
            0.0
        };
        let h = telemetry.stage_latency(stage);
        let _ = writeln!(
            out,
            "{:<10} {:>12.3e} {:>6.1}% {:>8} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            stage.name(),
            cost.energy_j,
            share,
            h.count(),
            h.mean(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }
    let counters = telemetry.fault_counters();
    if counters != Default::default() {
        let _ = writeln!(out, "faults: {counters}");
    }
    let _ = writeln!(
        out,
        "suspect: {:.1}% of ticks, max streak {}",
        telemetry.suspect_fraction() * 100.0,
        telemetry.max_suspect_streak()
    );
    let _ = writeln!(out, "tick latency histogram:");
    out.push_str(&ascii_histogram(telemetry.latency_histogram(), 12, 40));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample_span() -> Span {
        Span {
            tick: 42,
            stage: StageId::Perceive,
            start_s: 0.125,
            end_s: 0.25,
            energy_j: 1.5e-3,
            latency_s: 2.5e-4,
            ok: false,
        }
    }

    #[test]
    fn span_round_trips() {
        let s = sample_span();
        let line = span_to_json(&s);
        assert_eq!(parse_span(&line), Some(s));
        // And through the multi-line path.
        let doc = spans_to_jsonl(&[s, s]);
        assert_eq!(parse_spans(&doc), vec![s, s]);
    }

    #[test]
    fn tick_round_trips_all_trust_kinds() {
        for trust in [
            Trust::Trusted,
            Trust::Suspect(0.123456789),
            Trust::Suspect(1.0 / 3.0), // not exactly representable in decimal
            Trust::Untrusted,
        ] {
            for precision in Precision::ALL {
                let mut stages = StageBreakdown::new();
                stages.add(StageId::Sense, 1e-3, 0.1 + 0.2); // 0.30000000000000004
                stages.add(StageId::Act, 7.25e-9, 0.0);
                let rec = TickRecord {
                    tick: 999,
                    energy_j: 0.1 + 0.2,
                    latency_s: 1e-4,
                    trust,
                    precision,
                    stages,
                };
                let line = tick_to_json(&rec);
                assert_eq!(parse_tick(&line), Some(rec), "line: {line}");
            }
        }
    }

    #[test]
    fn tick_without_precision_field_parses_as_f64() {
        // A pre-mixed-precision JSONL line (no "precision" key) still parses.
        let mut stages = StageBreakdown::new();
        stages.add(StageId::Sense, 1e-3, 2e-4);
        let rec = TickRecord {
            tick: 3,
            energy_j: 1e-3,
            latency_s: 2e-4,
            trust: Trust::Trusted,
            precision: Precision::F32,
            stages,
        };
        let line = tick_to_json(&rec).replace(",\"precision\":\"f32\"", "");
        let parsed = parse_tick(&line).expect("legacy line parses");
        assert_eq!(parsed.precision, Precision::F64);
        assert_eq!(parsed.tick, 3);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert_eq!(parse_span("not json"), None);
        assert_eq!(parse_span("{}"), None);
        assert_eq!(parse_span("{\"type\":\"tick\"}"), None);
        assert_eq!(parse_tick("{\"type\":\"span\"}"), None);
        assert_eq!(parse_tick(""), None);
        // Mixed documents: parse_ticks skips span lines and garbage.
        let doc = format!("{}\ngarbage\n", span_to_json(&sample_span()));
        assert!(parse_ticks(&doc).is_empty());
        assert_eq!(parse_spans(&doc).len(), 1);
    }

    #[test]
    fn parser_survives_truncated_lines() {
        // Truncation at *every* byte boundary — a torn write or a killed
        // process must yield `None`, never a panic or a half-parsed event.
        let span_line = span_to_json(&sample_span());
        let mut stages = StageBreakdown::new();
        stages.add(StageId::Sense, 1e-3, 2e-4);
        let tick_line = tick_to_json(&TickRecord {
            tick: 7,
            energy_j: 1e-3,
            latency_s: 2e-4,
            trust: Trust::Suspect(0.5),
            precision: Precision::Int8,
            stages,
        });
        for line in [span_line.as_str(), tick_line.as_str()] {
            for cut in 0..line.len() {
                let truncated = &line[..cut];
                assert_eq!(parse_span(truncated), None, "cut at {cut}: {truncated}");
                assert_eq!(parse_tick(truncated), None, "cut at {cut}: {truncated}");
            }
        }
    }

    #[test]
    fn parser_survives_corrupted_values() {
        // Field-level corruption: wrong types, missing fields, garbage
        // numbers — all must be rejected, not panic.
        for line in [
            "{\"type\":\"span\",\"tick\":abc,\"stage\":\"sense\"}",
            "{\"type\":\"span\",\"tick\":1,\"stage\":\"warp\",\"start_s\":0,\"end_s\":0,\"energy_j\":0,\"latency_s\":0,\"ok\":true}",
            "{\"type\":\"tick\",\"tick\":1,\"energy_j\":1e999x,\"latency_s\":0}",
            "{\"type\":\"tick\",\"tick\":1,\"energy_j\":0,\"latency_s\":0,\"trust\":\"odd\",\"suspicion\":0}",
            "{\"type\":\"tick\"",
            "{:}",
            "{\"\":}",
            "null",
            "[1,2,3]",
        ] {
            assert_eq!(parse_span(line), None, "span accepted: {line}");
            assert_eq!(parse_tick(line), None, "tick accepted: {line}");
        }
        // And document-level: a stream of junk parses to zero events.
        let doc = "{\"type\":\"tick\"\n\n}{\n";
        assert!(parse_ticks(doc).is_empty());
        assert!(parse_spans(doc).is_empty());
    }

    fn sample_causal(kind: SpanKind) -> CausalSpan {
        CausalSpan {
            trace_id: u64::MAX - 3, // above 2^53: must survive bit-exactly
            span_id: 0x1234_5678_9ABC_DEF0,
            parent_id: 7,
            kind,
            node: 1001,
            detail: 3,
            start_s: 0.1 + 0.2, // 0.30000000000000004
            end_s: 1.0 / 3.0,
            ok: false,
        }
    }

    #[test]
    fn causal_span_round_trips_every_kind() {
        for kind in SpanKind::ALL {
            let s = sample_causal(kind);
            let line = causal_span_to_json(&s);
            assert_eq!(parse_causal_span(&line), Some(s), "line: {line}");
        }
        let doc = causal_spans_to_jsonl(&[
            sample_causal(SpanKind::NetSend),
            sample_causal(SpanKind::ServerAggregate),
        ]);
        assert_eq!(parse_causal_spans(&doc).len(), 2);
        // Causal lines are invisible to the other parsers and vice versa.
        assert!(parse_spans(&doc).is_empty());
        assert_eq!(parse_causal_span(&span_to_json(&sample_span())), None);
    }

    #[test]
    fn causal_parser_survives_truncated_and_corrupted_lines() {
        // Truncation at every byte boundary must never panic (PR 4 contract).
        for kind in [SpanKind::NetRetry, SpanKind::Health, SpanKind::Adopt] {
            let line = causal_span_to_json(&sample_causal(kind));
            for cut in 0..line.len() {
                assert_eq!(parse_causal_span(&line[..cut]), None, "cut at {cut}");
            }
        }
        for line in [
            "{\"type\":\"causal\",\"trace\":x,\"span\":1,\"parent\":0,\"kind\":\"round\",\"node\":0,\"detail\":0,\"start_s\":0,\"end_s\":0,\"ok\":true}",
            "{\"type\":\"causal\",\"trace\":1,\"span\":1,\"parent\":0,\"kind\":\"warp\",\"node\":0,\"detail\":0,\"start_s\":0,\"end_s\":0,\"ok\":true}",
            "{\"type\":\"causal\",\"trace\":-1,\"span\":1,\"parent\":0,\"kind\":\"round\",\"node\":0,\"detail\":0,\"start_s\":0,\"end_s\":0,\"ok\":true}",
            "{\"type\":\"span\",\"trace\":1}",
            "null",
        ] {
            assert_eq!(parse_causal_span(line), None, "accepted: {line}");
        }
    }

    #[test]
    fn trace_stream_hash_is_order_sensitive_and_deterministic() {
        let a = sample_causal(SpanKind::NetSend);
        let b = sample_causal(SpanKind::NetDeliver);
        assert_eq!(trace_stream_hash(&[a, b]), trace_stream_hash(&[a, b]));
        assert_ne!(trace_stream_hash(&[a, b]), trace_stream_hash(&[b, a]));
        assert_ne!(trace_stream_hash(&[a]), trace_stream_hash(&[]));
        // Known-answer for the empty stream: the FNV-1a offset basis.
        assert_eq!(trace_stream_hash(&[]), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let mut r = MetricsRegistry::new();
        r.add("fleet.ticks_total", 12);
        r.set("fleet.energy_j", 0.5);
        r.observe("sched.tick.latency_s", 1e-3);
        r.observe("sched.tick.latency_s", 2e-3);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE fleet_ticks_total counter"));
        assert!(text.contains("fleet_ticks_total 12"));
        assert!(text.contains("# TYPE fleet_energy_j gauge"));
        assert!(text.contains("fleet_energy_j 0.5"));
        assert!(text.contains("# TYPE sched_tick_latency_s histogram"));
        assert!(text.contains("sched_tick_latency_s_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sched_tick_latency_s_count 2"));
        assert!(text.contains("sched_tick_latency_s_sum 0.003"));
        // No dots survive sanitization in sample names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized name: {line}");
        }
    }

    /// Every non-comment line must parse as `name{labels} value` with a
    /// valid metric name and a numeric value — the acceptance-criteria
    /// format check.
    fn assert_prometheus_wellformed(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has value");
            let name = series.split('{').next().unwrap();
            assert!(!name.is_empty(), "empty name: {line}");
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad name {name}: {line}"
            );
            assert!(!name.starts_with(|c: char| c.is_ascii_digit()));
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    let inner = rest
                        .strip_prefix('{')
                        .and_then(|r| r.strip_suffix('}'))
                        .unwrap_or_else(|| panic!("bad label block: {line}"));
                    for pair in inner.split(',') {
                        let (k, v) = pair.split_once('=').expect("label has =");
                        assert!(!k.is_empty());
                        assert!(v.starts_with('"') && v.ends_with('"'), "label {pair}");
                    }
                }
            }
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "bad value {value}: {line}"
            );
        }
    }

    #[test]
    fn prometheus_lines_are_wellformed_with_and_without_labels() {
        let mut r = MetricsRegistry::new();
        r.add("net.msgs_sent_total", 5);
        r.set("loop.trust_drift", 0.25);
        for i in 1..=50 {
            r.observe("stage.act.latency_s", i as f64 * 1e-4);
        }
        assert_prometheus_wellformed(&prometheus_text(&r));
        let labeled = prometheus_text_with_labels(&r, &[("fleet", "edge-a"), ("shard", "3")]);
        assert_prometheus_wellformed(&labeled);
        assert!(labeled.contains("net_msgs_sent_total{fleet=\"edge-a\",shard=\"3\"} 5"));
        assert!(labeled.contains("fleet=\"edge-a\",shard=\"3\",le=\"+Inf\""));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut r = MetricsRegistry::new();
        r.observe("h.latency_s", 1e-3);
        r.observe("h.latency_s", 1e-3);
        r.observe("h.latency_s", 1.0);
        let text = prometheus_text(&r);
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("h_latency_s_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        // Monotone non-decreasing, ending at the total count.
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "{cums:?}");
        assert_eq!(*cums.last().unwrap(), 3);
        assert_eq!(cums[0], 2, "first nonzero bucket holds the two 1e-3s");
    }

    #[test]
    fn ascii_histogram_renders_and_coalesces() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let art = ascii_histogram(&h, 8, 30);
        assert!(art.lines().count() <= 8, "{art}");
        assert!(art.contains('#'));
        // Every sample accounted for across rows.
        let total: u64 = art
            .lines()
            .filter_map(|l| {
                l.rsplit_once("  ")
                    .and_then(|(_, n)| n.trim().parse::<u64>().ok())
            })
            .sum();
        assert_eq!(total, 100);
        assert_eq!(
            ascii_histogram(&Histogram::new(), 8, 30),
            "  (no samples)\n"
        );
    }
}
