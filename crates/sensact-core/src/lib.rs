//! # sensact-core
//!
//! The paper's central abstraction: the **sensing-to-action loop** (§II).
//!
//! A loop iterates five stages against an environment:
//!
//! ```text
//!   environment ──► Sensor ──► Perceptor ──► Monitor ──► Controller ──► actuation
//!        ▲                                                     │
//!        └──────────────── action-to-sensing adaptation ◄──────┘
//! ```
//!
//! What makes the loop *intelligent* (and what distinguishes it from a
//! feed-forward sensing-to-insight pipeline) is the feedback edge: after each
//! decision an [`adapt::AdaptationPolicy`] may retune the sensor — rate,
//! resolution, modality, masking ratio — based on the action, the monitor's
//! trust verdict, and the remaining [`budget::EnergyBudget`].
//!
//! Every stage charges its energy and latency to a [`stage::StageContext`];
//! the per-tick ledger feeds the [`telemetry::LoopTelemetry`] that the
//! experiments report. [`multi`] extends the abstraction to coordinated
//! multi-agent loops (§VII), and [`fault`] makes stage failure a typed
//! runtime event with graceful-degradation policies (retry, last-good hold,
//! fail-safe fallback) plus a deterministic fault injector.
//!
//! The observability layer attributes cost per stage: [`trace`] provides
//! lightweight spans under a pluggable [`trace::Clock`] (deterministic
//! [`trace::SimClock`] for tests, monotonic [`trace::WallClock`] for
//! benches), [`metrics`] provides a hermetic [`metrics::MetricsRegistry`]
//! of counters, gauges and log-bucketed [`metrics::Histogram`]s, and
//! [`export`] serializes spans/ticks as round-trippable JSONL plus a
//! human-readable text report and a Prometheus text exposition. On top of
//! those, [`trace::FleetTracer`] collects *causally linked*
//! [`trace::CausalSpan`]s — deterministic trace/span ids derived from seeds
//! and structural indices — and [`health`] scores loop and fleet SLO state
//! (healthy/degraded/critical) with hysteresis.
//!
//! ## Example
//!
//! ```
//! use sensact_core::{LoopBuilder, StageContext, Trust,
//!                    stage::{FnSensor, FnPerceptor, FnController}};
//!
//! // A thermostat-style loop: sense a scalar, act to drive it to zero.
//! let mut env = 10.0f64;
//! let mut looop = LoopBuilder::new("thermostat")
//!     .build(
//!         FnSensor::new(|env: &f64, ctx: &mut StageContext| { ctx.charge(1e-6, 1e-4); *env }),
//!         FnPerceptor::new(|r: &f64, _ctx: &mut StageContext| *r),
//!         FnController::new(|f: &f64, _trust: Trust, _ctx: &mut StageContext| -0.5 * f),
//!     );
//! for _ in 0..32 {
//!     let out = looop.tick(&env);
//!     env += out.action;
//! }
//! assert!(env.abs() < 0.1);
//! ```

pub mod adapt;
pub mod budget;
pub mod checkpoint;
pub mod export;
pub mod fault;
pub mod health;
pub mod metrics;
pub mod multi;
pub mod precision;
pub mod replay;
pub mod stage;
pub mod telemetry;
pub mod trace;

mod loop_;

pub use budget::EnergyBudget;
pub use checkpoint::{
    Checkpoint, CheckpointError, Section, StageState, StateVec, CHECKPOINT_VERSION,
};
pub use fault::{
    FallibleLoop, FallibleOutput, FaultInjector, FaultProfile, RecoveryPolicy, Reliable,
    StageError, TickResolution, TryPerceptor, TrySensor, WithFallback,
};
pub use health::{FleetHealth, HealthPolicy, HealthScorer, HealthSignals, HealthStatus};
pub use loop_::{LoopBuilder, LoopOutput, SensingActionLoop};
pub use metrics::{Histogram, MetricsRegistry};
pub use precision::{Precision, PrecisionGovernor, PrecisionPolicy};
pub use replay::{first_divergence, Divergence, Recording, RecordingMeta};
pub use stage::{StageContext, Trust};
pub use telemetry::{CommCounters, FaultCounters, LoopTelemetry, TickRecord};
pub use trace::{
    CausalSpan, Clock, FleetTracer, SimClock, Span, SpanGuard, SpanKind, StageBreakdown, StageCost,
    StageId, TraceContext, Tracer, WallClock,
};
