//! Per-stage tracing for sensing-to-action loops.
//!
//! The paper's co-design argument (§II) needs *per-stage* visibility: a
//! blended energy/latency number per tick cannot tell whether the sensor or
//! the perceptor is eating the budget, which is exactly the breakdown
//! Fig. 5a and Table II report per model. This module provides:
//!
//! * [`StageId`] — the five canonical loop stages (sense → perceive →
//!   monitor → control → act), each with static metric names;
//! * [`StageBreakdown`] — a per-stage energy/latency ledger carried by every
//!   [`TickRecord`](crate::telemetry::TickRecord);
//! * [`Clock`] — a pluggable time source: deterministic [`SimClock`] for
//!   tests and reproducible exports, monotonic [`WallClock`] for benches;
//! * [`Span`] / [`SpanGuard`] / [`Tracer`] — lightweight spans wrapping each
//!   stage invocation, retained in a bounded ring buffer.
//!
//! Tracing is **off by default** ([`Tracer::disabled`]): the disabled path
//! costs one predictable branch per stage, bounded < 3 % of a realistic tick
//! by `benches/bench_obs.rs`. Per-stage energy/latency *attribution* (the
//! [`StageBreakdown`]) is always on — it only snapshots the
//! [`StageContext`](crate::stage::StageContext) ledger around each stage.

use std::sync::Mutex;
use std::time::Instant;

use crate::checkpoint::{Checkpoint, CheckpointError, Section, StageState};

/// The number of canonical loop stages ([`StageId::ALL`]).
pub const STAGE_COUNT: usize = 5;

/// One of the five canonical stages of a sensing-to-action loop.
///
/// `Act` covers the tail of the tick — budget consumption and the
/// action-to-sensing adaptation — rather than a physical actuator, which
/// lives outside the loop (the `apply` closure of `run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Raw acquisition ([`Sensor::sense`](crate::stage::Sensor::sense)).
    Sense,
    /// Feature extraction ([`Perceptor::perceive`](crate::stage::Perceptor::perceive)).
    Perceive,
    /// Trust assessment ([`Monitor::assess`](crate::stage::Monitor::assess)).
    Monitor,
    /// Action decision ([`Controller::decide`](crate::stage::Controller::decide)).
    Control,
    /// Budget consumption + action-to-sensing adaptation.
    Act,
}

impl StageId {
    /// All stages, in loop execution order.
    pub const ALL: [StageId; STAGE_COUNT] = [
        StageId::Sense,
        StageId::Perceive,
        StageId::Monitor,
        StageId::Control,
        StageId::Act,
    ];

    /// Stable index of this stage in [`StageId::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            StageId::Sense => 0,
            StageId::Perceive => 1,
            StageId::Monitor => 2,
            StageId::Control => 3,
            StageId::Act => 4,
        }
    }

    /// Short static name (`"sense"`, `"perceive"`, …) used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            StageId::Sense => "sense",
            StageId::Perceive => "perceive",
            StageId::Monitor => "monitor",
            StageId::Control => "control",
            StageId::Act => "act",
        }
    }

    /// Static metric key for this stage's latency histogram, following the
    /// `stage.<name>.<metric>_<unit>` naming convention.
    pub const fn latency_key(self) -> &'static str {
        match self {
            StageId::Sense => "stage.sense.latency_s",
            StageId::Perceive => "stage.perceive.latency_s",
            StageId::Monitor => "stage.monitor.latency_s",
            StageId::Control => "stage.control.latency_s",
            StageId::Act => "stage.act.latency_s",
        }
    }

    /// Static metric key for this stage's total energy gauge.
    pub const fn energy_key(self) -> &'static str {
        match self {
            StageId::Sense => "stage.sense.energy_j",
            StageId::Perceive => "stage.perceive.energy_j",
            StageId::Monitor => "stage.monitor.energy_j",
            StageId::Control => "stage.control.energy_j",
            StageId::Act => "stage.act.energy_j",
        }
    }

    /// Parse a stage from its [`StageId::name`].
    pub fn from_name(name: &str) -> Option<StageId> {
        StageId::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Energy/latency charged by one stage within one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageCost {
    /// Energy charged (joules).
    pub energy_j: f64,
    /// Latency charged (seconds).
    pub latency_s: f64,
}

/// Per-stage energy/latency attribution of one tick.
///
/// For fallible loops the sense/perceive entries include *failed* attempts
/// and retry surcharges — failure is charged where it happened.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    costs: [StageCost; STAGE_COUNT],
}

impl StageBreakdown {
    /// A zero breakdown.
    pub fn new() -> Self {
        StageBreakdown::default()
    }

    /// Cost attributed to `stage`.
    #[inline]
    pub fn get(&self, stage: StageId) -> StageCost {
        self.costs[stage.index()]
    }

    /// Add energy/latency to `stage` (accumulates across retries).
    #[inline]
    pub fn add(&mut self, stage: StageId, energy_j: f64, latency_s: f64) {
        let c = &mut self.costs[stage.index()];
        c.energy_j += energy_j;
        c.latency_s += latency_s;
    }

    /// Accumulate another breakdown stage-by-stage (running totals).
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (mine, theirs) in self.costs.iter_mut().zip(&other.costs) {
            mine.energy_j += theirs.energy_j;
            mine.latency_s += theirs.latency_s;
        }
    }

    /// Sum of per-stage energies (joules).
    pub fn total_energy_j(&self) -> f64 {
        self.costs.iter().map(|c| c.energy_j).sum()
    }

    /// Sum of per-stage latencies (seconds).
    pub fn total_latency_s(&self) -> f64 {
        self.costs.iter().map(|c| c.latency_s).sum()
    }

    /// Iterate `(stage, cost)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (StageId, StageCost)> + '_ {
        StageId::ALL.into_iter().map(|s| (s, self.get(s)))
    }
}

/// A pluggable monotonic time source for span timestamps.
///
/// `now_s` takes `&mut self` so deterministic clocks can advance per query.
pub trait Clock: std::fmt::Debug + Send {
    /// Current time in seconds since the clock's origin.
    fn now_s(&mut self) -> f64;
}

/// Deterministic simulation clock: every [`Clock::now_s`] query returns the
/// current time and advances it by a fixed step, so traces are bit-identical
/// across runs — the property the JSONL round-trip tests rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    now_s: f64,
    step_s: f64,
}

impl SimClock {
    /// A clock frozen at zero (advance manually via [`SimClock::advance`]).
    pub fn new() -> Self {
        SimClock::with_step(0.0)
    }

    /// A clock advancing by `step_s` seconds per query.
    pub fn with_step(step_s: f64) -> Self {
        SimClock { now_s: 0.0, step_s }
    }

    /// Manually advance the clock by `dt_s` seconds.
    pub fn advance(&mut self, dt_s: f64) {
        self.now_s += dt_s.max(0.0);
    }

    /// Read the current time *without* advancing it — unlike
    /// [`Clock::now_s`], which steps the clock per query. Event-driven
    /// runtimes use this to compare the clock against a pending event time
    /// before deciding how far to [`SimClock::advance`].
    pub fn peek_s(&self) -> f64 {
        self.now_s
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

impl Clock for SimClock {
    fn now_s(&mut self) -> f64 {
        let t = self.now_s;
        self.now_s += self.step_s;
        t
    }
}

/// Monotonic wall clock ([`std::time::Instant`]-based) for real timing.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock with its origin at construction time.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_s(&mut self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// One completed stage span: where a slice of the tick's time and cost went.
///
/// `start_s`/`end_s` come from the tracer's [`Clock`] (wall time when
/// tracing a real run, deterministic time under [`SimClock`]); `energy_j`
/// and `latency_s` are the *charged* costs from the stage ledger, which in
/// simulation are independent of wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Tick the span belongs to.
    pub tick: u64,
    /// Which stage ran.
    pub stage: StageId,
    /// Clock time when the stage started (seconds).
    pub start_s: f64,
    /// Clock time when the stage finished (seconds).
    pub end_s: f64,
    /// Energy the stage charged (joules).
    pub energy_j: f64,
    /// Latency the stage charged (seconds).
    pub latency_s: f64,
    /// Whether the stage succeeded (`false` for failed fallible attempts).
    pub ok: bool,
}

impl Span {
    /// Clock-observed duration of the span (seconds).
    pub fn wall_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Default number of spans retained by a tracer's ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 16384;

/// Collects per-stage [`Span`]s under a pluggable [`Clock`].
///
/// Loops own a tracer ([`Tracer::disabled`] by default). When disabled,
/// [`Tracer::start`]/[`Tracer::finish`] reduce to one predictable branch
/// each and no span is stored. Spans are retained in a bounded ring buffer;
/// aggregates belong to [`LoopTelemetry`](crate::telemetry::LoopTelemetry),
/// not the tracer.
#[derive(Debug)]
pub struct Tracer {
    clock: Option<Box<dyn Clock>>,
    spans: Vec<Span>,
    /// Oldest span's index once the ring is full.
    head: usize,
    capacity: usize,
    /// Coarse stamping: reuse the previous span's end as the next span's
    /// start, halving clock queries for back-to-back stages.
    coarse: bool,
    /// The last `finish` timestamp, pending reuse by the next `start`.
    pending_stamp: Option<f64>,
}

impl Tracer {
    /// A disabled tracer: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Tracer {
            clock: None,
            spans: Vec::new(),
            head: 0,
            capacity: DEFAULT_SPAN_CAPACITY,
            coarse: false,
            pending_stamp: None,
        }
    }

    /// An enabled tracer over an arbitrary clock.
    pub fn new(clock: Box<dyn Clock>) -> Self {
        Tracer {
            clock: Some(clock),
            spans: Vec::new(),
            head: 0,
            capacity: DEFAULT_SPAN_CAPACITY,
            coarse: false,
            pending_stamp: None,
        }
    }

    /// An enabled tracer over a deterministic [`SimClock`] advancing
    /// `step_s` per timestamp query (two queries per span).
    pub fn sim(step_s: f64) -> Self {
        Tracer::new(Box::new(SimClock::with_step(step_s)))
    }

    /// An enabled tracer over the monotonic [`WallClock`].
    ///
    /// Wall tracers default to *coarse stamping*: within a tick, each span's
    /// start reuses the previous span's end (stages run back-to-back, so the
    /// fencepost is truthful), cutting `Instant::now` queries per 5-stage
    /// tick from 10 to 6. Loops reset the pending stamp at tick entry via
    /// [`Tracer::new_tick`] so inter-tick gaps are never folded into the
    /// first stage. Opt out with [`Tracer::with_exact_stamps`].
    pub fn wall() -> Self {
        let mut t = Tracer::new(Box::new(WallClock::new()));
        t.coarse = true;
        t
    }

    /// Disable coarse stamping: every span start queries the clock.
    pub fn with_exact_stamps(mut self) -> Self {
        self.coarse = false;
        self.pending_stamp = None;
        self
    }

    /// Enable coarse stamping over any clock (see [`Tracer::wall`]).
    pub fn with_coarse_stamps(mut self) -> Self {
        self.coarse = true;
        self
    }

    /// Cap the number of retained spans (clamped to ≥ 1).
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.clock.is_some()
    }

    /// Timestamp the start of a stage; returns `0.0` when disabled.
    ///
    /// Under coarse stamping a pending end-of-previous-span stamp is reused
    /// instead of querying the clock (see [`Tracer::wall`]).
    #[inline]
    pub fn start(&mut self) -> f64 {
        if let Some(s) = self.pending_stamp.take() {
            return s;
        }
        match &mut self.clock {
            Some(c) => c.now_s(),
            None => 0.0,
        }
    }

    /// Mark a tick boundary: drops any pending coarse stamp so the gap
    /// between ticks (telemetry recording, action application) is never
    /// folded into the next tick's first stage. No-op for exact tracers.
    #[inline]
    pub fn new_tick(&mut self) {
        self.pending_stamp = None;
    }

    /// Close a stage span opened at `start_s`, attributing the charged
    /// costs. No-op when disabled.
    #[inline]
    pub fn finish(
        &mut self,
        tick: u64,
        stage: StageId,
        start_s: f64,
        energy_j: f64,
        latency_s: f64,
        ok: bool,
    ) {
        let Some(clock) = &mut self.clock else {
            return;
        };
        let end_s = clock.now_s();
        if self.coarse {
            self.pending_stamp = Some(end_s);
        }
        self.push(Span {
            tick,
            stage,
            start_s,
            end_s,
            energy_j,
            latency_s,
            ok,
        });
    }

    fn push(&mut self, span: Span) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Open an RAII span; it records itself on drop. Set the charged costs
    /// via [`SpanGuard::set_cost`] before dropping.
    pub fn span(&mut self, tick: u64, stage: StageId) -> SpanGuard<'_> {
        let start_s = self.start();
        SpanGuard {
            tracer: self,
            tick,
            stage,
            start_s,
            energy_j: 0.0,
            latency_s: 0.0,
            ok: true,
        }
    }

    /// Retained spans, oldest first (at most the configured capacity).
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        let (wrapped, ordered) = self.spans.split_at(self.head);
        ordered.iter().chain(wrapped.iter())
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drain all retained spans in chronological order.
    pub fn take_spans(&mut self) -> Vec<Span> {
        let out: Vec<Span> = self.spans().copied().collect();
        self.spans.clear();
        self.head = 0;
        out
    }

    /// Drop all retained spans.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.head = 0;
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl StageState for Tracer {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        let mut s = Section::new(ns);
        // The clock is a trait object and stays with the constructed
        // instance (a restored wall tracer re-times from its own origin;
        // replay conformance compares telemetry, which carries the charged
        // costs, not tracer timestamps). The span ring and the pending
        // coarse stamp are the mutable state.
        s.put_u64("capacity", self.capacity as u64);
        s.put_bool("pending_some", self.pending_stamp.is_some());
        s.put_f64("pending", self.pending_stamp.unwrap_or(0.0));
        let spans: Vec<&Span> = self.spans().collect();
        s.put_u64s("sp_tick", &spans.iter().map(|x| x.tick).collect::<Vec<_>>());
        s.put_u64s(
            "sp_stage",
            &spans
                .iter()
                .map(|x| x.stage.index() as u64)
                .collect::<Vec<_>>(),
        );
        s.put_f64s(
            "sp_start",
            &spans.iter().map(|x| x.start_s).collect::<Vec<_>>(),
        );
        s.put_f64s("sp_end", &spans.iter().map(|x| x.end_s).collect::<Vec<_>>());
        s.put_f64s(
            "sp_energy",
            &spans.iter().map(|x| x.energy_j).collect::<Vec<_>>(),
        );
        s.put_f64s(
            "sp_latency",
            &spans.iter().map(|x| x.latency_s).collect::<Vec<_>>(),
        );
        s.put_u64s(
            "sp_ok",
            &spans.iter().map(|x| x.ok as u64).collect::<Vec<_>>(),
        );
        ckpt.push(s);
    }

    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        let s = ckpt.section(ns)?;
        let bad = |key: &str| CheckpointError::BadValue(format!("{ns}.{key}"));
        self.capacity = (s.get_u64("capacity")? as usize).max(1);
        self.pending_stamp = if s.get_bool("pending_some")? {
            Some(s.get_f64("pending")?)
        } else {
            None
        };
        let ticks = s.get_u64s("sp_tick")?;
        let stages = s.get_u64s("sp_stage")?;
        let starts = s.get_f64s("sp_start")?;
        let ends = s.get_f64s("sp_end")?;
        let energies = s.get_f64s("sp_energy")?;
        let latencies = s.get_f64s("sp_latency")?;
        let oks = s.get_u64s("sp_ok")?;
        let n = ticks.len();
        if n > self.capacity
            || [
                stages.len(),
                starts.len(),
                ends.len(),
                energies.len(),
                latencies.len(),
                oks.len(),
            ]
            .iter()
            .any(|&l| l != n)
        {
            return Err(bad("sp_tick"));
        }
        // Chronological rebuild with head = 0: the wire form is canonical,
        // so a ring snapshotted at its wrap boundary restores in order.
        self.spans.clear();
        self.head = 0;
        for i in 0..n {
            let stage = *StageId::ALL
                .get(stages[i] as usize)
                .ok_or_else(|| bad("sp_stage"))?;
            self.spans.push(Span {
                tick: ticks[i],
                stage,
                start_s: starts[i],
                end_s: ends[i],
                energy_j: energies[i],
                latency_s: latencies[i],
                ok: oks[i] != 0,
            });
        }
        Ok(())
    }
}

/// RAII guard created by [`Tracer::span`]; records the span when dropped.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    tracer: &'t mut Tracer,
    tick: u64,
    stage: StageId,
    start_s: f64,
    energy_j: f64,
    latency_s: f64,
    ok: bool,
}

impl SpanGuard<'_> {
    /// Attribute charged energy/latency to this span (replaces, not adds).
    pub fn set_cost(&mut self, energy_j: f64, latency_s: f64) {
        self.energy_j = energy_j;
        self.latency_s = latency_s;
    }

    /// Mark the span as a failed attempt.
    pub fn set_failed(&mut self) {
        self.ok = false;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.finish(
            self.tick,
            self.stage,
            self.start_s,
            self.energy_j,
            self.latency_s,
            self.ok,
        );
    }
}

// ---------------------------------------------------------------------------
// Causal fleet tracing
// ---------------------------------------------------------------------------

/// Mix a seed with structural indices into a deterministic 64-bit id
/// (SplitMix64 finalizer per part — the same generator family the network
/// simulator draws from). Never returns 0, so 0 stays reserved as the
/// "no parent" sentinel of [`CausalSpan::parent_id`].
///
/// Trace and span ids are *pure functions* of seeds and loop/message
/// indices — no global counters, no wall entropy — so any participant can
/// derive the id of a span another participant will emit, and traces
/// reproduce bit-for-bit from the seeds.
pub fn trace_mix(seed: u64, parts: &[u64]) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = seed ^ GOLDEN;
    for &p in parts {
        h = h.wrapping_add(p).wrapping_add(GOLDEN);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    if h == 0 {
        GOLDEN
    } else {
        h
    }
}

/// A causal trace context: which trace a span belongs to, its own id, and
/// its parent's id (0 for a root span).
///
/// Contexts are derived with [`trace_mix`], never allocated from counters,
/// so they can be re-derived anywhere the structural indices are known —
/// the property that lets a network message "carry" its context without
/// serialising it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceContext {
    /// Trace this span belongs to (e.g. one federated round).
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span's id; 0 marks a trace root.
    pub parent_id: u64,
}

impl TraceContext {
    /// A root context for `trace_id` whose span id is derived from `parts`.
    pub fn root(trace_id: u64, parts: &[u64]) -> Self {
        TraceContext {
            trace_id,
            span_id: trace_mix(trace_id, parts),
            parent_id: 0,
        }
    }

    /// A child context of `self` whose span id is derived from `parts`.
    pub fn child(&self, parts: &[u64]) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: trace_mix(self.span_id, parts),
            parent_id: self.span_id,
        }
    }
}

/// What a [`CausalSpan`] covers in the sensing-to-action fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A scheduler release executing on a (virtual) worker.
    SchedTick,
    /// The communication tail after a release's busy time.
    CommTail,
    /// A federated client's local tick that produced an upload.
    ClientTick,
    /// A network message entering the link (first attempt).
    NetSend,
    /// A retransmission attempt after loss.
    NetRetry,
    /// The message arriving at its destination.
    NetDeliver,
    /// The message abandoned (partition or retry budget exhausted).
    NetDrop,
    /// A federated round, cutoff to cutoff (trace root).
    Round,
    /// The server folding delivered updates at a round cutoff.
    ServerAggregate,
    /// The server's model broadcast travelling to one client.
    Broadcast,
    /// A client adopting a broadcast model version.
    Adopt,
    /// A health scorer state transition (node = loop, or fleet root).
    Health,
}

impl SpanKind {
    /// All kinds, in pipeline order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::SchedTick,
        SpanKind::CommTail,
        SpanKind::ClientTick,
        SpanKind::NetSend,
        SpanKind::NetRetry,
        SpanKind::NetDeliver,
        SpanKind::NetDrop,
        SpanKind::Round,
        SpanKind::ServerAggregate,
        SpanKind::Broadcast,
        SpanKind::Adopt,
        SpanKind::Health,
    ];

    /// Short static name used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::SchedTick => "sched_tick",
            SpanKind::CommTail => "comm_tail",
            SpanKind::ClientTick => "client_tick",
            SpanKind::NetSend => "net_send",
            SpanKind::NetRetry => "net_retry",
            SpanKind::NetDeliver => "net_deliver",
            SpanKind::NetDrop => "net_drop",
            SpanKind::Round => "round",
            SpanKind::ServerAggregate => "server_aggregate",
            SpanKind::Broadcast => "broadcast",
            SpanKind::Adopt => "adopt",
            SpanKind::Health => "health",
        }
    }

    /// Parse a kind from its [`SpanKind::name`].
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Stable tag mixed into span-id derivations (distinct per kind).
    pub const fn tag(self) -> u64 {
        match self {
            SpanKind::SchedTick => 0x51,
            SpanKind::CommTail => 0x52,
            SpanKind::ClientTick => 0x53,
            SpanKind::NetSend => 0x54,
            SpanKind::NetRetry => 0x55,
            SpanKind::NetDeliver => 0x56,
            SpanKind::NetDrop => 0x57,
            SpanKind::Round => 0x58,
            SpanKind::ServerAggregate => 0x59,
            SpanKind::Broadcast => 0x5A,
            SpanKind::Adopt => 0x5B,
            SpanKind::Health => 0x5C,
        }
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One causally-linked span of fleet activity.
///
/// Unlike the per-stage [`Span`], a causal span carries its parentage, so a
/// set of spans sharing a `trace_id` reconstructs as a tree: client tick →
/// upload → server aggregation → broadcast → adoption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CausalSpan {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span's id; 0 marks a trace root.
    pub parent_id: u64,
    /// What the span covers.
    pub kind: SpanKind,
    /// The node it happened on (loop/client index, or the server id).
    pub node: u64,
    /// Kind-specific payload: attempt index for retries, model version for
    /// broadcast/adopt, encoded state pair for health transitions, 0 otherwise.
    pub detail: u64,
    /// Simulated (or wall) time the span started (seconds).
    pub start_s: f64,
    /// Simulated (or wall) time the span ended (seconds).
    pub end_s: f64,
    /// Whether the spanned work succeeded (`false` for drops and misses).
    pub ok: bool,
}

impl CausalSpan {
    /// The context this span defines for its children.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
        }
    }
}

/// Default number of causal spans retained by a [`FleetTracer`].
pub const DEFAULT_CAUSAL_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct CausalRing {
    spans: Vec<CausalSpan>,
    head: usize,
    capacity: usize,
    recorded: u64,
}

/// A shared, bounded collector of [`CausalSpan`]s for a whole fleet.
///
/// Disabled by default ([`FleetTracer::disabled`]): the disabled path is one
/// predictable branch, no lock. When enabled, recording takes a mutex —
/// under the deterministic single-threaded scheduler this is uncontended,
/// and span order (hence the exported JSONL stream) is reproducible
/// bit-for-bit from the seeds.
#[derive(Debug)]
pub struct FleetTracer {
    enabled: bool,
    inner: Mutex<CausalRing>,
}

impl FleetTracer {
    /// A disabled tracer: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        FleetTracer {
            enabled: false,
            inner: Mutex::new(CausalRing {
                spans: Vec::new(),
                head: 0,
                capacity: DEFAULT_CAUSAL_CAPACITY,
                recorded: 0,
            }),
        }
    }

    /// An enabled tracer with the default span capacity.
    pub fn new() -> Self {
        FleetTracer::with_capacity(DEFAULT_CAUSAL_CAPACITY)
    }

    /// An enabled tracer retaining at most `capacity` spans (clamped ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FleetTracer {
            enabled: true,
            inner: Mutex::new(CausalRing {
                spans: Vec::new(),
                head: 0,
                capacity: capacity.max(1),
                recorded: 0,
            }),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CausalRing> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a span. No-op when disabled.
    #[inline]
    pub fn record(&self, span: CausalSpan) {
        if !self.enabled {
            return;
        }
        let mut ring = self.lock();
        ring.recorded += 1;
        if ring.spans.len() < ring.capacity {
            ring.spans.push(span);
        } else {
            let head = ring.head;
            ring.spans[head] = span;
            ring.head = (head + 1) % ring.capacity;
        }
    }

    /// Number of retained spans (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spans ever recorded (including any evicted by the ring).
    pub fn recorded(&self) -> u64 {
        self.lock().recorded
    }

    /// Snapshot the retained spans, oldest first.
    pub fn spans(&self) -> Vec<CausalSpan> {
        let ring = self.lock();
        let (wrapped, ordered) = ring.spans.split_at(ring.head);
        ordered.iter().chain(wrapped.iter()).copied().collect()
    }

    /// Drain all retained spans in chronological order.
    pub fn take_spans(&self) -> Vec<CausalSpan> {
        let mut ring = self.lock();
        let (wrapped, ordered) = ring.spans.split_at(ring.head);
        let out: Vec<CausalSpan> = ordered.iter().chain(wrapped.iter()).copied().collect();
        ring.spans.clear();
        ring.head = 0;
        out
    }

    /// Drop all retained spans (keeps the recorded total).
    pub fn clear(&self) {
        let mut ring = self.lock();
        ring.spans.clear();
        ring.head = 0;
    }
}

impl Default for FleetTracer {
    fn default() -> Self {
        FleetTracer::disabled()
    }
}

impl StageState for FleetTracer {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        let mut s = Section::new(ns);
        let ring = self.lock();
        s.put_u64("capacity", ring.capacity as u64);
        s.put_u64("recorded", ring.recorded);
        let (wrapped, ordered) = ring.spans.split_at(ring.head);
        let spans: Vec<&CausalSpan> = ordered.iter().chain(wrapped.iter()).collect();
        s.put_u64s(
            "cs_trace",
            &spans.iter().map(|x| x.trace_id).collect::<Vec<_>>(),
        );
        s.put_u64s(
            "cs_span",
            &spans.iter().map(|x| x.span_id).collect::<Vec<_>>(),
        );
        s.put_u64s(
            "cs_parent",
            &spans.iter().map(|x| x.parent_id).collect::<Vec<_>>(),
        );
        s.put_u64s(
            "cs_kind",
            &spans.iter().map(|x| x.kind.tag()).collect::<Vec<_>>(),
        );
        s.put_u64s("cs_node", &spans.iter().map(|x| x.node).collect::<Vec<_>>());
        s.put_u64s(
            "cs_detail",
            &spans.iter().map(|x| x.detail).collect::<Vec<_>>(),
        );
        s.put_f64s(
            "cs_start",
            &spans.iter().map(|x| x.start_s).collect::<Vec<_>>(),
        );
        s.put_f64s("cs_end", &spans.iter().map(|x| x.end_s).collect::<Vec<_>>());
        s.put_u64s(
            "cs_ok",
            &spans.iter().map(|x| x.ok as u64).collect::<Vec<_>>(),
        );
        ckpt.push(s);
    }

    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        let s = ckpt.section(ns)?;
        let bad = |key: &str| CheckpointError::BadValue(format!("{ns}.{key}"));
        let traces = s.get_u64s("cs_trace")?;
        let span_ids = s.get_u64s("cs_span")?;
        let parents = s.get_u64s("cs_parent")?;
        let kinds = s.get_u64s("cs_kind")?;
        let nodes = s.get_u64s("cs_node")?;
        let details = s.get_u64s("cs_detail")?;
        let starts = s.get_f64s("cs_start")?;
        let ends = s.get_f64s("cs_end")?;
        let oks = s.get_u64s("cs_ok")?;
        let capacity = (s.get_u64("capacity")? as usize).max(1);
        let n = traces.len();
        if n > capacity
            || [
                span_ids.len(),
                parents.len(),
                kinds.len(),
                nodes.len(),
                details.len(),
                starts.len(),
                ends.len(),
                oks.len(),
            ]
            .iter()
            .any(|&l| l != n)
        {
            return Err(bad("cs_trace"));
        }
        let mut spans = Vec::with_capacity(n);
        for i in 0..n {
            let kind = SpanKind::ALL
                .into_iter()
                .find(|k| k.tag() == kinds[i])
                .ok_or_else(|| bad("cs_kind"))?;
            spans.push(CausalSpan {
                trace_id: traces[i],
                span_id: span_ids[i],
                parent_id: parents[i],
                kind,
                node: nodes[i],
                detail: details[i],
                start_s: starts[i],
                end_s: ends[i],
                ok: oks[i] != 0,
            });
        }
        let recorded = s.get_u64("recorded")?;
        let mut ring = self.lock();
        ring.capacity = capacity;
        ring.recorded = recorded;
        ring.spans = spans;
        ring.head = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in StageId::ALL {
            assert_eq!(StageId::from_name(stage.name()), Some(stage));
            assert_eq!(stage.to_string(), stage.name());
            assert!(stage.latency_key().contains(stage.name()));
            assert!(stage.energy_key().contains(stage.name()));
        }
        assert_eq!(StageId::from_name("warp"), None);
        assert_eq!(StageId::ALL[StageId::Control.index()], StageId::Control);
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = StageBreakdown::new();
        b.add(StageId::Sense, 1e-3, 1e-4);
        b.add(StageId::Sense, 1e-3, 1e-4); // retry accumulates
        b.add(StageId::Control, 2e-3, 0.0);
        assert_eq!(b.get(StageId::Sense).energy_j, 2e-3);
        assert_eq!(b.get(StageId::Perceive), StageCost::default());
        assert!((b.total_energy_j() - 4e-3).abs() < 1e-15);
        assert!((b.total_latency_s() - 2e-4).abs() < 1e-15);
        let mut sum = StageBreakdown::new();
        sum.merge(&b);
        sum.merge(&b);
        assert_eq!(sum.get(StageId::Sense).energy_j, 4e-3);
        assert_eq!(sum.iter().count(), STAGE_COUNT);
    }

    #[test]
    fn sim_clock_is_deterministic() {
        let mut c = SimClock::with_step(0.5);
        assert_eq!(c.now_s(), 0.0);
        assert_eq!(c.now_s(), 0.5);
        c.advance(1.0);
        assert_eq!(c.now_s(), 2.0);
        // Negative advances are ignored — the clock is monotonic.
        c.advance(-5.0);
        assert_eq!(c.now_s(), 2.5);
    }

    #[test]
    fn sim_clock_peek_does_not_advance() {
        let mut c = SimClock::with_step(1.0);
        assert_eq!(c.peek_s(), 0.0);
        assert_eq!(c.peek_s(), 0.0);
        let _ = c.now_s();
        assert_eq!(c.peek_s(), 1.0);
        c.advance(2.5);
        assert_eq!(c.peek_s(), 3.5);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let mut c = WallClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        let s = t.start();
        t.finish(0, StageId::Sense, s, 1.0, 1.0, true);
        assert!(t.is_empty());
        assert_eq!(t.take_spans().len(), 0);
    }

    #[test]
    fn tracer_checkpoint_round_trips_span_ring() {
        use crate::checkpoint::Checkpoint;
        let mut t = Tracer::sim(0.25).with_span_capacity(4);
        for tick in 0..7u64 {
            let s = t.start();
            t.finish(
                tick,
                StageId::ALL[(tick % 5) as usize],
                s,
                1e-3 * tick as f64,
                1e-4,
                tick % 2 == 0,
            );
        }
        let mut ckpt = Checkpoint::new("t");
        t.save_state(&mut ckpt, "tracer");
        let ckpt = Checkpoint::from_jsonl(&ckpt.to_jsonl()).expect("parses");
        let mut back = Tracer::sim(0.25).with_span_capacity(4);
        back.restore_state(&ckpt, "tracer").expect("restores");
        let a: Vec<Span> = t.spans().copied().collect();
        let b: Vec<Span> = back.spans().copied().collect();
        assert_eq!(a, b, "span ring must round-trip in chronological order");
        assert_eq!(a.first().unwrap().tick, 3, "oldest retained span");
        // The restored ring keeps evicting oldest-first.
        let s = back.start();
        back.finish(99, StageId::Sense, s, 0.0, 0.0, true);
        assert_eq!(back.spans().next().unwrap().tick, 4);
    }

    #[test]
    fn fleet_tracer_checkpoint_round_trips_causal_ring() {
        use crate::checkpoint::Checkpoint;
        let t = FleetTracer::with_capacity(5);
        let root = TraceContext::root(7, &[1]);
        for i in 0..8u64 {
            t.record(CausalSpan {
                trace_id: root.trace_id,
                span_id: trace_mix(root.span_id, &[i]),
                parent_id: root.span_id,
                kind: SpanKind::ALL[(i % 12) as usize],
                node: i,
                detail: i * 10,
                start_s: i as f64,
                end_s: i as f64 + 0.5,
                ok: i % 3 != 0,
            });
        }
        let mut ckpt = Checkpoint::new("ft");
        t.save_state(&mut ckpt, "fleet_tracer");
        let ckpt = Checkpoint::from_jsonl(&ckpt.to_jsonl()).expect("parses");
        let mut back = FleetTracer::with_capacity(5);
        back.restore_state(&ckpt, "fleet_tracer").expect("restores");
        assert_eq!(back.spans(), t.spans(), "causal ring order/content");
        assert_eq!(back.recorded(), 8, "total recorded survives eviction");
        // The restored ring keeps the same eviction behaviour.
        let next = CausalSpan {
            trace_id: 7,
            span_id: 1,
            parent_id: 0,
            kind: SpanKind::Health,
            node: 0,
            detail: 0,
            start_s: 9.0,
            end_s: 9.0,
            ok: true,
        };
        t.record(next);
        back.record(next);
        assert_eq!(back.spans(), t.spans());
    }

    #[test]
    fn spans_carry_cost_and_clock_time() {
        let mut t = Tracer::sim(0.25);
        let s = t.start();
        t.finish(3, StageId::Perceive, s, 2e-3, 1e-3, true);
        assert_eq!(t.len(), 1);
        let span = *t.spans().next().unwrap();
        assert_eq!(span.tick, 3);
        assert_eq!(span.stage, StageId::Perceive);
        assert_eq!(span.start_s, 0.0);
        assert_eq!(span.end_s, 0.25);
        assert_eq!(span.wall_s(), 0.25);
        assert_eq!(span.energy_j, 2e-3);
        assert!(span.ok);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let mut t = Tracer::sim(0.1);
        {
            let mut g = t.span(7, StageId::Monitor);
            g.set_cost(1e-6, 2e-6);
            g.set_failed();
        }
        let span = *t.spans().next().unwrap();
        assert_eq!(span.tick, 7);
        assert_eq!(span.stage, StageId::Monitor);
        assert!(!span.ok);
        assert_eq!(span.latency_s, 2e-6);
    }

    #[test]
    fn coarse_stamping_reuses_previous_end() {
        // SimClock advances 1.0 per query; with coarse stamps the second
        // span's start must *reuse* the first span's end (no query).
        let mut t = Tracer::sim(1.0).with_coarse_stamps();
        let s0 = t.start(); // query: 0.0 (clock -> 1.0)
        t.finish(0, StageId::Sense, s0, 0.0, 0.0, true); // query: 1.0 (clock -> 2.0)
        let s1 = t.start(); // reused: 1.0, no query
        t.finish(0, StageId::Perceive, s1, 0.0, 0.0, true); // query: 2.0
        let spans: Vec<Span> = t.spans().copied().collect();
        assert_eq!(spans[0].end_s, 1.0);
        assert_eq!(spans[1].start_s, 1.0, "start must reuse previous end");
        assert_eq!(spans[1].end_s, 2.0);
    }

    #[test]
    fn new_tick_drops_pending_coarse_stamp() {
        let mut t = Tracer::sim(1.0).with_coarse_stamps();
        let s0 = t.start();
        t.finish(0, StageId::Act, s0, 0.0, 0.0, true); // pending = 1.0
        t.new_tick();
        let s1 = t.start(); // fresh query: 2.0
        assert_eq!(s1, 2.0, "tick boundary must re-query the clock");
        // Exact mode never leaves a pending stamp.
        let mut exact = Tracer::sim(1.0).with_coarse_stamps().with_exact_stamps();
        let s = exact.start();
        exact.finish(0, StageId::Sense, s, 0.0, 0.0, true);
        assert_eq!(exact.start(), 2.0);
    }

    #[test]
    fn wall_tracer_is_coarse_by_default() {
        let mut t = Tracer::wall();
        let s0 = t.start();
        t.finish(0, StageId::Sense, s0, 0.0, 0.0, true);
        let s1 = t.start();
        t.finish(0, StageId::Perceive, s1, 0.0, 0.0, true);
        let spans: Vec<Span> = t.spans().copied().collect();
        assert_eq!(
            spans[1].start_s, spans[0].end_s,
            "wall spans are contiguous under coarse stamping"
        );
    }

    #[test]
    fn span_ring_keeps_most_recent_in_order() {
        let mut t = Tracer::sim(1.0).with_span_capacity(4);
        for i in 0..10u64 {
            let s = t.start();
            t.finish(i, StageId::Sense, s, 0.0, 0.0, true);
        }
        let ticks: Vec<u64> = t.spans().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
        let drained = t.take_spans();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].tick, 6);
        assert!(t.is_empty());
    }

    #[test]
    fn trace_mix_is_deterministic_and_nonzero() {
        assert_eq!(trace_mix(7, &[1, 2, 3]), trace_mix(7, &[1, 2, 3]));
        assert_ne!(trace_mix(7, &[1, 2, 3]), trace_mix(8, &[1, 2, 3]));
        assert_ne!(trace_mix(7, &[1, 2, 3]), trace_mix(7, &[1, 3, 2]));
        assert_ne!(trace_mix(7, &[]), 0);
        // A large sweep never yields the reserved 0 id.
        for i in 0..10_000u64 {
            assert_ne!(trace_mix(i, &[i ^ 0xABCD, i << 3]), 0);
        }
    }

    #[test]
    fn trace_context_parentage_links() {
        let root = TraceContext::root(42, &[SpanKind::Round.tag(), 0]);
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.trace_id, 42);
        let child = root.child(&[SpanKind::ClientTick.tag(), 5]);
        assert_eq!(child.trace_id, 42);
        assert_eq!(child.parent_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        // Re-derivation from the same indices reproduces the same context —
        // the property that lets messages carry contexts without bytes.
        assert_eq!(child, root.child(&[SpanKind::ClientTick.tag(), 5]));
    }

    #[test]
    fn span_kind_names_and_tags_are_distinct() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(SpanKind::from_name("warp"), None);
        let mut tags: Vec<u64> = SpanKind::ALL.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), SpanKind::ALL.len(), "tags must be unique");
    }

    fn causal(tick: u64) -> CausalSpan {
        CausalSpan {
            trace_id: 1,
            span_id: trace_mix(1, &[tick]),
            parent_id: 0,
            kind: SpanKind::SchedTick,
            node: tick,
            detail: 0,
            start_s: tick as f64,
            end_s: tick as f64 + 0.5,
            ok: true,
        }
    }

    #[test]
    fn disabled_fleet_tracer_records_nothing() {
        let t = FleetTracer::disabled();
        assert!(!t.is_enabled());
        t.record(causal(0));
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn fleet_tracer_ring_keeps_most_recent() {
        let t = FleetTracer::with_capacity(4);
        assert!(t.is_enabled());
        for i in 0..10 {
            t.record(causal(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.recorded(), 10);
        let nodes: Vec<u64> = t.spans().iter().map(|s| s.node).collect();
        assert_eq!(nodes, vec![6, 7, 8, 9]);
        let drained = t.take_spans();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].node, 6);
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 10, "drain keeps the lifetime total");
    }

    #[test]
    fn causal_span_context_projects_ids() {
        let s = causal(3);
        let ctx = s.context();
        assert_eq!(ctx.trace_id, s.trace_id);
        assert_eq!(ctx.span_id, s.span_id);
        assert_eq!(ctx.parent_id, 0);
    }
}
