//! Action-to-sensing adaptation policies (paper §IV).
//!
//! The reverse pathway of the loop: after each decision, a policy may retune
//! the sensor. The policies here operate through the [`SensingKnobs`] trait —
//! normalized rate/resolution knobs in `[0, 1]` that concrete sensors map to
//! duty cycle, masking ratio, beam count, etc.

use crate::budget::EnergyBudget;
use crate::stage::Trust;

/// Normalized tuning knobs a sensor exposes to adaptation policies.
pub trait SensingKnobs {
    /// Current sensing rate in `[0, 1]` (1 = full duty cycle).
    fn rate(&self) -> f64;
    /// Set the sensing rate; implementations clamp to `[0, 1]`.
    fn set_rate(&mut self, rate: f64);
    /// Current resolution in `[0, 1]` (1 = full resolution).
    fn resolution(&self) -> f64;
    /// Set the resolution; implementations clamp to `[0, 1]`.
    fn set_resolution(&mut self, resolution: f64);
}

/// A policy that retunes the sensor after each control decision.
pub trait AdaptationPolicy<S, A> {
    /// Adjust `sensor` given the last action, the monitor verdict and budget
    /// state.
    fn adapt(&mut self, sensor: &mut S, action: &A, trust: Trust, budget: &EnergyBudget);
}

/// The identity policy: no adaptation (plain feed-forward loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAdaptation;

impl<S, A> AdaptationPolicy<S, A> for NoAdaptation {
    fn adapt(&mut self, _s: &mut S, _a: &A, _t: Trust, _b: &EnergyBudget) {}
}

/// Rate adaptation driven by action magnitude (the paper's "adjust sampling
/// rates in response to environmental changes"):
///
/// * large actions → the scene is dynamic → raise the rate toward 1;
/// * small actions → steady state → decay the rate toward `idle_rate`;
/// * distrusted sensing → raise the rate (gather more evidence);
/// * budget pressure scales the ceiling down.
#[derive(Debug, Clone, Copy)]
pub struct ActionMagnitudeRate {
    /// Action magnitude treated as "fully dynamic" (maps to rate 1).
    pub saturation: f64,
    /// Rate floor when the environment is quiet.
    pub idle_rate: f64,
    /// Exponential smoothing factor in `(0, 1]` (1 = jump immediately).
    pub gain: f64,
}

impl Default for ActionMagnitudeRate {
    fn default() -> Self {
        ActionMagnitudeRate {
            saturation: 1.0,
            idle_rate: 0.1,
            gain: 0.5,
        }
    }
}

/// Actions that expose a magnitude for rate adaptation.
pub trait ActionMagnitude {
    /// Non-negative size of the action.
    fn magnitude(&self) -> f64;
}

impl ActionMagnitude for f64 {
    fn magnitude(&self) -> f64 {
        self.abs()
    }
}

impl ActionMagnitude for Vec<f64> {
    fn magnitude(&self) -> f64 {
        self.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl<S: SensingKnobs, A: ActionMagnitude> AdaptationPolicy<S, A> for ActionMagnitudeRate {
    fn adapt(&mut self, sensor: &mut S, action: &A, trust: Trust, budget: &EnergyBudget) {
        let dynamism = (action.magnitude() / self.saturation).clamp(0.0, 1.0);
        let evidence_need = trust.suspicion();
        let mut target = self.idle_rate.max(dynamism.max(evidence_need));
        // Budget pressure lowers the ceiling linearly down to the idle rate.
        let ceiling = 1.0 - (1.0 - self.idle_rate) * budget.pressure();
        target = target.min(ceiling);
        let new_rate = sensor.rate() + self.gain * (target - sensor.rate());
        sensor.set_rate(new_rate);
    }
}

/// Resolution adaptation tied to trust: degrade resolution while the stream
/// is clean (save energy), restore it when the monitor gets suspicious.
#[derive(Debug, Clone, Copy)]
pub struct TrustDrivenResolution {
    /// Resolution used while fully trusted.
    pub relaxed: f64,
    /// Smoothing gain in `(0, 1]`.
    pub gain: f64,
}

impl Default for TrustDrivenResolution {
    fn default() -> Self {
        TrustDrivenResolution {
            relaxed: 0.5,
            gain: 0.6,
        }
    }
}

impl<S: SensingKnobs, A> AdaptationPolicy<S, A> for TrustDrivenResolution {
    fn adapt(&mut self, sensor: &mut S, _action: &A, trust: Trust, _budget: &EnergyBudget) {
        let target = self.relaxed + (1.0 - self.relaxed) * trust.suspicion();
        let new_res = sensor.resolution() + self.gain * (target - sensor.resolution());
        sensor.set_resolution(new_res);
    }
}

/// Compose two policies, applied in order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Both<P1, P2>(pub P1, pub P2);

impl<S, A, P1: AdaptationPolicy<S, A>, P2: AdaptationPolicy<S, A>> AdaptationPolicy<S, A>
    for Both<P1, P2>
{
    fn adapt(&mut self, sensor: &mut S, action: &A, trust: Trust, budget: &EnergyBudget) {
        self.0.adapt(sensor, action, trust, budget);
        self.1.adapt(sensor, action, trust, budget);
    }
}

// All shipped adaptation policies are pure configuration (the mutable knobs
// live in the sensor they steer), so they checkpoint with the no-op
// defaults. `Both` recurses so a future stateful member still participates.
impl crate::checkpoint::StageState for NoAdaptation {}
impl crate::checkpoint::StageState for ActionMagnitudeRate {}
impl crate::checkpoint::StageState for TrustDrivenResolution {}

impl<P1: crate::checkpoint::StageState, P2: crate::checkpoint::StageState>
    crate::checkpoint::StageState for Both<P1, P2>
{
    fn save_state(&self, ckpt: &mut crate::checkpoint::Checkpoint, ns: &str) {
        self.0.save_state(ckpt, &format!("{ns}.0"));
        self.1.save_state(ckpt, &format!("{ns}.1"));
    }

    fn restore_state(
        &mut self,
        ckpt: &crate::checkpoint::Checkpoint,
        ns: &str,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        self.0.restore_state(ckpt, &format!("{ns}.0"))?;
        self.1.restore_state(ckpt, &format!("{ns}.1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct KnobSensor {
        rate: f64,
        resolution: f64,
    }

    impl Default for KnobSensor {
        fn default() -> Self {
            KnobSensor {
                rate: 1.0,
                resolution: 1.0,
            }
        }
    }

    impl SensingKnobs for KnobSensor {
        fn rate(&self) -> f64 {
            self.rate
        }
        fn set_rate(&mut self, r: f64) {
            self.rate = r.clamp(0.0, 1.0);
        }
        fn resolution(&self) -> f64 {
            self.resolution
        }
        fn set_resolution(&mut self, r: f64) {
            self.resolution = r.clamp(0.0, 1.0);
        }
    }

    #[test]
    fn quiet_environment_decays_rate() {
        let mut s = KnobSensor::default();
        let mut p = ActionMagnitudeRate::default();
        let b = EnergyBudget::unlimited();
        for _ in 0..50 {
            p.adapt(&mut s, &0.0f64, Trust::Trusted, &b);
        }
        assert!((s.rate() - 0.1).abs() < 1e-6, "rate {}", s.rate());
    }

    #[test]
    fn dynamic_environment_raises_rate() {
        let mut s = KnobSensor::default();
        s.set_rate(0.1);
        let mut p = ActionMagnitudeRate::default();
        let b = EnergyBudget::unlimited();
        for _ in 0..50 {
            p.adapt(&mut s, &5.0f64, Trust::Trusted, &b);
        }
        assert!(s.rate() > 0.95, "rate {}", s.rate());
    }

    #[test]
    fn suspicion_raises_rate_even_when_quiet() {
        let mut s = KnobSensor::default();
        s.set_rate(0.1);
        let mut p = ActionMagnitudeRate::default();
        let b = EnergyBudget::unlimited();
        for _ in 0..50 {
            p.adapt(&mut s, &0.0f64, Trust::Suspect(0.8), &b);
        }
        assert!(s.rate() > 0.7, "rate {}", s.rate());
    }

    #[test]
    fn budget_pressure_caps_rate() {
        let mut s = KnobSensor::default();
        let mut p = ActionMagnitudeRate::default();
        let mut b = EnergyBudget::new(10.0);
        b.consume(9.0, 0.0); // 90 % pressure
        for _ in 0..50 {
            p.adapt(&mut s, &10.0f64, Trust::Trusted, &b);
        }
        // Ceiling = 1 - 0.9*0.9 = 0.19.
        assert!(s.rate() < 0.25, "rate {}", s.rate());
    }

    #[test]
    fn resolution_relaxes_when_trusted_and_recovers_when_suspect() {
        let mut s = KnobSensor::default();
        let mut p = TrustDrivenResolution::default();
        let b = EnergyBudget::unlimited();
        for _ in 0..30 {
            p.adapt(&mut s, &0.0f64, Trust::Trusted, &b);
        }
        assert!(
            (s.resolution() - 0.5).abs() < 0.01,
            "res {}",
            s.resolution()
        );
        for _ in 0..30 {
            p.adapt(&mut s, &0.0f64, Trust::Untrusted, &b);
        }
        assert!(s.resolution() > 0.95, "res {}", s.resolution());
    }

    #[test]
    fn composed_policy_applies_both() {
        let mut s = KnobSensor::default();
        let mut p = Both(
            ActionMagnitudeRate::default(),
            TrustDrivenResolution::default(),
        );
        let b = EnergyBudget::unlimited();
        for _ in 0..40 {
            p.adapt(&mut s, &0.0f64, Trust::Trusted, &b);
        }
        assert!(s.rate() < 0.2);
        assert!(s.resolution() < 0.6);
    }

    #[test]
    fn vector_action_magnitude() {
        assert_eq!(vec![3.0, 4.0].magnitude(), 5.0);
        assert_eq!((-2.0f64).magnitude(), 2.0);
    }

    #[test]
    fn no_adaptation_leaves_sensor_alone() {
        let mut s = KnobSensor::default();
        let mut p = NoAdaptation;
        p.adapt(
            &mut s,
            &100.0f64,
            Trust::Untrusted,
            &EnergyBudget::unlimited(),
        );
        assert_eq!(s.rate(), 1.0);
        assert_eq!(s.resolution(), 1.0);
    }
}
