//! Runtime mixed-precision mode (the paper's §VII per-stage precision knob).
//!
//! Precision is a first-class runtime mode, not a build-time choice: every
//! tick the loop runner asks its [`PrecisionGovernor`] which numeric mode to
//! compute at, stamps it into the tick's
//! [`StageContext`](crate::stage::StageContext), and records the decision in
//! [`TickRecord`](crate::telemetry::TickRecord) so record/replay stays
//! deterministic.
//!
//! The governor composes three signals:
//!
//! 1. **Budget pressure** (local): the loop's
//!    [`EnergyBudget::pressure`](crate::budget::EnergyBudget::pressure) in
//!    `[0, 1]` is mapped through the [`PrecisionPolicy`] thresholds — high
//!    pressure drops perception to f32, then int8.
//! 2. **Scheduler hint** (fleet): the energy arbiter may recommend a
//!    cheaper mode fleet-wide; the effective mode is the cheaper of the
//!    local policy's choice and the hint.
//! 3. **Trust drift** (safety): when the STARNet-style monitor reports
//!    suspicion at or above the drift threshold, the governor forces full
//!    f64 for `hold_ticks` ticks — accuracy is restored before economy
//!    resumes.
//!
//! All three signals are deterministic functions of the simulated run, so a
//! replay with the same seed reproduces the same precision schedule
//! bit-exactly.

pub use sensact_math::kernels::Precision;

use crate::checkpoint::{Checkpoint, CheckpointError, Section, StageState};
use crate::stage::Trust;
use sensact_math::simd;

/// Threshold policy mapping budget pressure to a [`Precision`] mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionPolicy {
    /// Pressure at or above which perception drops to f32.
    pub f32_pressure: f64,
    /// Pressure at or above which perception drops to int8.
    pub int8_pressure: f64,
    /// Monitor suspicion at or above which the governor forces f64.
    pub drift_threshold: f64,
    /// Ticks of forced f64 after a drift flag (hysteresis, so trust
    /// flapping cannot oscillate the mode every tick).
    pub hold_ticks: u32,
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        PrecisionPolicy::adaptive(0.5, 0.85)
    }
}

impl PrecisionPolicy {
    /// Adaptive policy: f64 below `f32_at` pressure, f32 in
    /// `[f32_at, int8_at)`, int8 at or above `int8_at`. Drift threshold
    /// defaults to `0.5` suspicion with an 8-tick f64 hold.
    pub fn adaptive(f32_at: f64, int8_at: f64) -> Self {
        PrecisionPolicy {
            f32_pressure: f32_at,
            int8_pressure: int8_at,
            drift_threshold: 0.5,
            hold_ticks: 8,
        }
    }

    /// Policy pinned to one mode regardless of pressure (drift still forces
    /// f64).
    pub fn fixed(mode: Precision) -> Self {
        let (f32_at, int8_at) = match mode {
            Precision::F64 => (f64::INFINITY, f64::INFINITY),
            Precision::F32 => (0.0, f64::INFINITY),
            Precision::Int8 => (0.0, 0.0),
        };
        PrecisionPolicy {
            f32_pressure: f32_at,
            int8_pressure: int8_at,
            drift_threshold: 0.5,
            hold_ticks: 8,
        }
    }

    /// Same policy with a different drift threshold.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Same policy with a different forced-f64 hold length.
    pub fn with_hold_ticks(mut self, ticks: u32) -> Self {
        self.hold_ticks = ticks;
        self
    }

    /// The mode this policy selects at a given budget pressure.
    pub fn for_pressure(&self, pressure: f64) -> Precision {
        if pressure >= self.int8_pressure {
            Precision::Int8
        } else if pressure >= self.f32_pressure {
            Precision::F32
        } else {
            Precision::F64
        }
    }
}

/// Per-loop precision decision state consulted by the loop runners each
/// tick.
///
/// A disabled governor (the default) always answers [`Precision::F64`] and
/// ignores hints — existing loops behave exactly as before the
/// mixed-precision mode existed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrecisionGovernor {
    policy: Option<PrecisionPolicy>,
    hint: Option<Precision>,
    hold: u32,
    current: Precision,
}

impl PrecisionGovernor {
    /// A governor that always stays at f64 (mixed precision off).
    pub fn disabled() -> Self {
        PrecisionGovernor::default()
    }

    /// A governor driving the given policy.
    pub fn new(policy: PrecisionPolicy) -> Self {
        PrecisionGovernor {
            policy: Some(policy),
            hint: None,
            hold: 0,
            current: Precision::F64,
        }
    }

    /// Whether a policy is installed.
    pub fn is_enabled(&self) -> bool {
        self.policy.is_some()
    }

    /// Install or clear a fleet-level hint (e.g. from the scheduler's
    /// energy arbiter). The effective mode is the cheaper of the local
    /// policy's choice and this hint; a disabled governor ignores it.
    pub fn set_hint(&mut self, hint: Option<Precision>) {
        self.hint = hint;
    }

    /// Feed the monitor's verdict back into the governor (call after the
    /// monitor stage). Suspicion at or above the policy's drift threshold
    /// arms the forced-f64 hold starting next tick.
    pub fn observe_trust(&mut self, trust: Trust) {
        if let Some(policy) = &self.policy {
            if trust.suspicion() >= policy.drift_threshold {
                self.hold = policy.hold_ticks.max(1);
            }
        }
    }

    /// Decide this tick's precision from the loop's budget pressure (call
    /// before the sense stage). Trust-drift holds override everything;
    /// otherwise the cheaper of the policy's pressure mapping and the
    /// scheduler hint wins.
    pub fn decide(&mut self, pressure: f64) -> Precision {
        let Some(policy) = &self.policy else {
            self.current = Precision::F64;
            return self.current;
        };
        if self.hold > 0 {
            self.hold -= 1;
            self.current = Precision::F64;
            return self.current;
        }
        let mut mode = policy.for_pressure(pressure);
        if let Some(hint) = self.hint {
            mode = mode.cheaper_of(hint);
        }
        self.current = mode;
        self.current
    }

    /// The mode most recently decided (f64 before the first tick).
    pub fn current(&self) -> Precision {
        self.current
    }

    /// Whether a trust-drift hold is forcing f64 for upcoming ticks.
    pub fn holding(&self) -> bool {
        self.hold > 0
    }
}

fn rank_to_precision(rank: u64) -> Option<Precision> {
    Precision::ALL.into_iter().find(|p| p.rank() as u64 == rank)
}

impl StageState for PrecisionGovernor {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        let mut s = Section::new(ns);
        // The policy is construction-time config; only the runtime decision
        // state travels. `hold` is the load-bearing field: dropping it lets
        // a restored loop cheapen to f32 one tick early, diverging the
        // recorded precision schedule mid-hold.
        s.put_u64("hold", self.hold as u64);
        s.put_u64("current", self.current.rank() as u64);
        s.put_bool("hint_some", self.hint.is_some());
        s.put_u64("hint", self.hint.unwrap_or(Precision::F64).rank() as u64);
        ckpt.push(s);
    }

    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        let s = ckpt.section(ns)?;
        let bad = |key: &str| CheckpointError::BadValue(format!("{ns}.{key}"));
        self.hold = s.get_u64("hold")? as u32;
        self.current = rank_to_precision(s.get_u64("current")?).ok_or_else(|| bad("current"))?;
        self.hint = if s.get_bool("hint_some")? {
            Some(rank_to_precision(s.get_u64("hint")?).ok_or_else(|| bad("hint"))?)
        } else {
            None
        };
        Ok(())
    }
}

/// Record the host's CPU feature detection into a metrics registry as
/// gauges (`1.0` = available), so benches and exported telemetry are
/// attributable to the ISA path the kernels actually took.
pub fn export_cpu_features(metrics: &mut crate::metrics::MetricsRegistry) {
    let f = simd::cpu_features();
    metrics.set("cpu.avx2", f.avx2 as u8 as f64);
    metrics.set("cpu.fma", f.fma as u8 as f64);
    metrics.set("cpu.sse2", f.sse2 as u8 as f64);
    metrics.set("cpu.forced_scalar", f.forced_scalar as u8 as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_governor_always_answers_f64() {
        let mut g = PrecisionGovernor::disabled();
        assert!(!g.is_enabled());
        g.set_hint(Some(Precision::Int8));
        g.observe_trust(Trust::Untrusted);
        for pressure in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(g.decide(pressure), Precision::F64);
        }
    }

    #[test]
    fn policy_thresholds_map_pressure_to_modes() {
        let p = PrecisionPolicy::adaptive(0.4, 0.8);
        assert_eq!(p.for_pressure(0.0), Precision::F64);
        assert_eq!(p.for_pressure(0.39), Precision::F64);
        assert_eq!(p.for_pressure(0.4), Precision::F32);
        assert_eq!(p.for_pressure(0.79), Precision::F32);
        assert_eq!(p.for_pressure(0.8), Precision::Int8);
        assert_eq!(p.for_pressure(1.0), Precision::Int8);
    }

    #[test]
    fn fixed_policies_ignore_pressure() {
        for mode in Precision::ALL {
            let p = PrecisionPolicy::fixed(mode);
            for pressure in [0.0, 0.5, 1.0] {
                assert_eq!(p.for_pressure(pressure), mode, "{mode} at {pressure}");
            }
        }
    }

    #[test]
    fn drift_flag_forces_f64_for_hold_ticks_then_releases() {
        let mut g = PrecisionGovernor::new(PrecisionPolicy::adaptive(0.1, 0.9).with_hold_ticks(3));
        assert_eq!(g.decide(0.5), Precision::F32);
        g.observe_trust(Trust::Suspect(0.7));
        for i in 0..3 {
            assert_eq!(g.decide(0.5), Precision::F64, "hold tick {i}");
        }
        assert_eq!(g.decide(0.5), Precision::F32, "hold released");
        // Benign trust never arms the hold.
        g.observe_trust(Trust::Suspect(0.2));
        assert_eq!(g.decide(0.5), Precision::F32);
    }

    #[test]
    fn hint_can_only_cheapen_the_policy_choice() {
        let mut g = PrecisionGovernor::new(PrecisionPolicy::adaptive(0.5, 0.9));
        g.set_hint(Some(Precision::Int8));
        assert_eq!(g.decide(0.0), Precision::Int8, "hint cheapens f64");
        g.set_hint(Some(Precision::F64));
        assert_eq!(g.decide(0.6), Precision::F32, "hint cannot raise precision");
        g.set_hint(None);
        assert_eq!(g.decide(0.6), Precision::F32);
        assert_eq!(g.current(), Precision::F32);
    }

    /// Regression (hidden-state sweep): a governor snapshotted mid-hold must
    /// resume with the remaining hold ticks intact — without `hold` in the
    /// checkpoint, the restored governor cheapens to f32 one tick early.
    #[test]
    fn checkpoint_carries_hold_through_restore() {
        use crate::checkpoint::Checkpoint;
        let policy = PrecisionPolicy::adaptive(0.1, 0.9).with_hold_ticks(4);
        let mut live = PrecisionGovernor::new(policy);
        assert_eq!(live.decide(0.5), Precision::F32);
        live.observe_trust(Trust::Suspect(0.9)); // arm the 4-tick hold
        assert_eq!(live.decide(0.5), Precision::F64); // 3 hold ticks remain
        live.set_hint(Some(Precision::Int8));

        let mut ckpt = Checkpoint::new("g");
        live.save_state(&mut ckpt, "governor");
        let ckpt = Checkpoint::from_jsonl(&ckpt.to_jsonl()).expect("parses");
        // Restore onto an identically-constructed (fresh) governor.
        let mut restored = PrecisionGovernor::new(policy);
        restored.restore_state(&ckpt, "governor").expect("restores");
        assert_eq!(restored, live, "full decision state must round-trip");

        // Both schedules must agree tick for tick across the hold release.
        for tick in 0..6 {
            assert_eq!(live.decide(0.5), restored.decide(0.5), "tick {tick}");
        }
        // The released schedule honors the restored hint (int8 cheapening).
        assert_eq!(restored.current(), Precision::Int8);
    }

    #[test]
    fn checkpoint_rejects_corrupt_precision_ranks() {
        use crate::checkpoint::{Checkpoint, CheckpointError};
        let mut ckpt = Checkpoint::new("g");
        PrecisionGovernor::new(PrecisionPolicy::default()).save_state(&mut ckpt, "governor");
        let doc = ckpt
            .to_jsonl()
            .replace("\"current\":\"u:0\"", "\"current\":\"u:9\"");
        let ckpt = Checkpoint::from_jsonl(&doc).expect("parses");
        let mut g = PrecisionGovernor::new(PrecisionPolicy::default());
        assert!(matches!(
            g.restore_state(&ckpt, "governor"),
            Err(CheckpointError::BadValue(_))
        ));
    }

    #[test]
    fn cpu_feature_gauges_are_exported() {
        let mut m = crate::metrics::MetricsRegistry::new();
        export_cpu_features(&mut m);
        for key in ["cpu.avx2", "cpu.fma", "cpu.sse2", "cpu.forced_scalar"] {
            let v = m.gauge(key).expect("gauge present");
            assert!(v == 0.0 || v == 1.0, "{key} = {v}");
        }
    }
}
