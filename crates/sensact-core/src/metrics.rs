//! Metrics primitives: counters, gauges, log-bucketed histograms, and a
//! registry keyed by static metric names.
//!
//! The histogram is HDR-style: values are bucketed by exponent plus the top
//! mantissa bits of their IEEE-754 representation, so recording is O(1) with
//! no transcendental math, bucket edges are *exact* binary values (a value
//! exactly on an edge always lands in the bucket whose lower bound it
//! equals), and quantile queries return a guaranteed upper bound within one
//! bucket width (≤ 12.5 % relative error at 8 sub-buckets per octave).
//!
//! Naming convention (see DESIGN.md §10): `<subsystem>.<object>.<metric>_<unit>`,
//! e.g. `stage.sense.latency_s`, `loop.energy_j`, `bus.published_total`.
//! Registry keys are `&'static str` so hot paths never allocate.

use std::collections::BTreeMap;

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest bucketed exponent: values below 2^MIN_EXP fall in the zero
/// bucket (≈ 9.1e-13 — well under a nanosecond or a nanojoule).
const MIN_EXP: i32 = -40;
/// Largest bucketed exponent: values ≥ 2^(MAX_EXP+1) (≈ 3.4e7) are clamped
/// into the overflow bucket, as are `+inf` outliers.
const MAX_EXP: i32 = 24;
/// Main (log-linear) bucket count.
const MAIN_BUCKETS: usize = ((MAX_EXP - MIN_EXP + 1) as usize) * SUBS;
/// Total buckets: zero/underflow + main + overflow.
const BUCKETS: usize = 1 + MAIN_BUCKETS + 1;

/// A log-bucketed histogram of non-negative `f64` samples.
///
/// O(1) record, exact bucket edges, bounded-error quantiles. NaN samples are
/// ignored; negative samples and zeros fall into the zero bucket; `+inf` and
/// values above the top edge are clamped into the overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a sample (NaN handled by the caller).
    #[inline]
    fn bucket_index(v: f64) -> usize {
        if v < f64::from_bits(((MIN_EXP + 1023) as u64) << 52) {
            // Zero, negative, or below the smallest edge: the zero bucket.
            return 0;
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp > MAX_EXP {
            return BUCKETS - 1; // overflow bucket (also +inf)
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        1 + ((exp - MIN_EXP) as usize) * SUBS + sub
    }

    /// `[lower, upper)` value bounds of bucket `idx`.
    fn bucket_bounds(idx: usize) -> (f64, f64) {
        let edge = |i: usize| -> f64 {
            // Edge i (0-based over main buckets): 2^(MIN_EXP + i/SUBS) * (1 + (i%SUBS)/SUBS).
            let exp = MIN_EXP + (i / SUBS) as i32;
            let frac = 1.0 + (i % SUBS) as f64 / SUBS as f64;
            frac * f64::from_bits(((exp + 1023) as u64) << 52)
        };
        if idx == 0 {
            (0.0, edge(0))
        } else if idx >= BUCKETS - 1 {
            (edge(MAIN_BUCKETS), f64::INFINITY)
        } else {
            (edge(idx - 1), edge(idx))
        }
    }

    /// Record one sample. NaN is ignored.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Quantile upper bound: the smallest bucket upper edge (clamped to the
    /// exact max) such that at least `ceil(q·count)` samples fall at or
    /// below it. The true quantile is ≤ the returned value, within one
    /// bucket width. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(idx);
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(lower, upper, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Merge another histogram into this one (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A registry of counters, gauges and histograms keyed by static names.
///
/// Iteration order is deterministic (sorted by key), so text reports and
/// exports are reproducible. Lookups never allocate; the expected usage is
/// static keys like [`StageId::latency_key`](crate::trace::StageId::latency_key).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment counter `name` by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `delta`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `value` into histogram `name` (created on first use).
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Histogram by name, if any samples were observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Install a pre-populated histogram under `name` (replacing any
    /// existing one) — used to export a loop's internal histograms.
    pub fn install_histogram(&mut self, name: &'static str, hist: Histogram) {
        self.histograms.insert(name, hist);
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl std::fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, v) in self.counters() {
            writeln!(f, "{name:<36} {v}")?;
        }
        for (name, v) in self.gauges() {
            writeln!(f, "{name:<36} {v:.6e}")?;
        }
        for (name, h) in self.histograms() {
            writeln!(
                f,
                "{name:<36} n={} mean={:.3e} p50={:.3e} p99={:.3e} max={:.3e}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p99(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn exact_stats_track_samples() {
        let mut h = Histogram::new();
        for v in [1e-3, 2e-3, 4e-3, 8e-3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 15e-3).abs() < 1e-15);
        assert!((h.mean() - 3.75e-3).abs() < 1e-15);
        assert_eq!(h.min(), 1e-3);
        assert_eq!(h.max(), 8e-3);
    }

    #[test]
    fn quantile_bounds_are_upper_bounds_within_a_bucket() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-4); // 0.1 ms .. 100 ms
        }
        for q in [0.5, 0.9, 0.99] {
            let true_q = 1e-4 * (q * 1000.0_f64).ceil();
            let est = h.quantile(q);
            assert!(est >= true_q, "q{q}: est {est} < true {true_q}");
            assert!(est <= true_q * 1.125 + 1e-12, "q{q}: est {est} too loose");
        }
        assert_eq!(h.quantile(1.0), h.max());
        // q=0 clamps to rank 1: an upper bound on the minimum.
        assert!(h.quantile(0.0) >= 1e-4);
    }

    #[test]
    fn bucket_edges_are_exact() {
        // A value exactly on a bucket edge must land in the bucket whose
        // *lower* bound it equals: [edge, next_edge).
        for &edge in &[1.0, 1.125, 1.25, 2.0, 0.5, 0.625, 256.0, 7.0 / 4.0] {
            let idx = Histogram::bucket_index(edge);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(lo, edge, "edge {edge} not a lower bound (got [{lo},{hi}))");
            assert!(edge < hi);
            // The value just below the edge belongs to the previous bucket.
            let below = f64::from_bits(edge.to_bits() - 1);
            let (lo2, hi2) = Histogram::bucket_bounds(Histogram::bucket_index(below));
            assert_eq!(hi2, edge, "just-below {below} not capped by edge");
            assert!(lo2 < edge);
        }
    }

    #[test]
    fn zero_and_tiny_values_fall_in_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(1e-300); // far below 2^-40
        h.record(-1.0); // clamped (negative charges are rejected upstream)
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1);
        let (lo, hi, c) = buckets[0];
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 1e-11);
        assert_eq!(c, 3);
        // Quantiles of an all-zero-bucket histogram clamp to the exact max.
        assert_eq!(h.p50(), 1e-300_f64.max(0.0));
    }

    #[test]
    fn inf_clamped_outliers_land_in_overflow_bucket() {
        let mut h = Histogram::new();
        h.record(f64::INFINITY);
        h.record(1e300); // far above 2^25
        h.record(1.0);
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        // One main bucket (the 1.0) + the overflow bucket.
        assert_eq!(buckets.len(), 2);
        let (lo, hi, c) = *buckets.last().unwrap();
        assert!(lo.is_finite());
        assert!(hi.is_infinite());
        assert_eq!(c, 2);
        // Quantiles in the overflow bucket clamp to the exact max, so a
        // finite outlier never reports as +inf...
        let mut finite = Histogram::new();
        finite.record(1e300);
        assert_eq!(finite.p99(), 1e300);
        // ...while a true +inf sample reports +inf.
        assert!(h.p99().is_infinite());
        assert!(h.max().is_infinite());
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(2.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn merge_combines_bucket_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
        let total: u64 = a.nonzero_buckets().iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.inc("loop.ticks_total");
        r.add("loop.ticks_total", 2);
        r.set("loop.energy_j", 0.5);
        r.set("loop.energy_j", 0.75);
        r.observe("stage.sense.latency_s", 1e-3);
        r.observe("stage.sense.latency_s", 2e-3);
        assert_eq!(r.counter("loop.ticks_total"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("loop.energy_j"), Some(0.75));
        assert_eq!(r.gauge("missing"), None);
        assert_eq!(r.histogram("stage.sense.latency_s").unwrap().count(), 2);
        assert!(r.histogram("missing").is_none());
        let text = r.to_string();
        assert!(text.contains("loop.ticks_total"));
        assert!(text.contains("stage.sense.latency_s"));
    }

    #[test]
    fn registry_iteration_is_sorted() {
        let mut r = MetricsRegistry::new();
        r.inc("b.second");
        r.inc("a.first");
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "b.second"]);
    }
}
