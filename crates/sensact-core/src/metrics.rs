//! Metrics primitives: counters, gauges, log-bucketed histograms, and a
//! registry keyed by static metric names.
//!
//! The histogram is HDR-style: values are bucketed by exponent plus the top
//! mantissa bits of their IEEE-754 representation, so recording is O(1) with
//! no transcendental math, bucket edges are *exact* binary values (a value
//! exactly on an edge always lands in the bucket whose lower bound it
//! equals), and quantile queries return a guaranteed upper bound within one
//! bucket width (≤ 12.5 % relative error at 8 sub-buckets per octave).
//!
//! Naming convention (see DESIGN.md §10): `<subsystem>.<object>.<metric>_<unit>`,
//! e.g. `stage.sense.latency_s`, `loop.energy_j`, `bus.published_total`.
//! Registry keys are `&'static str` so hot paths never allocate.

use std::collections::BTreeMap;

use crate::checkpoint::{CheckpointError, Section};

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest bucketed exponent: values below 2^MIN_EXP fall in the zero
/// bucket (≈ 9.1e-13 — well under a nanosecond or a nanojoule).
const MIN_EXP: i32 = -40;
/// Largest bucketed exponent: values ≥ 2^(MAX_EXP+1) (≈ 3.4e7) are clamped
/// into the overflow bucket, as are `+inf` outliers.
const MAX_EXP: i32 = 24;
/// Main (log-linear) bucket count.
const MAIN_BUCKETS: usize = ((MAX_EXP - MIN_EXP + 1) as usize) * SUBS;
/// Total buckets: zero/underflow + main + overflow.
const BUCKETS: usize = 1 + MAIN_BUCKETS + 1;

/// A log-bucketed histogram of non-negative `f64` samples.
///
/// O(1) record, exact bucket edges, bounded-error quantiles. NaN samples are
/// ignored; negative samples and zeros fall into the zero bucket; `+inf` and
/// values above the top edge are clamped into the overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a sample (NaN handled by the caller).
    #[inline]
    fn bucket_index(v: f64) -> usize {
        if v < f64::from_bits(((MIN_EXP + 1023) as u64) << 52) {
            // Zero, negative, or below the smallest edge: the zero bucket.
            return 0;
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp > MAX_EXP {
            return BUCKETS - 1; // overflow bucket (also +inf)
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        1 + ((exp - MIN_EXP) as usize) * SUBS + sub
    }

    /// `[lower, upper)` value bounds of bucket `idx`.
    fn bucket_bounds(idx: usize) -> (f64, f64) {
        let edge = |i: usize| -> f64 {
            // Edge i (0-based over main buckets): 2^(MIN_EXP + i/SUBS) * (1 + (i%SUBS)/SUBS).
            let exp = MIN_EXP + (i / SUBS) as i32;
            let frac = 1.0 + (i % SUBS) as f64 / SUBS as f64;
            frac * f64::from_bits(((exp + 1023) as u64) << 52)
        };
        if idx == 0 {
            (0.0, edge(0))
        } else if idx >= BUCKETS - 1 {
            (edge(MAIN_BUCKETS), f64::INFINITY)
        } else {
            (edge(idx - 1), edge(idx))
        }
    }

    /// Record one sample. NaN is ignored.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded. When this is true,
    /// [`Histogram::min`] and [`Histogram::max`] return the benign `0.0`
    /// placeholder, *not* a real sample bound — rollups must check this
    /// before folding those values into fleet-level extrema.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Quantile upper bound: the smallest bucket upper edge (clamped to the
    /// exact max) such that at least `ceil(q·count)` samples fall at or
    /// below it. The true quantile is ≤ the returned value, within one
    /// bucket width. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(idx);
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(lower, upper, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Merge another histogram into this one (bucket-wise).
    ///
    /// An empty source is a no-op: it contributes no buckets, and skipping
    /// it outright guarantees its placeholder bounds can never perturb this
    /// histogram's exact `min`/`max`, even for future samplers that tighten
    /// the empty-state representation.
    pub fn merge(&mut self, other: &Histogram) {
        if other.is_empty() {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serialize into `section` under `prefix` (sparse buckets plus the
    /// exact running aggregates, all bit-exact).
    pub(crate) fn save_into(&self, section: &mut Section, prefix: &str) {
        let mut sparse = Vec::new();
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                sparse.push(idx as u64);
                sparse.push(c);
            }
        }
        section.put_u64s(&format!("{prefix}_buckets"), &sparse);
        section.put_u64(&format!("{prefix}_count"), self.count);
        section.put_f64(&format!("{prefix}_sum"), self.sum);
        section.put_f64(&format!("{prefix}_min"), self.min);
        section.put_f64(&format!("{prefix}_max"), self.max);
    }

    /// Rebuild a histogram saved with [`Histogram::save_into`], bit-exactly
    /// (the ±∞ empty-state sentinels travel as raw bit patterns).
    pub(crate) fn restore_from(section: &Section, prefix: &str) -> Result<Self, CheckpointError> {
        let sparse = section.get_u64s(&format!("{prefix}_buckets"))?;
        if !sparse.len().is_multiple_of(2) {
            return Err(CheckpointError::BadValue(format!(
                "{}.{prefix}_buckets",
                section.id()
            )));
        }
        let mut h = Histogram::new();
        for pair in sparse.chunks_exact(2) {
            let idx = pair[0] as usize;
            if idx >= BUCKETS {
                return Err(CheckpointError::BadValue(format!(
                    "{}.{prefix}_buckets",
                    section.id()
                )));
            }
            h.counts[idx] = pair[1];
        }
        h.count = section.get_u64(&format!("{prefix}_count"))?;
        h.sum = section.get_f64(&format!("{prefix}_sum"))?;
        h.min = section.get_f64(&format!("{prefix}_min"))?;
        h.max = section.get_f64(&format!("{prefix}_max"))?;
        Ok(h)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A registry of counters, gauges and histograms keyed by static names.
///
/// Iteration order is deterministic (sorted by key), so text reports and
/// exports are reproducible. Lookups never allocate; the expected usage is
/// static keys like [`StageId::latency_key`](crate::trace::StageId::latency_key).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment counter `name` by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `delta`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set counter `name` to an absolute value (last write wins).
    ///
    /// Exporters that re-publish a snapshot (e.g. a scrape endpoint reading
    /// the same fleet report twice) use this instead of
    /// [`MetricsRegistry::add`] so re-export is idempotent.
    pub fn set_counter(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `value` into histogram `name` (created on first use).
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Histogram by name, if any samples were observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Install a pre-populated histogram under `name` (replacing any
    /// existing one) — used to export a loop's internal histograms.
    pub fn install_histogram(&mut self, name: &'static str, hist: Histogram) {
        self.histograms.insert(name, hist);
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, gauges add, and
    /// histograms merge bucket-wise in O(buckets).
    ///
    /// This is the fleet-rollup primitive: per-loop registries fold into one
    /// fleet-level registry whose totals equal what a single registry would
    /// have recorded had every loop written into it directly. Gauges are
    /// *summed* (additive rollup — energy, busy time); rollups that need a
    /// different gauge semantic (e.g. last-write) should overwrite after
    /// merging.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges() {
            *self.gauges.entry(name).or_insert(0.0) += v;
        }
        for (name, hist) in other.histograms() {
            // Skip empty sources entirely: cloning one in would create an
            // entry whose min()/max() read as the 0.0 empty placeholder —
            // a fake sample bound in rollup reports.
            if hist.is_empty() {
                continue;
            }
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name, hist.clone());
                }
            }
        }
    }
}

impl std::fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, v) in self.counters() {
            writeln!(f, "{name:<36} {v}")?;
        }
        for (name, v) in self.gauges() {
            writeln!(f, "{name:<36} {v:.6e}")?;
        }
        for (name, h) in self.histograms() {
            writeln!(
                f,
                "{name:<36} n={} mean={:.3e} p50={:.3e} p99={:.3e} max={:.3e}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p99(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn exact_stats_track_samples() {
        let mut h = Histogram::new();
        for v in [1e-3, 2e-3, 4e-3, 8e-3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 15e-3).abs() < 1e-15);
        assert!((h.mean() - 3.75e-3).abs() < 1e-15);
        assert_eq!(h.min(), 1e-3);
        assert_eq!(h.max(), 8e-3);
    }

    #[test]
    fn quantile_bounds_are_upper_bounds_within_a_bucket() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-4); // 0.1 ms .. 100 ms
        }
        for q in [0.5, 0.9, 0.99] {
            let true_q = 1e-4 * (q * 1000.0_f64).ceil();
            let est = h.quantile(q);
            assert!(est >= true_q, "q{q}: est {est} < true {true_q}");
            assert!(est <= true_q * 1.125 + 1e-12, "q{q}: est {est} too loose");
        }
        assert_eq!(h.quantile(1.0), h.max());
        // q=0 clamps to rank 1: an upper bound on the minimum.
        assert!(h.quantile(0.0) >= 1e-4);
    }

    #[test]
    fn bucket_edges_are_exact() {
        // A value exactly on a bucket edge must land in the bucket whose
        // *lower* bound it equals: [edge, next_edge).
        for &edge in &[1.0, 1.125, 1.25, 2.0, 0.5, 0.625, 256.0, 7.0 / 4.0] {
            let idx = Histogram::bucket_index(edge);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(lo, edge, "edge {edge} not a lower bound (got [{lo},{hi}))");
            assert!(edge < hi);
            // The value just below the edge belongs to the previous bucket.
            let below = f64::from_bits(edge.to_bits() - 1);
            let (lo2, hi2) = Histogram::bucket_bounds(Histogram::bucket_index(below));
            assert_eq!(hi2, edge, "just-below {below} not capped by edge");
            assert!(lo2 < edge);
        }
    }

    #[test]
    fn zero_and_tiny_values_fall_in_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(1e-300); // far below 2^-40
        h.record(-1.0); // clamped (negative charges are rejected upstream)
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1);
        let (lo, hi, c) = buckets[0];
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 1e-11);
        assert_eq!(c, 3);
        // Quantiles of an all-zero-bucket histogram clamp to the exact max.
        assert_eq!(h.p50(), 1e-300_f64.max(0.0));
    }

    #[test]
    fn inf_clamped_outliers_land_in_overflow_bucket() {
        let mut h = Histogram::new();
        h.record(f64::INFINITY);
        h.record(1e300); // far above 2^25
        h.record(1.0);
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        // One main bucket (the 1.0) + the overflow bucket.
        assert_eq!(buckets.len(), 2);
        let (lo, hi, c) = *buckets.last().unwrap();
        assert!(lo.is_finite());
        assert!(hi.is_infinite());
        assert_eq!(c, 2);
        // Quantiles in the overflow bucket clamp to the exact max, so a
        // finite outlier never reports as +inf...
        let mut finite = Histogram::new();
        finite.record(1e300);
        assert_eq!(finite.p99(), 1e300);
        // ...while a true +inf sample reports +inf.
        assert!(h.p99().is_infinite());
        assert!(h.max().is_infinite());
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(2.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn merge_combines_bucket_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
        let total: u64 = a.nonzero_buckets().iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.inc("loop.ticks_total");
        r.add("loop.ticks_total", 2);
        r.set("loop.energy_j", 0.5);
        r.set("loop.energy_j", 0.75);
        r.observe("stage.sense.latency_s", 1e-3);
        r.observe("stage.sense.latency_s", 2e-3);
        assert_eq!(r.counter("loop.ticks_total"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("loop.energy_j"), Some(0.75));
        assert_eq!(r.gauge("missing"), None);
        assert_eq!(r.histogram("stage.sense.latency_s").unwrap().count(), 2);
        assert!(r.histogram("missing").is_none());
        let text = r.to_string();
        assert!(text.contains("loop.ticks_total"));
        assert!(text.contains("stage.sense.latency_s"));
    }

    #[test]
    fn registry_iteration_is_sorted() {
        let mut r = MetricsRegistry::new();
        r.inc("b.second");
        r.inc("a.first");
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "b.second"]);
    }

    #[test]
    fn set_counter_is_idempotent_overwrite() {
        let mut r = MetricsRegistry::new();
        r.set_counter("fleet.ticks_total", 10);
        r.set_counter("fleet.ticks_total", 10);
        assert_eq!(r.counter("fleet.ticks_total"), 10);
        r.set_counter("fleet.ticks_total", 7);
        assert_eq!(r.counter("fleet.ticks_total"), 7);
    }

    /// SplitMix64 — a tiny seeded generator for property tests.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A positive sample spanning many octaves (~1e-9 .. ~1e5), plus
    /// occasional zeros and edge-exact powers of two.
    fn sample(state: &mut u64) -> f64 {
        let r = splitmix(state);
        match r % 16 {
            0 => 0.0,
            1 => (1u64 << ((r >> 8) % 20)) as f64, // exact edge values
            _ => {
                let mag = ((r >> 16) % 47) as i32 - 30; // 2^-30 .. 2^16
                let frac = 1.0 + ((r >> 32) & 0xFFFF) as f64 / 65536.0;
                frac * (mag as f64).exp2()
            }
        }
    }

    fn hist_of(seed: u64, n: usize) -> (Histogram, Vec<f64>) {
        let mut state = seed;
        let mut h = Histogram::new();
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let v = sample(&mut state);
            h.record(v);
            vals.push(v);
        }
        (h, vals)
    }

    fn assert_hist_eq(a: &Histogram, b: &Histogram) {
        assert_eq!(a.count(), b.count());
        assert_eq!(a.min().to_bits(), b.min().to_bits());
        assert_eq!(a.max().to_bits(), b.max().to_bits());
        assert_eq!(a.nonzero_buckets(), b.nonzero_buckets());
        // Sums accumulate in different orders, so compare with a tolerance.
        assert!((a.sum() - b.sum()).abs() <= 1e-9 * a.sum().abs().max(1.0));
    }

    #[test]
    fn merge_matches_recording_all_samples_into_one() {
        // Merging shard histograms must preserve exact bucket bounds and
        // counts against the ground truth of one histogram that saw every
        // sample directly.
        for seed in [1u64, 99, 0xDEAD] {
            let (a, va) = hist_of(seed, 500);
            let (b, vb) = hist_of(seed ^ 0xF0F0, 700);
            let (c, vc) = hist_of(seed.rotate_left(17), 300);
            let mut truth = Histogram::new();
            for v in va.iter().chain(&vb).chain(&vc) {
                truth.record(*v);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            merged.merge(&c);
            assert_hist_eq(&merged, &truth);
            // Quantiles of the merged histogram are identical to the truth's
            // (same buckets, same counts, same exact max).
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(merged.quantile(q).to_bits(), truth.quantile(q).to_bits());
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let (a, _) = hist_of(11, 400);
        let (b, _) = hist_of(22, 400);
        let (c, _) = hist_of(33, 400);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_hist_eq(&ab, &ba);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_hist_eq(&ab_c, &a_bc);

        // Identity: merging an empty histogram changes nothing.
        let mut id = a.clone();
        id.merge(&Histogram::new());
        assert_hist_eq(&id, &a);
    }

    #[test]
    fn empty_histogram_merge_cannot_leak_placeholder_bounds() {
        // Regression: an empty histogram's min()/max() read as the 0.0
        // placeholder. Merging one must be a strict no-op, and a registry
        // rollup must not materialize empty entries whose placeholder
        // bounds would masquerade as real sample extrema.
        let mut a = Histogram::new();
        a.record(3.0);
        a.record(7.0);
        a.merge(&Histogram::new());
        assert_eq!(a.min(), 3.0);
        assert_eq!(a.max(), 7.0);
        assert_eq!(a.count(), 2);

        let mut fleet = MetricsRegistry::new();
        let mut quiet = MetricsRegistry::new();
        quiet.observe("stage.sense.latency_s", f64::NAN); // NaN ignored: stays empty
        assert!(quiet.histogram("stage.sense.latency_s").unwrap().is_empty());
        fleet.merge(&quiet);
        // The empty source must not appear in the rollup at all.
        assert!(fleet.histogram("stage.sense.latency_s").is_none());

        let mut busy = MetricsRegistry::new();
        busy.observe("stage.sense.latency_s", 2e-3);
        fleet.merge(&busy);
        fleet.merge(&quiet);
        let h = fleet.histogram("stage.sense.latency_s").unwrap();
        assert_eq!(h.min(), 2e-3, "empty merge perturbed the rollup min");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_checkpoint_round_trips_bit_exactly() {
        use crate::checkpoint::Section;
        let (h, _) = hist_of(0xC0FFEE, 800);
        let mut s = Section::new("hist");
        h.save_into(&mut s, "lat");
        let back = Histogram::restore_from(&s, "lat").expect("restores");
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum().to_bits(), h.sum().to_bits());
        assert_eq!(back.min().to_bits(), h.min().to_bits());
        assert_eq!(back.max().to_bits(), h.max().to_bits());
        assert_eq!(back.nonzero_buckets(), h.nonzero_buckets());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(back.quantile(q).to_bits(), h.quantile(q).to_bits());
        }

        // Empty histograms round-trip too (±inf internal sentinels travel
        // as bit patterns) and still report the benign empty-state values.
        let empty = Histogram::new();
        let mut s2 = Section::new("hist");
        empty.save_into(&mut s2, "lat");
        let back2 = Histogram::restore_from(&s2, "lat").expect("restores");
        assert!(back2.is_empty());
        assert_eq!(back2.min(), 0.0);
        let mut again = back2;
        again.record(5.0);
        assert_eq!(again.min(), 5.0);

        // Corrupt bucket indices are typed errors, not panics.
        let mut s3 = Section::new("hist");
        empty.save_into(&mut s3, "lat");
        s3.put_u64s("lat_buckets", &[9999, 1]);
        assert!(matches!(
            Histogram::restore_from(&s3, "lat"),
            Err(crate::checkpoint::CheckpointError::BadValue(_))
        ));
        let mut s4 = Section::new("hist");
        empty.save_into(&mut s4, "lat");
        s4.put_u64s("lat_buckets", &[3]); // odd-length pair list
        assert!(Histogram::restore_from(&s4, "lat").is_err());
    }

    #[test]
    fn registry_merge_rolls_up_counters_gauges_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("loop.ticks_total", 5);
        a.set("loop.energy_j", 1.5);
        a.observe("stage.sense.latency_s", 1e-3);

        let mut b = MetricsRegistry::new();
        b.add("loop.ticks_total", 3);
        b.add("loop.faults_total", 2);
        b.set("loop.energy_j", 0.5);
        b.observe("stage.sense.latency_s", 2e-3);
        b.observe("stage.act.latency_s", 4e-3);

        a.merge(&b);
        assert_eq!(a.counter("loop.ticks_total"), 8);
        assert_eq!(a.counter("loop.faults_total"), 2);
        assert_eq!(a.gauge("loop.energy_j"), Some(2.0));
        assert_eq!(a.histogram("stage.sense.latency_s").unwrap().count(), 2);
        assert_eq!(a.histogram("stage.act.latency_s").unwrap().count(), 1);
        // b is unchanged (merge borrows).
        assert_eq!(b.counter("loop.ticks_total"), 3);
    }
}
