//! Deterministic record/replay for sensing-to-action loops.
//!
//! The optimization story of this workspace (blocked GEMM, im2col conv,
//! bucketed raycast, fallible runners) only holds if the optimized loop is
//! *provably* the same loop as the reference. This module closes that gap:
//! a run's per-tick telemetry is captured as a [`Recording`] (round-trippable
//! JSONL, built on [`export`](crate::export)), and an identically-constructed
//! loop can be **replayed** against it tick by tick. Any nondeterminism in
//! the five stages — an unseeded RNG, a `HashMap` iteration order, a
//! wall-clock read leaking into the ledger — surfaces as a [`Divergence`]
//! naming the first divergent tick and the exact field that differs.
//!
//! Determinism contract: a recording replays bit-exactly when the replayed
//! loop is built from the same ingredients — same stage implementations,
//! same [`FaultProfile`](crate::fault::FaultProfile)/seed pairs for every
//! [`FaultInjector`](crate::fault::FaultInjector) (the recorded *fault
//! schedule* is a pure function of them), the same
//! [`RecoveryPolicy`](crate::fault::RecoveryPolicy), and a deterministic
//! clock ([`SimClock`](crate::trace::SimClock)) if tracing is on. The
//! [`RecordingMeta`] carries the run's seed so a recording is
//! self-describing.
//!
//! Comparison is **bit-exact** ([`f64::to_bits`] equality, with all NaNs
//! considered equal since JSONL canonicalizes NaN payloads): replay relies on
//! the kernel layer's bitwise naive↔blocked↔parallel guarantee rather than on
//! tolerances, so a single flipped ULP anywhere in a 1k-tick run is a test
//! failure, not noise.
//!
//! ```
//! use sensact_core::replay::Recording;
//! use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext};
//! use sensact_core::LoopBuilder;
//!
//! let build = || {
//!     LoopBuilder::new("replayable").build(
//!         FnSensor::new(|e: &f64, ctx: &mut StageContext| { ctx.charge(1e-6, 1e-4); *e }),
//!         FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
//!         FnController::new(|f: &f64, _t, _: &mut StageContext| -0.5 * f),
//!     )
//! };
//! // Record a run…
//! let mut looop = build();
//! let mut env = 4.0f64;
//! looop.run(&mut env, 32, |e, a| *e += a);
//! let recording = Recording::capture("replayable", 0, looop.telemetry());
//! // …ship it through JSONL…
//! let parsed = Recording::from_jsonl(&recording.to_jsonl());
//! // …and replay an identically-built loop against it.
//! let mut env = 4.0f64;
//! let ticks = build().replay(&mut env, &parsed, |e, a| *e += a).unwrap();
//! assert_eq!(ticks, 32);
//! ```

use crate::adapt::AdaptationPolicy;
use crate::export::{
    field, parse_flat, parse_span, parse_tick, span_to_json, str_field, tick_to_json,
};
use crate::fault::{FailSafe, FallibleLoop, FiniteCheck, TryPerceptor, TrySensor};
use crate::loop_::SensingActionLoop;
use crate::stage::{Controller, Monitor, Perceptor, Sensor, Trust};
use crate::telemetry::{LoopTelemetry, TickRecord};
use crate::trace::{Span, StageId};
use std::fmt::Write as _;

/// Header of a [`Recording`]: which run produced it and under what seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingMeta {
    /// Loop name the recording was captured from.
    pub name: String,
    /// Master seed of the run (fault injectors, environments). A recording
    /// replays only against a loop rebuilt from the same seed.
    pub seed: u64,
    /// Number of ticks the original run executed (may exceed the retained
    /// tick records when the telemetry ring was smaller than the run).
    pub ticks: u64,
    /// ISA path the math kernels took on the capturing host (`"avx2+fma"`,
    /// `"sse2"`, `"scalar"`, or `"unknown"` for recordings predating the
    /// field). Informational: replay compares ledgers, not ISAs, but a
    /// divergence across hosts is explicable from this header.
    pub isa: String,
}

/// A recorded run: meta header plus the retained per-tick records and spans,
/// serializable as flat JSONL (`"replay_meta"`, `"span"` and `"tick"` event
/// lines) via [`Recording::to_jsonl`] / [`Recording::from_jsonl`].
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// Run header.
    pub meta: RecordingMeta,
    /// Per-tick telemetry records, oldest first.
    pub ticks: Vec<TickRecord>,
    /// Stage spans, oldest first (empty when the run was untraced).
    pub spans: Vec<Span>,
}

impl Recording {
    /// Capture the retained tick records of a telemetry as a recording.
    ///
    /// The loop `name` must not contain `"`, `,`, braces or backslashes (the
    /// flat JSONL format stores it unescaped).
    pub fn capture(name: impl Into<String>, seed: u64, telemetry: &LoopTelemetry) -> Self {
        let name = name.into();
        debug_assert!(
            !name.contains(['"', ',', '{', '}', '\\']),
            "recording name {name:?} needs JSON escaping, which flat JSONL does not do"
        );
        Recording {
            meta: RecordingMeta {
                name,
                seed,
                ticks: telemetry.ticks(),
                isa: sensact_math::simd::isa_name().to_string(),
            },
            ticks: telemetry.records().copied().collect(),
            spans: Vec::new(),
        }
    }

    /// Attach stage spans (e.g. drained via
    /// [`Tracer::take_spans`](crate::trace::Tracer::take_spans)) to the
    /// recording.
    pub fn with_spans(mut self, spans: Vec<Span>) -> Self {
        self.spans = spans;
        self
    }

    /// Number of retained tick records.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether no tick records are retained.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Serialize as JSONL: one meta line, then span events, then tick events.
    /// Round-trips bit-exactly through [`Recording::from_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"replay_meta\",\"name\":\"{}\",\"seed\":{},\"ticks\":{},\"isa\":\"{}\"}}",
            self.meta.name, self.meta.seed, self.meta.ticks, self.meta.isa
        );
        for s in &self.spans {
            out.push_str(&span_to_json(s));
            out.push('\n');
        }
        for t in &self.ticks {
            out.push_str(&tick_to_json(t));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL document into a recording. Malformed lines and unknown
    /// event types are skipped (never a panic); a document without a
    /// `replay_meta` line yields a default header with `ticks` set to the
    /// number of parsed tick events.
    pub fn from_jsonl(doc: &str) -> Recording {
        let mut meta = None;
        let mut ticks = Vec::new();
        let mut spans = Vec::new();
        for line in doc.lines() {
            if let Some(t) = parse_tick(line) {
                ticks.push(t);
            } else if let Some(s) = parse_span(line) {
                spans.push(s);
            } else if meta.is_none() {
                meta = parse_meta(line);
            }
        }
        let meta = meta.unwrap_or_else(|| RecordingMeta {
            name: "unnamed".to_string(),
            seed: 0,
            ticks: ticks.len() as u64,
            isa: "unknown".to_string(),
        });
        Recording { meta, ticks, spans }
    }
}

/// Parse one `replay_meta` JSONL line.
fn parse_meta(line: &str) -> Option<RecordingMeta> {
    let fields = parse_flat(line)?;
    if str_field(&fields, "type")? != "replay_meta" {
        return None;
    }
    Some(RecordingMeta {
        name: str_field(&fields, "name")?.to_string(),
        seed: field(&fields, "seed")?.parse().ok()?,
        ticks: field(&fields, "ticks")?.parse().ok()?,
        // Lenient: recordings captured before the ISA header existed.
        isa: str_field(&fields, "isa").unwrap_or("unknown").to_string(),
    })
}

/// The first point where a replayed run differs from its recording: the
/// tick, the field, and both values — the diagnosis a nondeterminism hunt
/// starts from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first divergent tick (recording order).
    pub tick: u64,
    /// Which field diverged (`"energy_j"`, `"trust"`,
    /// `"stages.sense.latency_s"`, `"tick_count"`, …).
    pub field: String,
    /// The recorded value, rendered.
    pub recorded: String,
    /// The replayed value, rendered.
    pub replayed: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at tick {}: {} recorded {} vs replayed {}",
            self.tick, self.field, self.recorded, self.replayed
        )
    }
}

/// Bit-exact float equality with all NaNs identified (JSONL canonicalizes
/// NaN payloads, so payload differences are not divergences).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

fn trust_eq(a: Trust, b: Trust) -> bool {
    match (a, b) {
        (Trust::Suspect(x), Trust::Suspect(y)) => bits_eq(x, y),
        _ => a == b,
    }
}

fn render_trust(t: Trust) -> String {
    match t {
        Trust::Trusted => "trusted".to_string(),
        Trust::Suspect(s) => format!("suspect({s})"),
        Trust::Untrusted => "untrusted".to_string(),
    }
}

/// Compare one recorded tick against its replayed counterpart, field by
/// field. Returns the first differing field, if any.
pub fn diff_records(recorded: &TickRecord, replayed: &TickRecord) -> Option<Divergence> {
    let at = recorded.tick;
    let diverged = |field: &str, rec: String, rep: String| {
        Some(Divergence {
            tick: at,
            field: field.to_string(),
            recorded: rec,
            replayed: rep,
        })
    };
    if recorded.tick != replayed.tick {
        return diverged("tick", recorded.tick.to_string(), replayed.tick.to_string());
    }
    if !bits_eq(recorded.energy_j, replayed.energy_j) {
        return diverged(
            "energy_j",
            recorded.energy_j.to_string(),
            replayed.energy_j.to_string(),
        );
    }
    if !bits_eq(recorded.latency_s, replayed.latency_s) {
        return diverged(
            "latency_s",
            recorded.latency_s.to_string(),
            replayed.latency_s.to_string(),
        );
    }
    if !trust_eq(recorded.trust, replayed.trust) {
        return diverged(
            "trust",
            render_trust(recorded.trust),
            render_trust(replayed.trust),
        );
    }
    if recorded.precision != replayed.precision {
        return diverged(
            "precision",
            recorded.precision.to_string(),
            replayed.precision.to_string(),
        );
    }
    for stage in StageId::ALL {
        let (rec, rep) = (recorded.stages.get(stage), replayed.stages.get(stage));
        if !bits_eq(rec.energy_j, rep.energy_j) {
            return diverged(
                &format!("stages.{}.energy_j", stage.name()),
                rec.energy_j.to_string(),
                rep.energy_j.to_string(),
            );
        }
        if !bits_eq(rec.latency_s, rep.latency_s) {
            return diverged(
                &format!("stages.{}.latency_s", stage.name()),
                rec.latency_s.to_string(),
                rep.latency_s.to_string(),
            );
        }
    }
    None
}

/// Compare two record sequences, returning the first divergence (including
/// a `tick_count` divergence when one sequence is a strict prefix of the
/// other).
pub fn first_divergence(recorded: &[TickRecord], replayed: &[TickRecord]) -> Option<Divergence> {
    for (rec, rep) in recorded.iter().zip(replayed) {
        if let Some(d) = diff_records(rec, rep) {
            return Some(d);
        }
    }
    if recorded.len() != replayed.len() {
        return Some(Divergence {
            tick: recorded.len().min(replayed.len()) as u64,
            field: "tick_count".to_string(),
            recorded: recorded.len().to_string(),
            replayed: replayed.len().to_string(),
        });
    }
    None
}

impl<S, P, M, C, Ad> SensingActionLoop<S, P, M, C, Ad> {
    /// Re-drive this (freshly built) loop against a recording: run one tick
    /// per recorded tick, applying actions to `env` via `apply`, and verify
    /// after every tick that the produced telemetry record is bit-identical
    /// to the recorded one. Returns the number of ticks verified, or the
    /// first [`Divergence`].
    ///
    /// Comparison happens per tick, so replay works even when the loop's
    /// telemetry ring capacity is smaller than the recording.
    pub fn replay<E>(
        &mut self,
        env: &mut E,
        recording: &Recording,
        mut apply: impl FnMut(&mut E, &C::Action),
    ) -> Result<u64, Divergence>
    where
        S: Sensor<E>,
        P: Perceptor<S::Reading>,
        M: Monitor<P::Features>,
        C: Controller<P::Features>,
        Ad: AdaptationPolicy<S, C::Action>,
    {
        let mut verified = 0u64;
        for rec in &recording.ticks {
            let out = self.tick(env);
            apply(env, &out.action);
            let produced = self.telemetry().last_record().expect("tick() records");
            if let Some(d) = diff_records(rec, produced) {
                return Err(d);
            }
            verified += 1;
        }
        Ok(verified)
    }
}

impl<S, P, M, C, Ad, F> FallibleLoop<S, P, M, C, Ad, F> {
    /// Re-drive this (freshly built) fallible loop against a recording,
    /// fault schedule included: with the sensor/perceptor wrapped in the same
    /// seeded [`FaultInjector`](crate::fault::FaultInjector)s as the recorded
    /// run, every dropout, retry, hold and fallback recurs at the same tick,
    /// and the telemetry must match bit-exactly. Returns the number of ticks
    /// verified, or the first [`Divergence`].
    pub fn replay<E>(
        &mut self,
        env: &mut E,
        recording: &Recording,
        mut apply: impl FnMut(&mut E, &C::Action),
    ) -> Result<u64, Divergence>
    where
        S: TrySensor<E>,
        P: TryPerceptor<S::Reading, Features = F>,
        F: Clone + FiniteCheck,
        M: Monitor<F>,
        C: FailSafe<F>,
        Ad: AdaptationPolicy<S, C::Action>,
    {
        let mut verified = 0u64;
        for rec in &recording.ticks {
            let out = self.tick(env);
            apply(env, &out.action);
            let produced = self.telemetry().last_record().expect("tick() records");
            if let Some(d) = diff_records(rec, produced) {
                return Err(d);
            }
            verified += 1;
        }
        Ok(verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultProfile, RecoveryPolicy, Reliable, WithFallback};
    use crate::precision::Precision;
    use crate::stage::{AlwaysTrust, FnController, FnPerceptor, FnSensor, StageContext};
    use crate::trace::StageBreakdown;
    use crate::LoopBuilder;

    fn sample_record(tick: u64, energy: f64) -> TickRecord {
        let mut stages = StageBreakdown::new();
        stages.add(StageId::Sense, energy, 1e-4);
        TickRecord {
            tick,
            energy_j: energy,
            latency_s: 1e-4,
            trust: Trust::Trusted,
            precision: Precision::F64,
            stages,
        }
    }

    #[test]
    fn recording_jsonl_round_trips() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.1, Trust::Suspect(1.0 / 3.0));
        t.record(0.1 + 0.2, 2e-4, Trust::Trusted);
        let rec = Recording::capture("rt", 42, &t).with_spans(vec![Span {
            tick: 0,
            stage: StageId::Perceive,
            start_s: 0.5,
            end_s: 0.75,
            energy_j: 1e-3,
            latency_s: 2e-4,
            ok: true,
        }]);
        let doc = rec.to_jsonl();
        let parsed = Recording::from_jsonl(&doc);
        assert_eq!(parsed, rec);
        assert_eq!(parsed.meta.name, "rt");
        assert_eq!(parsed.meta.seed, 42);
        assert_eq!(parsed.meta.ticks, 2);
        assert_eq!(parsed.len(), 2);
        assert!(!parsed.is_empty());
    }

    #[test]
    fn from_jsonl_skips_garbage_and_defaults_meta() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.1, Trust::Trusted);
        let mut doc = String::from("garbage\n{\"type\":\"unknown\"}\n");
        doc.push_str(&tick_to_json(t.records().next().unwrap()));
        doc.push('\n');
        let parsed = Recording::from_jsonl(&doc);
        assert_eq!(parsed.meta.name, "unnamed");
        assert_eq!(parsed.meta.ticks, 1);
        assert_eq!(parsed.ticks.len(), 1);
        assert!(parsed.spans.is_empty());
    }

    #[test]
    fn diff_records_names_the_field() {
        let a = sample_record(3, 1e-3);
        assert_eq!(diff_records(&a, &a), None);

        let mut b = a;
        b.energy_j = 2e-3;
        let d = diff_records(&a, &b).unwrap();
        assert_eq!(d.tick, 3);
        assert_eq!(d.field, "energy_j");
        assert_eq!(d.recorded, "0.001");
        assert_eq!(d.replayed, "0.002");
        assert!(d.to_string().contains("tick 3"), "{d}");

        let mut c = a;
        c.stages.add(StageId::Monitor, 0.0, 5e-5);
        let d = diff_records(&a, &c).unwrap();
        assert_eq!(d.field, "stages.monitor.latency_s");

        let mut e = a;
        e.trust = Trust::Suspect(0.5);
        let d = diff_records(&a, &e).unwrap();
        assert_eq!(d.field, "trust");
        assert_eq!(d.recorded, "trusted");
        assert_eq!(d.replayed, "suspect(0.5)");

        let mut p = a;
        p.precision = Precision::F32;
        let d = diff_records(&a, &p).unwrap();
        assert_eq!(d.field, "precision");
        assert_eq!((d.recorded.as_str(), d.replayed.as_str()), ("f64", "f32"));
    }

    #[test]
    fn meta_captures_isa_and_legacy_meta_defaults_to_unknown() {
        let mut t = LoopTelemetry::new();
        t.record(1.0, 0.1, Trust::Trusted);
        let rec = Recording::capture("isa-rt", 1, &t);
        assert!(
            ["avx2+fma", "sse2", "scalar"].contains(&rec.meta.isa.as_str()),
            "unexpected isa {:?}",
            rec.meta.isa
        );
        let parsed = Recording::from_jsonl(&rec.to_jsonl());
        assert_eq!(parsed.meta, rec.meta);
        // A meta line written before the isa header existed still parses.
        let legacy = "{\"type\":\"replay_meta\",\"name\":\"old\",\"seed\":9,\"ticks\":0}\n";
        let parsed = Recording::from_jsonl(legacy);
        assert_eq!(parsed.meta.isa, "unknown");
        assert_eq!(parsed.meta.seed, 9);
        assert_eq!(parsed.meta.name, "old");
    }

    #[test]
    fn diff_records_identifies_nans_and_distinguishes_signed_zero() {
        let mut a = sample_record(0, 1e-3);
        let mut b = a;
        a.latency_s = f64::NAN;
        b.latency_s = -f64::NAN;
        assert_eq!(diff_records(&a, &b), None, "all NaNs compare equal");
        b.latency_s = 0.0;
        a.latency_s = -0.0;
        let d = diff_records(&a, &b).unwrap();
        assert_eq!(d.field, "latency_s", "-0.0 and 0.0 differ bitwise");
    }

    #[test]
    fn first_divergence_reports_prefix_truncation() {
        let recs = vec![sample_record(0, 1e-3), sample_record(1, 2e-3)];
        assert_eq!(first_divergence(&recs, &recs), None);
        let d = first_divergence(&recs, &recs[..1]).unwrap();
        assert_eq!(d.field, "tick_count");
        assert_eq!(d.tick, 1);
        assert_eq!((d.recorded.as_str(), d.replayed.as_str()), ("2", "1"));
    }

    #[allow(clippy::type_complexity)]
    fn scalar_loop() -> SensingActionLoop<
        FnSensor<impl FnMut(&f64, &mut StageContext) -> f64>,
        FnPerceptor<impl FnMut(&f64, &mut StageContext) -> f64>,
        AlwaysTrust,
        FnController<impl FnMut(&f64, Trust, &mut StageContext) -> f64>,
        crate::adapt::NoAdaptation,
    > {
        LoopBuilder::new("replay-unit").build(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-6, 1e-4);
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.5 * f),
        )
    }

    #[test]
    fn deterministic_loop_replays_bit_exactly() {
        let mut looop = scalar_loop();
        let mut env = 4.0f64;
        looop.run(&mut env, 25, |e, a| *e += a);
        let recording = Recording::capture("replay-unit", 0, looop.telemetry());

        let mut env = 4.0f64;
        let verified = scalar_loop()
            .replay(&mut env, &recording, |e, a| *e += a)
            .expect("bit-exact replay");
        assert_eq!(verified, 25);
    }

    #[test]
    fn perturbed_environment_diverges_with_named_tick() {
        let mut looop = scalar_loop();
        let mut env = 4.0f64;
        looop.run(&mut env, 10, |e, a| *e += a);
        let recording = Recording::capture("replay-unit", 0, looop.telemetry());

        // Same loop, perturbed environment dynamics from tick 5 on: the
        // controller's decision changes, but the scalar loop charges
        // constant costs, so only a *charging* perturbation is visible.
        // Perturb the sensor cost instead, from tick 5 on.
        let mut tick = 0u64;
        let mut replayed = LoopBuilder::new("replay-unit").build(
            FnSensor::new(move |e: &f64, ctx: &mut StageContext| {
                let cost = if tick >= 5 { 2e-6 } else { 1e-6 };
                tick += 1;
                ctx.charge(cost, 1e-4);
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.5 * f),
        );
        let mut env = 4.0f64;
        let d = replayed
            .replay(&mut env, &recording, |e, a| *e += a)
            .unwrap_err();
        assert_eq!(d.tick, 5, "first divergent tick must be named: {d}");
        assert_eq!(d.field, "energy_j");
    }

    #[test]
    fn fallible_loop_replays_fault_schedule_from_seed() {
        let build = |seed: u64| {
            FallibleLoop::new(
                "faulty-replay",
                FaultInjector::new(
                    FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                        ctx.charge(2e-4, 1e-3);
                        *e
                    }),
                    FaultProfile {
                        dropout: 0.2,
                        stuck: 0.05,
                        latency_spike: 0.05,
                        spike_latency_s: 0.05,
                        nan: 0.05,
                    },
                    seed,
                ),
                Reliable(FnPerceptor::new(|r: &f64, _: &mut StageContext| *r)),
                AlwaysTrust,
                WithFallback::new(
                    FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.4 * f),
                    0.0,
                ),
            )
            .with_recovery(RecoveryPolicy {
                max_retries: 1,
                retry_energy_j: 5e-5,
                max_hold_ticks: 2,
                staleness_decay: 0.3,
                latency_budget_s: Some(0.01),
            })
        };
        let seed = 77;
        let mut looop = build(seed);
        let mut env = 3.0f64;
        looop.run(&mut env, 200, |e, a| *e += a + 0.01);
        assert!(looop.telemetry().fault_counters().faults > 0);
        let recording = Recording::capture("faulty-replay", seed, looop.telemetry());

        // Same seed: every fault recurs, bit-exact.
        let mut env = 3.0f64;
        let verified = build(recording.meta.seed)
            .replay(&mut env, &recording, |e, a| *e += a + 0.01)
            .expect("same seed must replay bit-exactly");
        assert_eq!(verified, 200);

        // Different seed: a different fault schedule must diverge, and the
        // diagnosis names a real tick of the recording.
        let mut env = 3.0f64;
        let d = build(seed + 1)
            .replay(&mut env, &recording, |e, a| *e += a + 0.01)
            .unwrap_err();
        assert!(d.tick < 200, "{d}");
    }

    #[test]
    fn replay_verifies_beyond_ring_capacity() {
        // Recording ring smaller than the run: replay still verifies every
        // *retained* tick. Build the recording from a capacity-capped run
        // and replay a fresh full-capacity loop against it; the recorded
        // ticks start mid-run, so the fresh loop diverges on the very first
        // record (tick index mismatch) — named as such.
        let mut looop = scalar_loop();
        let mut env = 4.0f64;
        looop.run(&mut env, 10, |e, a| *e += a);
        let mut capped = Recording::capture("replay-unit", 0, looop.telemetry());
        capped.ticks.drain(..5); // simulate ring eviction of the first 5
        let mut env = 4.0f64;
        let d = scalar_loop()
            .replay(&mut env, &capped, |e, a| *e += a)
            .unwrap_err();
        assert_eq!(d.field, "tick");
        assert_eq!(d.recorded, "5");
        assert_eq!(d.replayed, "0");
    }

    #[test]
    fn last_record_is_most_recent_across_wraparound() {
        let mut t = LoopTelemetry::with_capacity(3);
        assert_eq!(t.last_record(), None);
        for i in 0..7 {
            t.record(i as f64, 0.0, Trust::Trusted);
            assert_eq!(t.last_record().unwrap().tick, i);
        }
    }
}
