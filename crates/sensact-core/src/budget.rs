//! Energy and latency budgets.
//!
//! Edge platforms run from batteries and deadlines; the paper's co-design
//! thesis is that sensing/compute effort must be allocated against explicit
//! budgets. [`EnergyBudget`] tracks consumption against a capacity and
//! reports pressure, which the adaptation policies use to throttle sensing.

use crate::checkpoint::{Checkpoint, CheckpointError, Section, StageState};

/// A consumable energy budget with an optional per-tick latency deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    capacity_j: f64,
    consumed_j: f64,
    deadline_s: Option<f64>,
    deadline_misses: u64,
}

impl EnergyBudget {
    /// A finite budget of `capacity_j` joules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive.
    pub fn new(capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "capacity must be positive");
        EnergyBudget {
            capacity_j,
            consumed_j: 0.0,
            deadline_s: None,
            deadline_misses: 0,
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        EnergyBudget::new(f64::INFINITY)
    }

    /// Attach a per-tick latency deadline (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s` is not positive.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Record one tick's consumption.
    pub fn consume(&mut self, energy_j: f64, latency_s: f64) {
        self.consumed_j += energy_j.max(0.0);
        if let Some(d) = self.deadline_s {
            if latency_s > d {
                self.deadline_misses += 1;
            }
        }
    }

    /// Total energy consumed (joules).
    pub fn consumed_j(&self) -> f64 {
        self.consumed_j
    }

    /// Remaining energy (joules); infinite for unlimited budgets.
    pub fn remaining_j(&self) -> f64 {
        (self.capacity_j - self.consumed_j).max(0.0)
    }

    /// Whether the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.consumed_j >= self.capacity_j
    }

    /// Fraction of capacity consumed, in `[0, 1]` (0 for unlimited).
    pub fn pressure(&self) -> f64 {
        if self.capacity_j.is_infinite() {
            0.0
        } else {
            (self.consumed_j / self.capacity_j).clamp(0.0, 1.0)
        }
    }

    /// Ticks whose latency exceeded the deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }
}

impl Default for EnergyBudget {
    fn default() -> Self {
        EnergyBudget::unlimited()
    }
}

impl StageState for EnergyBudget {
    fn save_state(&self, ckpt: &mut Checkpoint, ns: &str) {
        let mut s = Section::new(ns);
        // `consumed_j` drives pressure, which drives the precision schedule
        // and the adaptation policies — restoring it bit-exactly is what
        // keeps a resumed loop's precision/adaptation decisions on the
        // recorded trajectory.
        s.put_f64("consumed_j", self.consumed_j);
        s.put_u64("deadline_misses", self.deadline_misses);
        ckpt.push(s);
    }

    fn restore_state(&mut self, ckpt: &Checkpoint, ns: &str) -> Result<(), CheckpointError> {
        let s = ckpt.section(ns)?;
        self.consumed_j = s.get_f64("consumed_j")?;
        self.deadline_misses = s.get_u64("deadline_misses")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumption_and_pressure() {
        let mut b = EnergyBudget::new(10.0);
        assert_eq!(b.pressure(), 0.0);
        b.consume(2.5, 0.0);
        assert_eq!(b.consumed_j(), 2.5);
        assert_eq!(b.remaining_j(), 7.5);
        assert_eq!(b.pressure(), 0.25);
        assert!(!b.exhausted());
        b.consume(20.0, 0.0);
        assert!(b.exhausted());
        assert_eq!(b.remaining_j(), 0.0);
        assert_eq!(b.pressure(), 1.0);
    }

    #[test]
    fn unlimited_budget_never_pressures() {
        let mut b = EnergyBudget::unlimited();
        b.consume(1e12, 0.0);
        assert_eq!(b.pressure(), 0.0);
        assert!(!b.exhausted());
        assert!(b.remaining_j().is_infinite());
    }

    #[test]
    fn deadline_misses_counted() {
        let mut b = EnergyBudget::new(100.0).with_deadline(0.01);
        b.consume(0.0, 0.005);
        b.consume(0.0, 0.02);
        b.consume(0.0, 0.05);
        assert_eq!(b.deadline_misses(), 2);
    }

    #[test]
    fn no_deadline_no_misses() {
        let mut b = EnergyBudget::new(100.0);
        b.consume(0.0, 1e9);
        assert_eq!(b.deadline_misses(), 0);
    }

    #[test]
    fn negative_energy_ignored() {
        let mut b = EnergyBudget::new(10.0);
        b.consume(-5.0, 0.0);
        assert_eq!(b.consumed_j(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = EnergyBudget::new(0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use sensact_math::rng::StdRng;

    /// Consumption accounting is exact, pressure is monotone, and
    /// remaining + consumed covers capacity.
    #[test]
    fn prop_budget_accounting() {
        let mut rng = StdRng::seed_from_u64(0xB0D601);
        for _ in 0..256 {
            let capacity = rng.random_range(0.1..1e6);
            let n = rng.random_range(1..32usize);
            let charges: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..100.0)).collect();
            let mut b = EnergyBudget::new(capacity);
            let mut prev_pressure = 0.0;
            let mut total = 0.0;
            for c in &charges {
                b.consume(*c, 0.0);
                total += c;
                assert!((b.consumed_j() - total).abs() < 1e-9);
                assert!(b.pressure() >= prev_pressure - 1e-12);
                prev_pressure = b.pressure();
                assert!(b.remaining_j() >= 0.0);
                if total < capacity {
                    assert!((b.remaining_j() - (capacity - total)).abs() < 1e-9);
                }
            }
            assert_eq!(b.exhausted(), total >= capacity);
        }
    }
}
