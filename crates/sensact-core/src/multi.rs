//! Federated, multi-agent sensing-action loops (paper §VII).
//!
//! The core coordination primitive: `N` agents that each need full 360°
//! situational awareness split the azimuth circle into arcs proportional to
//! their remaining battery, sense only their own arc, and share observations
//! over a message bus. Communication is orders of magnitude cheaper than
//! active sensing, so coordinated awareness costs roughly `1/N` of solo
//! sensing — the paper's conclusion reports a ~3× reduction with this scheme.

use crate::metrics::MetricsRegistry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc as StdArc;
use std::sync::Mutex;

/// Identifier of an agent in a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

impl std::fmt::Display for AgentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "agent-{}", self.0)
    }
}

/// A contiguous azimuth arc `[start, end)` in degrees, `0..360`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AzimuthArc {
    /// Inclusive start (degrees).
    pub start_deg: f64,
    /// Exclusive end (degrees); may exceed 360 to express wrap-around.
    pub end_deg: f64,
}

impl AzimuthArc {
    /// Arc width in degrees.
    pub fn width(&self) -> f64 {
        (self.end_deg - self.start_deg).max(0.0)
    }

    /// Whether an azimuth (degrees, any real) falls inside the arc.
    pub fn contains(&self, azimuth_deg: f64) -> bool {
        let a = azimuth_deg.rem_euclid(360.0);
        let s = self.start_deg.rem_euclid(360.0);
        let w = self.width();
        let rel = (a - s).rem_euclid(360.0);
        rel < w
    }
}

/// An agent's sensing economics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentProfile {
    /// Agent identity.
    pub id: AgentId,
    /// Energy to actively sense one degree of azimuth (joules).
    pub sense_energy_per_deg: f64,
    /// Energy to receive one degree of shared observation (joules).
    pub comm_energy_per_deg: f64,
    /// Remaining battery (joules) — arcs are sized proportionally to this.
    pub battery_j: f64,
}

impl AgentProfile {
    /// A homogeneous default profile: sensing 100× the cost of communication.
    pub fn homogeneous(id: AgentId) -> Self {
        AgentProfile {
            id,
            sense_energy_per_deg: 1e-3,
            comm_energy_per_deg: 1e-5,
            battery_j: 100.0,
        }
    }
}

/// An arc assignment for one agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArcAssignment {
    /// The agent.
    pub id: AgentId,
    /// The arc it must actively sense.
    pub arc: AzimuthArc,
}

/// Splits the circle among agents proportionally to battery and prices the
/// resulting energy.
#[derive(Debug, Clone, Default)]
pub struct CoverageCoordinator;

impl CoverageCoordinator {
    /// New coordinator.
    pub fn new() -> Self {
        CoverageCoordinator
    }

    /// Partition 360° among the agents, arc width proportional to remaining
    /// battery (healthier agents sense more).
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty or total battery is not positive.
    pub fn assign(&self, agents: &[AgentProfile]) -> Vec<ArcAssignment> {
        assert!(!agents.is_empty(), "no agents to coordinate");
        let total_battery: f64 = agents.iter().map(|a| a.battery_j).sum();
        assert!(total_battery > 0.0, "fleet battery exhausted");
        let mut start = 0.0;
        let mut out = Vec::with_capacity(agents.len());
        for a in agents {
            let width = 360.0 * a.battery_j / total_battery;
            out.push(ArcAssignment {
                id: a.id,
                arc: AzimuthArc {
                    start_deg: start,
                    end_deg: start + width,
                },
            });
            start += width;
        }
        // Close the circle exactly despite floating-point accumulation.
        if let Some(last) = out.last_mut() {
            last.arc.end_deg = 360.0;
        }
        out
    }

    /// Re-partition the circle after fleet membership changed, preserving
    /// assignment *stability* for surviving agents: survivors keep their
    /// relative order from `previous` (so their arc starts move as little as
    /// the battery weights allow, and the first survivor stays anchored where
    /// it was), while joining agents are appended after them in `agents`
    /// order. Departed agents are simply dropped.
    ///
    /// With an unchanged membership and unchanged batteries this reproduces
    /// `previous` exactly, so a coordinator may call it every epoch.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty or total battery is not positive (via
    /// [`CoverageCoordinator::assign`]).
    pub fn reassign(
        &self,
        previous: &[ArcAssignment],
        agents: &[AgentProfile],
    ) -> Vec<ArcAssignment> {
        let mut ordered: Vec<AgentProfile> = Vec::with_capacity(agents.len());
        // Survivors first, in their previous assignment order.
        for prev in previous {
            if let Some(a) = agents.iter().find(|a| a.id == prev.id) {
                ordered.push(*a);
            }
        }
        // Then joiners, in the order the caller listed them.
        for a in agents {
            if !previous.iter().any(|p| p.id == a.id) {
                ordered.push(*a);
            }
        }
        self.assign(&ordered)
    }

    /// Energy for one agent to sense the full circle alone.
    pub fn solo_energy(&self, agent: &AgentProfile) -> f64 {
        agent.sense_energy_per_deg * 360.0
    }

    /// Energy for one agent under an assignment: active sensing of its own
    /// arc plus receiving the remaining degrees from peers.
    pub fn coordinated_energy(&self, agent: &AgentProfile, assignment: &ArcAssignment) -> f64 {
        let own = assignment.arc.width();
        agent.sense_energy_per_deg * own + agent.comm_energy_per_deg * (360.0 - own)
    }

    /// Fleet-wide energy-reduction factor of coordination vs. everyone
    /// sensing solo.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty (via [`CoverageCoordinator::assign`]).
    pub fn fleet_reduction_factor(&self, agents: &[AgentProfile]) -> f64 {
        let assignments = self.assign(agents);
        let solo: f64 = agents.iter().map(|a| self.solo_energy(a)).sum();
        let coord: f64 = agents
            .iter()
            .zip(&assignments)
            .map(|(a, asg)| self.coordinated_energy(a, asg))
            .sum();
        solo / coord
    }
}

/// One shared observation: an agent covered an arc and publishes a summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcObservation {
    /// Publishing agent.
    pub from: AgentId,
    /// Covered arc.
    pub arc: AzimuthArc,
    /// Arbitrary feature payload (e.g. detected-object summaries).
    pub payload: Vec<f64>,
}

/// Snapshot of an [`ObservationBus`]'s traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusCounters {
    /// Publish calls accepted (the `from` agent was a bus member).
    pub published: u64,
    /// Per-peer deliveries that reached a live receiver.
    pub delivered: u64,
    /// Publish calls rejected (out-of-range `from`) plus deliveries dropped
    /// on disconnected peers.
    pub rejected: u64,
}

/// A broadcast bus connecting fleet members (`std::sync::mpsc` channels under
/// the hood). Every published observation is delivered to every *other* agent.
///
/// Traffic is counted with atomics ([`ObservationBus::counters`]) because
/// [`ObservationBus::publish`] takes `&self` and may be called from several
/// threads.
#[derive(Debug)]
pub struct ObservationBus {
    senders: Vec<Sender<ArcObservation>>,
    /// Untaken receiving endpoints, behind a mutex so the bus as a whole is
    /// `Sync` (a bare `Receiver` is not) and can be shared across publisher
    /// threads as its documentation promises.
    receivers: Mutex<Vec<Option<Receiver<ArcObservation>>>>,
    published: AtomicU64,
    delivered: AtomicU64,
    rejected: AtomicU64,
}

impl ObservationBus {
    /// A bus for `n` agents.
    pub fn new(n: usize) -> Self {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        ObservationBus {
            senders,
            receivers: Mutex::new(receivers),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Take agent `i`'s receiving endpoint (each can be taken once).
    ///
    /// Returns `None` when `i` is out of range or the endpoint was already
    /// taken — a runtime that restarts a loop probes for its endpoint rather
    /// than trusting that nobody claimed it first, so neither case panics.
    pub fn take_receiver(&self, i: usize) -> Option<Receiver<ArcObservation>> {
        self.receivers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(i)?
            .take()
    }

    /// Publish an observation from agent `from` to all other agents.
    ///
    /// `from` must identify a bus member: an out-of-range id would otherwise
    /// skip the self-delivery exclusion and broadcast to *everyone*,
    /// spoofing a nonexistent peer. Debug builds panic on an out-of-range
    /// `from`; release builds deliver to no one.
    pub fn publish(&self, from: AgentId, obs: ArcObservation) {
        debug_assert!(
            from.0 < self.senders.len(),
            "{from} is not a member of this {}-agent bus",
            self.senders.len()
        );
        if from.0 >= self.senders.len() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // `published` is bumped with Release *before* any delivery counter,
        // and `counters()` reads it *after* the delivery counters with
        // Acquire — so a concurrent snapshot can never observe deliveries
        // from a publish it has not yet counted (see `counters`).
        self.published.fetch_add(1, Ordering::Release);
        for (i, tx) in self.senders.iter().enumerate() {
            if i != from.0 {
                // A disconnected peer (dropped receiver) is not an error.
                match tx.send(obs.clone()) {
                    Ok(()) => {
                        self.delivered.fetch_add(1, Ordering::Release);
                    }
                    Err(_) => {
                        self.rejected.fetch_add(1, Ordering::Release);
                    }
                }
            }
        }
    }

    /// Snapshot the traffic counters.
    ///
    /// The snapshot is *causally consistent* under concurrent publishing:
    /// delivery counters are loaded first (Acquire) and `published` last, so
    /// every delivery or rejection the snapshot contains is matched by its
    /// publish. Three independent `Relaxed` loads could instead observe a
    /// torn state — deliveries from a publish whose `published` increment is
    /// missing — which a concurrent exporter would report as
    /// `delivered > published × (n−1)`.
    pub fn counters(&self) -> BusCounters {
        let delivered = self.delivered.load(Ordering::Acquire);
        let rejected = self.rejected.load(Ordering::Acquire);
        let published = self.published.load(Ordering::Acquire);
        BusCounters {
            published,
            delivered,
            rejected,
        }
    }

    /// Number of agents on the bus.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the bus has no members.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Export the traffic counters into a [`MetricsRegistry`] under
    /// `bus.*` names. Idempotent: the counters are absolute totals, so
    /// re-exporting the same bus overwrites rather than double-counts.
    pub fn export_into(&self, registry: &mut MetricsRegistry) {
        let c = self.counters();
        registry.set_counter("bus.published_total", c.published);
        registry.set_counter("bus.delivered_total", c.delivered);
        registry.set_counter("bus.rejected_total", c.rejected);
    }
}

/// A shared fleet blackboard combining everyone's latest arc observations;
/// protected by a mutex for cross-thread use.
///
/// The mutex is poison-tolerant: if one agent thread panics while posting,
/// the rest of the fleet keeps reading and writing the board (each entry is
/// a complete `insert`, so the map is never left half-updated) instead of
/// cascading the panic fleet-wide.
#[derive(Debug, Clone, Default)]
pub struct FleetBlackboard {
    inner: StdArc<Mutex<HashMap<AgentId, ArcObservation>>>,
}

impl FleetBlackboard {
    /// Empty blackboard.
    pub fn new() -> Self {
        FleetBlackboard::default()
    }

    /// Lock the board, recovering the guard from a poisoned mutex — one
    /// panicked agent must not take down every other loop in the fleet.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<AgentId, ArcObservation>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Post (or replace) an agent's latest observation.
    pub fn post(&self, obs: ArcObservation) {
        self.lock().insert(obs.from, obs);
    }

    /// Total azimuth coverage (degrees, ≤ 360) of all posted observations,
    /// assuming coordinator-assigned (disjoint) arcs.
    pub fn coverage_deg(&self) -> f64 {
        self.lock()
            .values()
            .map(|o| o.arc.width())
            .sum::<f64>()
            .min(360.0)
    }

    /// Number of agents that have posted.
    pub fn contributors(&self) -> usize {
        self.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<AgentProfile> {
        (0..n)
            .map(|i| AgentProfile::homogeneous(AgentId(i)))
            .collect()
    }

    #[test]
    fn arc_contains_handles_wraparound() {
        let arc = AzimuthArc {
            start_deg: 350.0,
            end_deg: 370.0,
        };
        assert!(arc.contains(355.0));
        assert!(arc.contains(5.0));
        assert!(!arc.contains(20.0));
        assert_eq!(arc.width(), 20.0);
    }

    #[test]
    fn assignment_partitions_circle() {
        let coordinator = CoverageCoordinator::new();
        let assignments = coordinator.assign(&fleet(4));
        assert_eq!(assignments.len(), 4);
        let total: f64 = assignments.iter().map(|a| a.arc.width()).sum();
        assert!((total - 360.0).abs() < 1e-9);
        // Contiguous arcs.
        for w in assignments.windows(2) {
            assert!((w[0].arc.end_deg - w[1].arc.start_deg).abs() < 1e-9);
        }
    }

    #[test]
    fn battery_weighted_assignment() {
        let mut agents = fleet(2);
        agents[0].battery_j = 75.0;
        agents[1].battery_j = 25.0;
        let assignments = CoverageCoordinator::new().assign(&agents);
        assert!((assignments[0].arc.width() - 270.0).abs() < 1e-9);
        assert!((assignments[1].arc.width() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn three_agents_give_threefold_energy_reduction() {
        // The conclusion's headline claim: ~3× with a 3-agent fleet.
        let factor = CoverageCoordinator::new().fleet_reduction_factor(&fleet(3));
        assert!(
            (2.5..3.2).contains(&factor),
            "3-agent reduction factor {factor}"
        );
    }

    #[test]
    fn reduction_grows_with_fleet_size_until_comm_bound() {
        let coordinator = CoverageCoordinator::new();
        let f2 = coordinator.fleet_reduction_factor(&fleet(2));
        let f4 = coordinator.fleet_reduction_factor(&fleet(4));
        let f8 = coordinator.fleet_reduction_factor(&fleet(8));
        assert!(f2 < f4 && f4 < f8, "{f2} {f4} {f8}");
        // Communication floor bounds the saving: factor < sense/comm ratio.
        assert!(f8 < 100.0);
    }

    #[test]
    fn coordinated_energy_cheaper_than_solo() {
        let coordinator = CoverageCoordinator::new();
        let agents = fleet(3);
        let assignments = coordinator.assign(&agents);
        for (a, asg) in agents.iter().zip(&assignments) {
            assert!(coordinator.coordinated_energy(a, asg) < coordinator.solo_energy(a));
        }
    }

    #[test]
    fn bus_broadcasts_to_others_only() {
        let bus = ObservationBus::new(3);
        let rx0 = bus.take_receiver(0).unwrap();
        let rx1 = bus.take_receiver(1).unwrap();
        let rx2 = bus.take_receiver(2).unwrap();
        let obs = ArcObservation {
            from: AgentId(0),
            arc: AzimuthArc {
                start_deg: 0.0,
                end_deg: 120.0,
            },
            payload: vec![1.0, 2.0],
        };
        bus.publish(AgentId(0), obs.clone());
        assert!(rx0.try_recv().is_err(), "publisher must not self-receive");
        assert_eq!(rx1.try_recv().unwrap(), obs);
        assert_eq!(rx2.try_recv().unwrap(), obs);
    }

    #[test]
    fn bus_works_across_threads() {
        let bus = ObservationBus::new(2);
        let rx1 = bus.take_receiver(1).unwrap();
        let handle = std::thread::spawn(move || rx1.recv().unwrap());
        bus.publish(
            AgentId(0),
            ArcObservation {
                from: AgentId(0),
                arc: AzimuthArc {
                    start_deg: 0.0,
                    end_deg: 180.0,
                },
                payload: vec![],
            },
        );
        let got = handle.join().unwrap();
        assert_eq!(got.from, AgentId(0));
    }

    #[test]
    fn bus_counters_track_publishes_deliveries_and_drops() {
        let bus = ObservationBus::new(3);
        let _rx0 = bus.take_receiver(0).unwrap();
        let rx1 = bus.take_receiver(1).unwrap();
        drop(bus.take_receiver(2).unwrap()); // agent 2 went offline
        let obs = ArcObservation {
            from: AgentId(0),
            arc: AzimuthArc {
                start_deg: 0.0,
                end_deg: 90.0,
            },
            payload: vec![],
        };
        bus.publish(AgentId(0), obs.clone());
        bus.publish(AgentId(1), obs.clone());
        assert_eq!(rx1.try_recv().unwrap(), obs);
        let c = bus.counters();
        assert_eq!(c.published, 2);
        // Tick 1: delivered to 1 and dropped on 2; tick 2: delivered to 0
        // and dropped on 2.
        assert_eq!(c.delivered, 2);
        assert_eq!(c.rejected, 2);
        let mut reg = MetricsRegistry::new();
        bus.export_into(&mut reg);
        assert_eq!(reg.counter("bus.published_total"), 2);
        assert_eq!(reg.counter("bus.delivered_total"), 2);
        assert_eq!(reg.counter("bus.rejected_total"), 2);
        // Re-export is idempotent: a scrape endpoint reading the same bus
        // twice must not double-count.
        bus.export_into(&mut reg);
        assert_eq!(reg.counter("bus.published_total"), 2);
        assert_eq!(reg.counter("bus.delivered_total"), 2);
        assert_eq!(reg.counter("bus.rejected_total"), 2);
        assert_eq!(bus.len(), 3);
        assert!(!bus.is_empty());
    }

    #[test]
    fn bus_counter_snapshots_are_causally_consistent_under_contention() {
        // Two publisher threads hammer the bus while the main thread
        // snapshots. Every snapshot must satisfy the causal invariant:
        // deliveries + rejections never exceed published × (n−1) — i.e. no
        // snapshot observes a delivery whose publish it has not counted.
        let n = 4;
        let bus = ObservationBus::new(n);
        // Receivers stay alive (undrained) so sends succeed.
        let _rxs: Vec<_> = (0..n).map(|i| bus.take_receiver(i).unwrap()).collect();
        let bus = StdArc::new(bus);
        let obs = |from: usize| ArcObservation {
            from: AgentId(from),
            arc: AzimuthArc {
                start_deg: 0.0,
                end_deg: 1.0,
            },
            payload: vec![],
        };
        let mut handles = Vec::new();
        for from in 0..2 {
            let bus = StdArc::clone(&bus);
            let o = obs(from);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    bus.publish(AgentId(from), o.clone());
                }
            }));
        }
        for _ in 0..20_000 {
            let c = bus.counters();
            assert!(
                c.delivered + c.rejected <= c.published * (n as u64 - 1),
                "torn snapshot: {c:?}"
            );
        }
        for h in handles {
            h.join().unwrap();
        }
        let c = bus.counters();
        assert_eq!(c.published, 4000);
        assert_eq!(c.delivered + c.rejected, c.published * (n as u64 - 1));
    }

    #[test]
    fn blackboard_accumulates_coverage() {
        let board = FleetBlackboard::new();
        let coordinator = CoverageCoordinator::new();
        let agents = fleet(3);
        for asg in coordinator.assign(&agents) {
            board.post(ArcObservation {
                from: asg.id,
                arc: asg.arc,
                payload: vec![],
            });
        }
        assert_eq!(board.contributors(), 3);
        assert!((board.coverage_deg() - 360.0).abs() < 1e-9);
    }

    #[test]
    fn blackboard_replaces_per_agent() {
        let board = FleetBlackboard::new();
        for _ in 0..5 {
            board.post(ArcObservation {
                from: AgentId(0),
                arc: AzimuthArc {
                    start_deg: 0.0,
                    end_deg: 90.0,
                },
                payload: vec![],
            });
        }
        assert_eq!(board.contributors(), 1);
        assert_eq!(board.coverage_deg(), 90.0);
    }

    #[test]
    fn blackboard_survives_poisoned_lock() {
        // Regression: a panic while holding the blackboard mutex poisons it;
        // `lock().unwrap()` then cascaded the panic into every other agent.
        // The board must recover the guard and keep serving the fleet.
        let board = FleetBlackboard::new();
        board.post(ArcObservation {
            from: AgentId(0),
            arc: AzimuthArc {
                start_deg: 0.0,
                end_deg: 90.0,
            },
            payload: vec![],
        });
        let cloned = board.clone();
        let result = std::thread::spawn(move || {
            let _guard = cloned.inner.lock().unwrap();
            panic!("agent crashed mid-post");
        })
        .join();
        assert!(result.is_err(), "the posting thread must have panicked");
        assert!(board.inner.is_poisoned(), "the mutex must be poisoned");
        // Reads and writes still work for the surviving agents.
        assert_eq!(board.contributors(), 1);
        board.post(ArcObservation {
            from: AgentId(1),
            arc: AzimuthArc {
                start_deg: 90.0,
                end_deg: 180.0,
            },
            payload: vec![],
        });
        assert_eq!(board.contributors(), 2);
        assert!((board.coverage_deg() - 180.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no agents")]
    fn empty_fleet_panics() {
        let _ = CoverageCoordinator::new().assign(&[]);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "not a member"))]
    fn publish_from_nonmember_reaches_no_one() {
        let bus = ObservationBus::new(2);
        let rx0 = bus.take_receiver(0).unwrap();
        let rx1 = bus.take_receiver(1).unwrap();
        // AgentId(2) is not on a 2-agent bus. Debug builds panic; release
        // builds must deliver to no one (previously this spoofed a
        // broadcast to every member).
        bus.publish(
            AgentId(2),
            ArcObservation {
                from: AgentId(2),
                arc: AzimuthArc {
                    start_deg: 0.0,
                    end_deg: 90.0,
                },
                payload: vec![],
            },
        );
        assert!(rx0.try_recv().is_err());
        assert!(rx1.try_recv().is_err());
    }

    #[test]
    fn arc_contains_agrees_with_width_accounting() {
        // Property: the number of contained half-degree sample points equals
        // the arc width (capped at the full circle), for arbitrary start
        // angles (any real, including negatives) and widths (including
        // zero-width and ≥ 360° arcs).
        let mut rng = sensact_math::rng::StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let start = rng.random_range(-720.0..720.0);
            let width = rng.random_range(0.0..450.0);
            let arc = AzimuthArc {
                start_deg: start,
                end_deg: start + width,
            };
            let contained = (0..360).filter(|k| arc.contains(*k as f64 + 0.5)).count() as f64;
            let expected = width.min(360.0);
            assert!(
                (contained - expected).abs() <= 1.0,
                "arc [{start}, {}) contains {contained} samples, width {expected}",
                start + width
            );
        }
        // Degenerate endpoints of the property.
        let empty = AzimuthArc {
            start_deg: 10.0,
            end_deg: 10.0,
        };
        assert!((0..360).all(|k| !empty.contains(k as f64 + 0.5)));
        let full = AzimuthArc {
            start_deg: 123.0,
            end_deg: 123.0 + 360.0,
        };
        assert!((0..360).all(|k| full.contains(k as f64 + 0.5)));
    }

    #[test]
    fn assignment_stays_disjoint_partition_with_zero_battery_agents() {
        // Property: even with zero-battery agents (zero-width arcs), every
        // azimuth belongs to exactly one assigned arc — no gaps, no double
        // coverage.
        let mut rng = sensact_math::rng::StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let n = 2 + (trial % 6);
            let agents: Vec<AgentProfile> = (0..n)
                .map(|i| {
                    let mut a = AgentProfile::homogeneous(AgentId(i));
                    // Roughly a third of the fleet is fully drained.
                    a.battery_j = if rng.gen_f64() < 0.33 {
                        0.0
                    } else {
                        rng.random_range(1.0..100.0)
                    };
                    a
                })
                .collect();
            if agents.iter().map(|a| a.battery_j).sum::<f64>() <= 0.0 {
                continue; // assign() panics on a fully dead fleet, by contract
            }
            let assignments = CoverageCoordinator::new().assign(&agents);
            let total: f64 = assignments.iter().map(|a| a.arc.width()).sum();
            assert!((total - 360.0).abs() < 1e-9, "total width {total}");
            for _ in 0..64 {
                let az = rng.random_range(0.0..360.0);
                let owners = assignments
                    .iter()
                    .filter(|asg| asg.arc.contains(az))
                    .count();
                assert_eq!(owners, 1, "azimuth {az} owned by {owners} arcs");
            }
        }
    }

    #[test]
    fn take_receiver_is_none_on_repeat_or_out_of_range() {
        let bus = ObservationBus::new(2);
        assert!(bus.take_receiver(5).is_none(), "out-of-range index");
        let rx = bus.take_receiver(0);
        assert!(rx.is_some());
        assert!(bus.take_receiver(0).is_none(), "repeated take");
        // A restarting loop can still claim the untouched endpoint.
        assert!(bus.take_receiver(1).is_some());
    }

    #[test]
    fn reassign_keeps_survivors_stable_through_join_and_leave() {
        // The 1 → 2 → 1 membership transition: agent 0 runs solo, agent 1
        // joins, then leaves again.
        let coordinator = CoverageCoordinator::new();
        let solo = fleet(1);
        let initial = coordinator.assign(&solo);
        assert_eq!(initial[0].arc.width(), 360.0);

        // Join: the survivor must keep its anchor (arc start) while shrinking
        // to make room for the newcomer.
        let pair = fleet(2);
        let joined = coordinator.reassign(&initial, &pair);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].id, AgentId(0));
        assert_eq!(joined[0].arc.start_deg, 0.0, "survivor anchor moved");
        assert!((joined[0].arc.width() - 180.0).abs() < 1e-9);
        assert_eq!(joined[1].id, AgentId(1));
        let total: f64 = joined.iter().map(|a| a.arc.width()).sum();
        assert!((total - 360.0).abs() < 1e-9);

        // Leave: the survivor gets the full circle back, bit-identical to its
        // original solo assignment.
        let left = coordinator.reassign(&joined, &solo);
        assert_eq!(left, initial);

        // Unchanged membership is a fixpoint.
        assert_eq!(coordinator.reassign(&joined, &pair), joined);

        // Survivor ordering is taken from `previous`, not from the caller's
        // agent list: listing the fleet in reverse must not reshuffle arcs.
        let reversed: Vec<AgentProfile> = pair.iter().rev().copied().collect();
        assert_eq!(coordinator.reassign(&joined, &reversed), joined);
    }

    #[test]
    fn blackboard_contention_is_monotone_and_recovers_from_poison() {
        // ≥8 posters race `post` against a sampler calling `coverage_deg`.
        // Arcs are coordinator-assigned (disjoint), and a re-post replaces an
        // identical entry, so observed coverage must be monotone
        // non-decreasing. Midway, one poster panics while holding the lock;
        // the PR 4 poison recovery must keep everyone else running.
        let board = FleetBlackboard::new();
        let assignments = CoverageCoordinator::new().assign(&fleet(8));

        let sampler = {
            let board = board.clone();
            std::thread::spawn(move || {
                let mut last = 0.0f64;
                for _ in 0..400 {
                    let c = board.coverage_deg();
                    assert!(
                        c >= last,
                        "coverage went backwards under contention: {c} < {last}"
                    );
                    last = c;
                    std::thread::yield_now();
                }
                last
            })
        };

        let posters: Vec<_> = assignments
            .iter()
            .map(|asg| {
                let board = board.clone();
                let asg = *asg;
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        board.post(ArcObservation {
                            from: asg.id,
                            arc: asg.arc,
                            payload: vec![asg.arc.start_deg],
                        });
                        std::thread::yield_now();
                    }
                })
            })
            .collect();

        // A ninth participant crashes while holding the raw mutex, poisoning
        // it in the middle of the race.
        let crasher = {
            let board = board.clone();
            std::thread::spawn(move || {
                let _guard = board.inner.lock().unwrap_or_else(|e| e.into_inner());
                panic!("agent crashed mid-post");
            })
        };
        assert!(crasher.join().is_err(), "the crasher must have panicked");
        assert!(board.inner.is_poisoned(), "the mutex must be poisoned");

        for p in posters {
            p.join().expect("poster survived the poisoned mutex");
        }
        let final_sampled = sampler.join().expect("sampler survived");
        assert!(final_sampled <= 360.0);

        // Recovery engaged: reads and writes still work, and the fleet ended
        // fully covered despite the poisoned lock.
        assert_eq!(board.contributors(), 8);
        assert!((board.coverage_deg() - 360.0).abs() < 1e-9);
        board.post(ArcObservation {
            from: AgentId(0),
            arc: assignments[0].arc,
            payload: vec![],
        });
        assert_eq!(board.contributors(), 8);
    }
}
