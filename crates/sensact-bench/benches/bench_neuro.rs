//! Micro-bench (in-repo harness): clocked vs event-driven inference time, plus event-stream
//! primitives (Fig. 2/8 in wall-clock).

use sensact_bench::harness::Harness;
use sensact_neuro::dotie::{detect_clusters, DotieConfig};
use sensact_neuro::event::{EventStream, MovingScene, MovingSceneConfig};
use sensact_neuro::flow::{FlowModel, FlowModelKind};
use std::hint::black_box;

fn bench_neuro(c: &mut Harness) {
    let scene = MovingScene::generate(MovingSceneConfig::default(), 1);
    let mut ann = FlowModel::new(FlowModelKind::FullAnn, 32, 0);
    let mut snn = FlowModel::new(FlowModelKind::FullSnn, 32, 0);
    let mut fusion = FlowModel::new(FlowModelKind::Fusion, 32, 0);

    c.bench_function("neuro/event_simulation", |b| {
        b.iter(|| black_box(MovingScene::generate(MovingSceneConfig::default(), 2)))
    });
    c.bench_function("neuro/ann_inference", |b| {
        b.iter(|| black_box(ann.predict(black_box(&scene))))
    });
    c.bench_function("neuro/snn_inference", |b| {
        b.iter(|| black_box(snn.predict(black_box(&scene))))
    });
    c.bench_function("neuro/fusion_inference", |b| {
        b.iter(|| black_box(fusion.predict(black_box(&scene))))
    });
    c.bench_function("neuro/dotie_clustering", |b| {
        b.iter(|| {
            black_box(detect_clusters(
                black_box(&scene.events),
                &DotieConfig::default(),
            ))
        })
    });
    let packed = scene.events.to_bytes();
    c.bench_function("neuro/event_unpack", |b| {
        b.iter(|| black_box(EventStream::from_bytes(&packed)))
    });
}

fn main() {
    let mut c = Harness::new("bench_neuro");
    bench_neuro(&mut c);
    c.finish();
}
