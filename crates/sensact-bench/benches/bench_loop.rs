//! Micro-bench (in-repo harness): end-to-end sensing-action loop ticks — the §II loop
//! abstraction with and without action-to-sensing adaptation.

use sensact_bench::harness::Harness;
use sensact_core::adapt::{ActionMagnitudeRate, SensingKnobs};
use sensact_core::stage::{
    AlwaysTrust, FnController, FnPerceptor, FnSensor, Sensor, StageContext, Trust,
};
use sensact_core::LoopBuilder;
use std::hint::black_box;

#[derive(Debug)]
struct KnobSensor {
    rate: f64,
    resolution: f64,
}

impl SensingKnobs for KnobSensor {
    fn rate(&self) -> f64 {
        self.rate
    }
    fn set_rate(&mut self, r: f64) {
        self.rate = r.clamp(0.0, 1.0);
    }
    fn resolution(&self) -> f64 {
        self.resolution
    }
    fn set_resolution(&mut self, r: f64) {
        self.resolution = r.clamp(0.0, 1.0);
    }
}

impl Sensor<f64> for KnobSensor {
    type Reading = f64;
    fn sense(&mut self, env: &f64, ctx: &mut StageContext) -> f64 {
        ctx.charge(1e-6 * self.rate, 1e-6);
        *env
    }
}

fn bench_loop(c: &mut Harness) {
    c.bench_function("loop/minimal_tick", |b| {
        let mut looop = LoopBuilder::new("bench").build(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-6, 1e-6);
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.5 * f),
        );
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("loop/adaptive_tick", |b| {
        let mut looop = LoopBuilder::new("bench-adaptive").build_full(
            KnobSensor {
                rate: 1.0,
                resolution: 1.0,
            },
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            AlwaysTrust,
            FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.5 * f),
            ActionMagnitudeRate::default(),
        );
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });
}

fn main() {
    let mut c = Harness::new("bench_loop");
    bench_loop(&mut c);
    c.finish();
}
