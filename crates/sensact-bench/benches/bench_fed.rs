//! Micro-bench (in-repo harness): federated round cost — full-width/full-precision local
//! training vs the DC-NAS-pruned and HaLo-quantized variants, plus
//! speculative decoding vs plain target decoding.

use sensact_bench::harness::Harness;
use sensact_fed::client::{Client, HardwareTier};
use sensact_fed::data::Dataset;
use sensact_fed::speculative::{demo_corpus, speculative_generate, NgramModel};
use std::hint::black_box;

fn bench_fed(c: &mut Harness) {
    let data = Dataset::generate(200, 1);

    c.bench_function("fed/local_train_full", |b| {
        let mut client = Client::new(0, data.clone(), HardwareTier::EdgeGpu, 0);
        b.iter(|| black_box(client.local_train(2)))
    });
    c.bench_function("fed/local_train_pruned", |b| {
        let mut client = Client::new(0, data.clone(), HardwareTier::Mcu, 0);
        client.channel_fraction = 0.3;
        b.iter(|| black_box(client.local_train(2)))
    });
    c.bench_function("fed/local_train_quantized", |b| {
        let mut client = Client::new(0, data.clone(), HardwareTier::Mcu, 0);
        client.precision = sensact_nn::quant::Precision::Int4;
        b.iter(|| black_box(client.local_train(2)))
    });

    let draft = NgramModel::train(demo_corpus(), 2);
    let target = NgramModel::train(demo_corpus(), 5);
    c.bench_function("fed/target_greedy_decode", |b| {
        b.iter(|| black_box(target.generate("the robot", 60)))
    });
    c.bench_function("fed/speculative_decode", |b| {
        b.iter(|| black_box(speculative_generate(&draft, &target, "the robot", 60, 4)))
    });
}

fn main() {
    let mut c = Harness::new("bench_fed");
    bench_fed(&mut c);
    c.finish();
}
