//! Micro-bench (in-repo harness): STARNet scoring cost — feature extraction, deterministic
//! ELBO, and the SPSA likelihood regret at full vs low-rank adaptation
//! (the DESIGN.md §5 ablation in time).

use sensact_bench::harness::Harness;
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_nn::optim::Adam;
use sensact_nn::vae::Vae;
use sensact_nn::Tensor;
use sensact_starnet::features::extract_features;
use sensact_starnet::regret::{likelihood_regret, RegretConfig};
use sensact_starnet::spsa::SpsaConfig;
use std::hint::black_box;

fn bench_starnet(c: &mut Harness) {
    let lidar = Lidar::new(LidarConfig::default());
    let cloud = lidar.scan(&SceneGenerator::new(1).generate());
    let features = extract_features(&cloud);

    // A trained VAE over the descriptor space.
    let mut vae = Vae::new(features.len(), 32, 4, 0);
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|i| extract_features(&lidar.scan(&SceneGenerator::new(i).generate())))
        .collect();
    let x = Tensor::stack_rows(&rows);
    let mut opt = Adam::new(0.005);
    for _ in 0..100 {
        let _ = vae.train_step(&x, &mut opt, 0.1);
    }

    c.bench_function("starnet/extract_features", |b| {
        b.iter(|| black_box(extract_features(black_box(&cloud))))
    });
    let xt = Tensor::from_vec(vec![1, features.len()], features.clone());
    c.bench_function("starnet/elbo_deterministic", |b| {
        b.iter(|| black_box(vae.elbo_deterministic(black_box(&xt))))
    });
    let full = RegretConfig {
        spsa: SpsaConfig {
            iterations: 15,
            ..SpsaConfig::default()
        },
        low_rank: None,
        elbo_samples: 0,
    };
    let low = RegretConfig {
        spsa: SpsaConfig {
            iterations: 15,
            ..SpsaConfig::default()
        },
        low_rank: Some(8),
        elbo_samples: 0,
    };
    c.bench_function("starnet/regret_full_spsa", |b| {
        b.iter(|| black_box(likelihood_regret(&mut vae, black_box(&features), &full, 1)))
    });
    c.bench_function("starnet/regret_lowrank_spsa", |b| {
        b.iter(|| black_box(likelihood_regret(&mut vae, black_box(&features), &low, 1)))
    });
}

fn main() {
    let mut c = Harness::new("bench_starnet");
    bench_starnet(&mut c);
    c.finish();
}
