//! Micro-bench (in-repo harness): per-step control latency of the Fig. 5 models — the
//! wall-clock counterpart of the MAC comparison in Fig. 5a.

use sensact_bench::harness::Harness;
use sensact_koopman::baselines::{DenseKoopman, LatentModel, MlpDynamics, TransformerDynamics};
use sensact_koopman::cartpole::{CartPole, CartPoleConfig};
use sensact_koopman::control::{LqrLatentController, ShootingController};
use sensact_koopman::encoder::SpectralKoopman;
use sensact_koopman::train::collect_dataset;
use std::hint::black_box;

fn bench_koopman(c: &mut Harness) {
    let data = collect_dataset(400, 1);
    let env = CartPole::new(CartPoleConfig::default(), 0);
    let obs = env.observe();

    let mut spectral = SpectralKoopman::new(0);
    for e in 0..4 {
        spectral.train_epoch(&data, e);
    }
    let lqr = LqrLatentController::synthesize(&mut spectral, 0.001).expect("lqr");
    let z = spectral.encode(&obs);

    c.bench_function("koopman/encode", |b| {
        b.iter(|| black_box(spectral.encode(black_box(&obs))))
    });
    c.bench_function("koopman/spectral_predict", |b| {
        b.iter(|| black_box(spectral.predict(black_box(&z), 1.0)))
    });
    let mut dense = DenseKoopman::new(0);
    let zd = dense.encode(&obs);
    c.bench_function("koopman/dense_predict", |b| {
        b.iter(|| black_box(dense.predict(black_box(&zd), 1.0)))
    });
    let mut tf = TransformerDynamics::new(0);
    let zt = tf.encode(&obs);
    c.bench_function("koopman/transformer_predict", |b| {
        b.iter(|| black_box(tf.predict(black_box(&zt), 1.0)))
    });
    c.bench_function("koopman/lqr_control_step", |b| {
        b.iter(|| black_box(lqr.act(black_box(&z))))
    });
    let mut mlp = MlpDynamics::new(0);
    let zm = mlp.encode(&obs);
    let mut shooter = ShootingController::new(10.0, 0);
    c.bench_function("koopman/shooting_control_step", |b| {
        b.iter(|| black_box(shooter.act(&mut mlp, black_box(&zm))))
    });
}

fn main() {
    let mut c = Harness::new("bench_koopman");
    bench_koopman(&mut c);
    c.finish();
}
