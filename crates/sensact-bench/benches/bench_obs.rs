//! Micro-bench (in-repo harness): overhead of the observability layer.
//!
//! The acceptance target: a loop with a **disabled** tracer must tick within
//! 3 % of the pre-observability baseline, because attribution is always on
//! (per-stage ledger deltas + telemetry histograms) and span tracing is a
//! single predictable branch per stage when off.
//!
//! Rows, two workloads each (trivial empty stages expose absolute cost;
//! realistic 256-sample feature extraction is what the percentage target is
//! measured on):
//! * `*/baseline_tick` — a hand-rolled PR 2-equivalent tick: stage calls +
//!   O(1) running aggregates only, no breakdown, no histograms, no tracer;
//! * `*/untraced_tick` — [`SensingActionLoop`] with the default disabled
//!   tracer (always-on attribution included) — the <3 % row;
//! * `*/traced_sim_tick` — tracing enabled under the deterministic
//!   [`SimClock`];
//! * `*/traced_wall_tick` — tracing enabled under the monotonic wall clock;
//!
//! plus micro rows for histogram record and JSONL export/parse throughput.
//!
//! The headline realistic overhead percentages are re-measured with paired
//! interleaved batches (baseline and candidate alternating within one run)
//! so CPU frequency drift cancels — independent harness rows measured
//! minutes apart are too noisy for a 3 % verdict.
//!
//! Writes `BENCH_obs.json` at the repo root (full mode only, so CI smoke
//! runs don't clobber recorded numbers).

use sensact_bench::harness::Harness;
use sensact_bench::obsbench::{
    baseline_tick, controller, paired_realistic, realistic_perceptor, realistic_sensor,
    BaselineTelemetry,
};
use sensact_core::export::{parse_ticks, ticks_to_jsonl};
use sensact_core::stage::{FnPerceptor, FnSensor, StageContext, Trust};
use sensact_core::trace::SimClock;
use sensact_core::{Histogram, LoopBuilder, LoopTelemetry, Tracer};
use sensact_sched::{FleetConfig, FleetScheduler, LoopHandle, LoopSpec};
use std::hint::black_box;

fn sensor() -> FnSensor<impl FnMut(&f64, &mut StageContext) -> f64> {
    FnSensor::new(|e: &f64, ctx: &mut StageContext| {
        ctx.charge(1e-6, 1e-6);
        *e
    })
}

fn perceptor() -> FnPerceptor<impl FnMut(&f64, &mut StageContext) -> f64> {
    FnPerceptor::new(|r: &f64, _: &mut StageContext| *r)
}

fn main() {
    let mut c = Harness::new("bench_obs");

    c.bench_function("trivial/baseline_tick", |b| {
        let (mut s, mut p, mut k) = (sensor(), perceptor(), controller());
        let mut budget = sensact_core::EnergyBudget::unlimited();
        let mut t = BaselineTelemetry::new();
        b.iter(|| {
            black_box(baseline_tick(
                black_box(&1.0),
                &mut s,
                &mut p,
                &mut k,
                &mut budget,
                &mut t,
            ))
        })
    });

    c.bench_function("trivial/untraced_tick", |b| {
        let mut looop = LoopBuilder::new("untraced").build(sensor(), perceptor(), controller());
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("trivial/traced_sim_tick", |b| {
        let mut looop = LoopBuilder::new("traced-sim")
            .with_tracer(Tracer::sim(1e-6))
            .build(sensor(), perceptor(), controller());
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("trivial/traced_wall_tick", |b| {
        let mut looop = LoopBuilder::new("traced-wall")
            .with_tracer(Tracer::wall())
            .build(sensor(), perceptor(), controller());
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("realistic/baseline_tick", |b| {
        let (mut s, mut p, mut k) = (realistic_sensor(), realistic_perceptor(), controller());
        let mut budget = sensact_core::EnergyBudget::unlimited();
        let mut t = BaselineTelemetry::new();
        b.iter(|| {
            black_box(baseline_tick(
                black_box(&1.0),
                &mut s,
                &mut p,
                &mut k,
                &mut budget,
                &mut t,
            ))
        })
    });

    c.bench_function("realistic/untraced_tick", |b| {
        let mut looop = LoopBuilder::new("untraced-real").build(
            realistic_sensor(),
            realistic_perceptor(),
            controller(),
        );
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("realistic/traced_sim_tick", |b| {
        let mut looop = LoopBuilder::new("traced-sim-real")
            .with_tracer(Tracer::sim(1e-6))
            .build(realistic_sensor(), realistic_perceptor(), controller());
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("realistic/traced_wall_tick", |b| {
        let mut looop = LoopBuilder::new("traced-wall-real")
            .with_tracer(Tracer::wall())
            .build(realistic_sensor(), realistic_perceptor(), controller());
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("micro/histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1e-6f64;
        b.iter(|| {
            v = (v * 1.0000001).clamp(1e-9, 1e3);
            h.record(black_box(v));
        })
    });

    c.bench_function("micro/jsonl_export_parse_1k", |b| {
        let mut telemetry = LoopTelemetry::with_capacity(1000);
        for i in 0..1000u64 {
            telemetry.record(i as f64 * 1e-6, i as f64 * 1e-7, Trust::Trusted);
        }
        b.iter(|| {
            let doc = ticks_to_jsonl(black_box(&telemetry));
            black_box(parse_ticks(&doc).len())
        })
    });

    // Fleet-aggregation path: roll 16 member telemetries (counters, gauges,
    // latency histograms) up into one fleet-level registry per scrape.
    c.bench_function("micro/fleet_rollup_16", |b| {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 2,
            watts_cap: None,
            seed: 1,
        });
        for i in 0..16 {
            let looop =
                LoopBuilder::new(format!("m{i}")).build(sensor(), perceptor(), controller());
            sched.register(
                LoopHandle::closed(looop, 1.0f64, |_, _| {}),
                LoopSpec::periodic(1e-3),
            );
        }
        let _ = sched.run_deterministic(0.1, &mut SimClock::new());
        b.iter(|| black_box(sched.rollup_metrics().counter("loop.ticks_total")))
    });

    // Overhead ratios use the minimum sample: the realistic tick's mean
    // wanders by double-digit percent run-to-run (scheduler + cache noise on
    // a microsecond-scale body), while the min is the stable floor that
    // actually reflects the code path's cost.
    let floor = |c: &Harness, id: &str| {
        c.results()
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, s)| s.min_ns)
            .expect("benchmark ran")
    };
    let t_base = floor(&c, "trivial/baseline_tick");
    let t_off = floor(&c, "trivial/untraced_tick");
    let t_sim = floor(&c, "trivial/traced_sim_tick");
    let t_wall = floor(&c, "trivial/traced_wall_tick");
    let hist_ns = floor(&c, "micro/histogram_record");
    let jsonl_ns = floor(&c, "micro/jsonl_export_parse_1k");

    // The headline realistic overheads come from paired interleaved runs —
    // one pairing per tracer mode, each against its own fresh baseline.
    let (rounds, batch) = if sensact_bench::quick() {
        (40, 200)
    } else {
        (400, 500)
    };
    let (r_base, r_off) = paired_realistic(rounds, batch, Tracer::disabled());
    let (r_base_sim, r_sim) = paired_realistic(rounds, batch, Tracer::sim(1e-6));
    let (r_base_wall, r_wall) = paired_realistic(rounds, batch, Tracer::wall());
    let r_off_pct = (r_off / r_base - 1.0) * 100.0;
    let r_sim_pct = (r_sim / r_base_sim - 1.0) * 100.0;
    let r_wall_pct = (r_wall / r_base_wall - 1.0) * 100.0;
    println!(
        "trivial stages:   disabled-path cost {:+.1} ns/tick over baseline ({:.1} -> {:.1} ns); sim-traced {:.1} ns, wall-traced {:.1} ns",
        t_off - t_base, t_base, t_off, t_sim, t_wall
    );
    println!(
        "realistic stages (paired, {rounds}x{batch} ticks/side): disabled-path overhead {r_off_pct:+.2}% (target < 3%); sim-traced {r_sim_pct:+.2}%, wall-traced {r_wall_pct:+.2}%"
    );
    println!(
        "micro: histogram record {hist_ns:.1} ns; 1k-tick JSONL export+parse {:.2} ms",
        jsonl_ns / 1e6
    );
    c.finish();
    sensact_bench::write_csv(
        "bench_obs_overhead",
        "workload,baseline_ns,untraced_ns,traced_sim_ns,traced_wall_ns,disabled_overhead_pct",
        &[
            format!(
                "trivial,{t_base:.1},{t_off:.1},{t_sim:.1},{t_wall:.1},{:.2}",
                (t_off / t_base - 1.0) * 100.0
            ),
            format!("realistic,{r_base:.1},{r_off:.1},{r_sim:.1},{r_wall:.1},{r_off_pct:.2}"),
        ],
    );

    // Record the acceptance artifact only in full mode, so quick/smoke CI
    // runs don't clobber real numbers with noisy 50 ms-budget ones.
    if !sensact_bench::quick() {
        let json = format!(
            "{{\n  \"trivial\": {{\n    \"baseline_ns\": {t_base:.1},\n    \"untraced_ns\": {t_off:.1},\n    \"traced_sim_ns\": {t_sim:.1},\n    \"traced_wall_ns\": {t_wall:.1}\n  }},\n  \"realistic\": {{\n    \"baseline_ns\": {r_base:.1},\n    \"untraced_ns\": {r_off:.1},\n    \"traced_sim_ns\": {r_sim:.1},\n    \"traced_wall_ns\": {r_wall:.1},\n    \"disabled_overhead_pct\": {r_off_pct:.2},\n    \"traced_sim_overhead_pct\": {r_sim_pct:.2},\n    \"traced_wall_overhead_pct\": {r_wall_pct:.2}\n  }},\n  \"micro\": {{\n    \"histogram_record_ns\": {hist_ns:.1},\n    \"jsonl_export_parse_1k_ns\": {jsonl_ns:.0}\n  }}\n}}\n"
        );
        // Anchor at the repo root: cargo bench runs with the package dir as cwd.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
        std::fs::write(path, json).expect("write BENCH_obs.json");
        println!("wrote BENCH_obs.json");
    }
}
