//! Micro-bench (in-repo harness): the generative-sensing pipeline stages (Table II in
//! time rather than energy): full scan vs masked scan, voxelization, and
//! occupancy reconstruction.

use sensact_bench::harness::Harness;
use sensact_lidar::mask::{RadialMask, RadialMaskConfig};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_lidar::voxel::VoxelGrid;
use sensact_rmae::model::{RmaeConfig, RmaeModel};
use std::hint::black_box;

fn bench_rmae(c: &mut Harness) {
    let scene = SceneGenerator::new(1).generate();
    let lidar = Lidar::new(LidarConfig::default());
    let full = lidar.scan(&scene);
    let config = RmaeConfig::full();
    let grid = VoxelGrid::from_cloud(config.grid, &full);
    let occupancy = grid.occupancy_flat();
    let mut model = RmaeModel::new(config, 0);

    c.bench_function("rmae/full_scan", |b| {
        b.iter(|| black_box(lidar.scan(black_box(&scene))))
    });
    c.bench_function("rmae/masked_scan", |b| {
        b.iter(|| {
            let mut mask = RadialMask::sample(RadialMaskConfig::default(), 512, 7);
            black_box(lidar.scan_masked(black_box(&scene), |_, az| mask.fire(az, 25.0)))
        })
    });
    c.bench_function("rmae/voxelize", |b| {
        b.iter(|| black_box(VoxelGrid::from_cloud(config.grid, black_box(&full))))
    });
    c.bench_function("rmae/reconstruct", |b| {
        b.iter(|| black_box(model.reconstruct(black_box(&occupancy))))
    });
}

fn main() {
    let mut c = Harness::new("bench_rmae");
    bench_rmae(&mut c);
    c.finish();
}
