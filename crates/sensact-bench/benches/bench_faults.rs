//! Micro-bench (in-repo harness): overhead of the fault-tolerance layer.
//!
//! Two workloads, three variants each:
//! * `plain_tick` — the infallible [`SensingActionLoop`];
//! * `fallible_clean_tick` — [`FallibleLoop`] behind a no-fault injector
//!   profile (the clean path the <5% overhead target is about);
//! * `fallible_faulty_tick` — the same loop under an aggressive fault
//!   profile, pricing the recovery machinery when it actually fires.
//!
//! The `trivial/*` rows use empty closure stages, so they expose the
//! *absolute* per-tick cost of the fault layer (a few ns of Result plumbing).
//! The `realistic/*` rows run a small feature-extraction workload — the
//! cheapest perception stage any real loop carries — and are the rows the
//! <5% clean-path overhead criterion is measured on. Both overheads are
//! printed and exported to CSV.

use sensact_bench::harness::Harness;
use sensact_core::fault::{FaultInjector, FaultProfile, RecoveryPolicy, Reliable, WithFallback};
use sensact_core::stage::{AlwaysTrust, FnController, FnPerceptor, FnSensor, StageContext, Trust};
use sensact_core::{FallibleLoop, LoopBuilder};
use std::hint::black_box;

fn sensor() -> FnSensor<impl FnMut(&f64, &mut StageContext) -> f64> {
    FnSensor::new(|e: &f64, ctx: &mut StageContext| {
        ctx.charge(1e-6, 1e-6);
        *e
    })
}

fn perceptor() -> FnPerceptor<impl FnMut(&f64, &mut StageContext) -> f64> {
    FnPerceptor::new(|r: &f64, _: &mut StageContext| *r)
}

fn controller() -> FnController<impl FnMut(&f64, Trust, &mut StageContext) -> f64> {
    FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.5 * f)
}

/// A sensing reading with realistic perception attached: extract simple
/// moment features from a 256-sample sweep — cheaper than any real detector,
/// so the overhead percentage it yields is an upper bound.
fn realistic_sensor() -> FnSensor<impl FnMut(&f64, &mut StageContext) -> Vec<f64>> {
    FnSensor::new(|e: &f64, ctx: &mut StageContext| {
        ctx.charge(1e-6, 1e-6);
        let mut sweep = Vec::with_capacity(256);
        for i in 0..256 {
            sweep.push(e + (i as f64 * 0.1).sin());
        }
        sweep
    })
}

fn realistic_perceptor() -> FnPerceptor<impl FnMut(&Vec<f64>, &mut StageContext) -> f64> {
    FnPerceptor::new(|sweep: &Vec<f64>, _: &mut StageContext| {
        let n = sweep.len() as f64;
        let mean = sweep.iter().sum::<f64>() / n;
        let var = sweep.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        mean + var
    })
}

fn aggressive_profile() -> FaultProfile {
    FaultProfile {
        dropout: 0.2,
        stuck: 0.1,
        latency_spike: 0.1,
        spike_latency_s: 1e-3,
        nan: 0.05,
    }
}

fn main() {
    let mut c = Harness::new("bench_faults");

    c.bench_function("trivial/plain_tick", |b| {
        let mut looop = LoopBuilder::new("plain").build(sensor(), perceptor(), controller());
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("trivial/fallible_clean_tick", |b| {
        let mut looop = FallibleLoop::new(
            "clean",
            FaultInjector::new(sensor(), FaultProfile::none(), 1),
            Reliable(perceptor()),
            AlwaysTrust,
            WithFallback::new(controller(), 0.0),
        );
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("trivial/fallible_faulty_tick", |b| {
        let mut looop = FallibleLoop::new(
            "faulty",
            FaultInjector::new(sensor(), aggressive_profile(), 1),
            Reliable(perceptor()),
            AlwaysTrust,
            WithFallback::new(controller(), 0.0),
        )
        .with_recovery(RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        });
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("realistic/plain_tick", |b| {
        let mut looop = LoopBuilder::new("plain-real").build(
            realistic_sensor(),
            realistic_perceptor(),
            controller(),
        );
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("realistic/fallible_clean_tick", |b| {
        let mut looop = FallibleLoop::new(
            "clean-real",
            FaultInjector::new(realistic_sensor(), FaultProfile::none(), 1),
            Reliable(realistic_perceptor()),
            AlwaysTrust,
            WithFallback::new(controller(), 0.0),
        );
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    c.bench_function("realistic/fallible_faulty_tick", |b| {
        let mut looop = FallibleLoop::new(
            "faulty-real",
            FaultInjector::new(realistic_sensor(), aggressive_profile(), 1),
            Reliable(realistic_perceptor()),
            AlwaysTrust,
            WithFallback::new(controller(), 0.0),
        )
        .with_recovery(RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        });
        b.iter(|| black_box(looop.tick(black_box(&1.0))))
    });

    let mean = |c: &Harness, id: &str| {
        c.results()
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, s)| s.mean_ns)
            .expect("benchmark ran")
    };
    let t_plain = mean(&c, "trivial/plain_tick");
    let t_clean = mean(&c, "trivial/fallible_clean_tick");
    let t_faulty = mean(&c, "trivial/fallible_faulty_tick");
    let r_plain = mean(&c, "realistic/plain_tick");
    let r_clean = mean(&c, "realistic/fallible_clean_tick");
    let r_faulty = mean(&c, "realistic/fallible_faulty_tick");
    let t_pct = (t_clean / t_plain - 1.0) * 100.0;
    let r_pct = (r_clean / r_plain - 1.0) * 100.0;
    println!(
        "trivial stages:   clean-path overhead {:+.1} ns/tick ({t_pct:+.1}% of an empty tick)",
        t_clean - t_plain
    );
    println!(
        "realistic stages: clean-path overhead {r_pct:+.2}% (plain {r_plain:.1} ns -> fallible {r_clean:.1} ns; target < 5%); faulty path {r_faulty:.1} ns"
    );
    c.finish();
    sensact_bench::write_csv(
        "bench_faults_overhead",
        "workload,plain_ns,fallible_clean_ns,fallible_faulty_ns,clean_overhead_pct",
        &[
            format!("trivial,{t_plain:.1},{t_clean:.1},{t_faulty:.1},{t_pct:.2}"),
            format!("realistic,{r_plain:.1},{r_clean:.1},{r_faulty:.1},{r_pct:.2}"),
        ],
    );
}
