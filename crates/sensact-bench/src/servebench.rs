//! Shared serving-throughput workload: mixed lidar + cartpole traffic
//! through the [`Loopback`] transport, batched vs. per-loop dispatch.
//!
//! Used by both `bench_serve` (records `BENCH_serve.json`) and
//! `bench_gate` (re-measures the serving p99 headline against the
//! committed baseline), so the two always measure the exact same workload.
//!
//! The traffic is full protocol traffic — every observation is wire-encoded
//! by the client, sniffed/decoded by the engine, executed (or shed), and
//! the action frame decoded back — on the deterministic in-process
//! loopback, so the numbers isolate the serving stack from kernel noise
//! without real sockets.

use sensact_serve::wire::{self, Frame};
use sensact_serve::{ConnId, Loopback, ModelKind, PoolConfig, ServeConfig};
use std::time::Instant;

/// Measured serving numbers for one (fleet size, mode) cell.
#[derive(Debug, Clone, Copy)]
pub struct ServeMeasure {
    /// Leased loops driven concurrently.
    pub fleet: usize,
    /// Cross-loop batching on?
    pub batched: bool,
    /// Observations served (acts received).
    pub served: u64,
    /// Observations shed.
    pub shed: u64,
    /// Sustained serving throughput (ticks per second of serving time —
    /// the send-through-flush window, excluding client-side reply decode).
    pub ticks_per_s: f64,
    /// p99 per-tick wall latency (microseconds): per round, the round's
    /// wall time divided by its ticks; p99 over rounds.
    pub p99_tick_us: f64,
}

/// One leased serving fleet on a loopback server, ready to be driven one
/// round (one observation per lease) at a time. Every round performs
/// identical work — the same pre-encoded frames against a steady-state pool
/// — so round wall times are repeated samples of the same serving cost.
struct ServeRig {
    lb: Loopback,
    conns: Vec<ConnId>,
    obs_bytes: Vec<Vec<u8>>,
    round: usize,
    served: u64,
    shed: u64,
    period_s: f64,
}

impl ServeRig {
    fn new(fleet: usize, batched: bool) -> ServeRig {
        let cfg = ServeConfig {
            pool: PoolConfig {
                // Size the admission budget to the requested fleet: the
                // bench measures throughput, not admission control.
                workers: fleet.max(4) * 2,
                ..PoolConfig::default()
            },
            batched,
        };
        let mut lb = Loopback::new(cfg);
        let kind_of = |i: usize| {
            if i.is_multiple_of(2) {
                ModelKind::LidarConv
            } else {
                ModelKind::Cartpole
            }
        };
        let mut conns = Vec::with_capacity(fleet);
        let mut obs_bytes = Vec::with_capacity(fleet);
        for i in 0..fleet {
            let conn = lb.connect();
            let (lease, obs_len, _) = lb
                .request_lease(conn, kind_of(i).wire(), i as u64, 0.0)
                .expect("bench pool is sized to admit the whole fleet");
            conns.push(conn);
            // Pre-encoded observation frame: payload construction and wire
            // encoding are client work, not serving cost, so they happen
            // once up front (a fixed seq per lease is fine — the server
            // only echoes it).
            let values = (0..obs_len)
                .map(|j| ((j * 7 + 3) % 16) as f64 / 16.0 - 0.5)
                .collect();
            obs_bytes.push(wire::encode_to_vec(&Frame::Obs {
                lease,
                seq: i as u64,
                values,
            }));
        }
        ServeRig {
            lb,
            conns,
            obs_bytes,
            round: 0,
            served: 0,
            shed: 0,
            period_s: ModelKind::LidarConv.spec().period_s,
        }
    }

    /// Serve one observation per lease; returns the round's wall time in
    /// seconds (send through flush — the serving cost). Reply pickup and
    /// accounting happen outside the timed window. The virtual arrival
    /// clock advances one lidar period per round so the pool's shed
    /// arithmetic stays quiet — the measurement isolates serving overhead,
    /// not backpressure.
    fn run_round(&mut self) -> f64 {
        self.round += 1;
        let now_s = self.period_s * self.round as f64;
        let round_start = Instant::now();
        for (i, &conn) in self.conns.iter().enumerate() {
            self.lb.send_bytes(conn, &self.obs_bytes[i], now_s);
        }
        self.lb.flush(now_s);
        let elapsed = round_start.elapsed().as_secs_f64();
        for &conn in &self.conns {
            for frame in self.lb.take_frames(conn) {
                match frame {
                    Frame::Act { .. } => self.served += 1,
                    Frame::Shed { .. } => self.shed += 1,
                    other => panic!("unexpected frame in bench: {other:?}"),
                }
            }
        }
        elapsed
    }
}

/// Untimed warmup rounds for `rounds` timed ones: fault in scratch buffers,
/// settle branch predictors and CPU frequency before measuring.
fn warmup_rounds(rounds: usize) -> usize {
    (rounds / 10).clamp(10, 200)
}

/// p99 over per-round tick latencies (microseconds per tick).
fn p99_tick_us(mut round_tick_us: Vec<f64>) -> f64 {
    round_tick_us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p99_idx =
        ((round_tick_us.len() as f64 * 0.99).ceil() as usize).clamp(1, round_tick_us.len()) - 1;
    round_tick_us[p99_idx]
}

/// One interleaved measurement pass: a per-loop rig and a batched rig,
/// both warmed, then driven round-for-round in the same wall-clock epoch.
/// Returns each mode's per-round tick latencies (µs) and (served, shed)
/// counters.
///
/// Interleaving is the noise discipline that makes the comparison honest
/// on a shared host: every round of either rig performs identical work, so
/// a machine-load epoch (the dominant error source) inflates both
/// distributions roughly equally and cancels out of any paired quotient —
/// unlike sequential runs, where a noise burst lands entirely on whichever
/// mode happened to be measuring.
/// One mode's pass result: per-round tick latencies (µs) and the
/// (served, shed) counters accumulated over the timed rounds.
type PassSide = (Vec<f64>, u64, u64);

fn interleaved_pass(fleet: usize, rounds: usize) -> (PassSide, PassSide) {
    let mut per_loop = ServeRig::new(fleet, false);
    let mut batched = ServeRig::new(fleet, true);
    for _ in 0..warmup_rounds(rounds) {
        per_loop.run_round();
        batched.run_round();
    }
    per_loop.served = 0;
    per_loop.shed = 0;
    batched.served = 0;
    batched.shed = 0;
    let mut u = Vec::with_capacity(rounds);
    let mut b = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        u.push(per_loop.run_round() * 1e6 / fleet as f64);
        b.push(batched.run_round() * 1e6 / fleet as f64);
    }
    (
        (u, per_loop.served, per_loop.shed),
        (b, batched.served, batched.shed),
    )
}

/// Median of per-round tick latencies (µs).
fn median_tick_us(mut round_tick_us: Vec<f64>) -> f64 {
    round_tick_us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    round_tick_us[round_tick_us.len() / 2]
}

/// A paired batched-vs-per-loop measurement at one fleet size.
#[derive(Debug, Clone, Copy)]
pub struct ServePair {
    /// Per-loop dispatch numbers.
    pub unbatched: ServeMeasure,
    /// Cross-loop batched numbers.
    pub batched: ServeMeasure,
    /// Batched median round cost as a percentage of per-loop (< 100 means
    /// batching wins). The median is the robust serving-cost comparison:
    /// unlike the p99 (which ranks the preemption spikes a shared host
    /// injects into both modes at random), it is repeatable to ~±1 pp.
    pub median_cost_ratio_pct: f64,
}

/// Drive `fleet` leases (half lidar-conv, half cartpole) for `rounds`
/// rounds of one observation each through TWO loopback servers — per-loop
/// and batched dispatch — interleaved in the same wall-clock epoch, and
/// measure each mode's serving cost. The paired epochs make the
/// batched-vs-unbatched comparison robust to machine-load noise.
pub fn serve_pair(fleet: usize, rounds: usize) -> ServePair {
    let ((u, us, ush), (b, bs, bsh)) = interleaved_pass(fleet, rounds);
    let median_cost_ratio_pct = 100.0 * median_tick_us(b.clone()) / median_tick_us(u.clone());
    let measure = |batched: bool, ticks_us: Vec<f64>, served: u64, shed: u64| {
        let total_s = ticks_us.iter().sum::<f64>() * fleet as f64 / 1e6;
        ServeMeasure {
            fleet,
            batched,
            served,
            shed,
            ticks_per_s: (served + shed) as f64 / total_s,
            p99_tick_us: p99_tick_us(ticks_us),
        }
    };
    ServePair {
        unbatched: measure(false, u, us, ush),
        batched: measure(true, b, bs, bsh),
        median_cost_ratio_pct,
    }
}

/// The gate headlines: batched as a percentage of per-loop at the given
/// fleet size (< 100 means batching wins) — `(p99 ratio, median cost
/// ratio)` — measured by round-interleaved paired passes
/// (`interleaved_pass`). Each headline is the median over `repeats`
/// passes: robust against one contaminated pass in either direction, while
/// a genuine batching regression raises every pass. The p99 ratio is the
/// tail headline (noisy on a shared host, ±5 pp); the median cost ratio is
/// the tight one (±1 pp) that pins the sustained serving-cost win.
pub fn serve_gate_headline(fleet: usize, rounds: usize, repeats: usize) -> (f64, f64) {
    let mut p99s = Vec::with_capacity(repeats);
    let mut meds = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let ((u, ..), (b, ..)) = interleaved_pass(fleet, rounds);
        p99s.push(100.0 * p99_tick_us(b.clone()) / p99_tick_us(u.clone()));
        meds.push(100.0 * median_tick_us(b) / median_tick_us(u));
    }
    let med_of = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        v[v.len() / 2]
    };
    (med_of(p99s), med_of(meds))
}
