//! Kernel micro-benchmarks: naive vs blocked vs parallel vs register-blocked
//! SIMD GEMM (f64/f32/int8), im2col conv forward, full raycast scan, and an
//! end-to-end loop tick.
//!
//! Emits `BENCH_kernels.json` (tagged with the host ISA) in the working
//! directory so later PRs have a perf trajectory, and verifies on the way
//! that the fast paths agree with the reference kernels — the scalar GEMM
//! and raycast paths bitwise, the SIMD/f32/int8 paths within their analytic
//! precision-tier bounds.
//!
//! `--smoke` (or `--quick` / `SENSACT_QUICK=1`) shrinks the measurement
//! budget for CI; combine with `SENSACT_FORCE_SCALAR=1` to time the scalar
//! fallbacks on a SIMD host.

use sensact_bench::harness::Harness;
use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext, Trust};
use sensact_core::LoopBuilder;
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_math::kernels;
use sensact_math::rng::StdRng;
use sensact_nn::conv::{Conv3d, Dims3};
use sensact_nn::init::Initializer;
use sensact_nn::layers::Layer;
use sensact_nn::Tensor;
use std::hint::black_box;
use std::io::Write;

const GEMM_N: usize = 256;

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    // `--smoke` is the CI spelling of quick mode: same shrunken budget.
    if std::env::args().any(|arg| arg == "--smoke") {
        std::env::set_var("SENSACT_QUICK", "1");
    }
    let isa = sensact_math::simd::isa_name();
    println!("host isa: {isa}");

    let mut rng = StdRng::seed_from_u64(0xBE7C_0001);
    let mut h = Harness::new("bench_kernels");

    // --- GEMM: naive vs cache-blocked vs parallel vs SIMD, 256^3 ---------
    let n = GEMM_N;
    let a: Vec<f64> = (0..n * n).map(|_| rng.random::<f64>() - 0.5).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.random::<f64>() - 0.5).collect();
    let mut c_naive = vec![0.0; n * n];
    let mut c_blocked = vec![0.0; n * n];
    let mut c_parallel = vec![0.0; n * n];
    let mut c_simd = vec![0.0; n * n];
    kernels::gemm_naive(n, n, n, 1.0, &a, &b, 0.0, &mut c_naive);
    kernels::gemm_blocked(n, n, n, 1.0, &a, &b, 0.0, &mut c_blocked);
    kernels::gemm_parallel(n, n, n, 1.0, &a, &b, 0.0, &mut c_parallel);
    kernels::gemm_simd(n, n, n, 1.0, &a, &b, 0.0, &mut c_simd);
    let gemm_diff = max_abs_diff(&c_naive, &c_blocked).max(max_abs_diff(&c_naive, &c_parallel));
    assert!(gemm_diff <= 1e-12, "GEMM kernels diverged: {gemm_diff:e}");
    // FMA rounds once per step: analytic bound 2·γ_{k+2}·max|c| for inputs
    // in [-0.5, 0.5] (|c| ≤ k/4), zero slack on scalar hosts.
    let simd_diff = max_abs_diff(&c_naive, &c_simd);
    let simd_tol = 2.0 * (n as f64 + 2.0) * f64::EPSILON * n as f64 / 4.0;
    assert!(
        simd_diff <= simd_tol,
        "SIMD GEMM out of bound: {simd_diff:e} > {simd_tol:e}"
    );

    h.bench_function("gemm_naive/256", |bch| {
        bch.iter(|| kernels::gemm_naive(n, n, n, 1.0, black_box(&a), &b, 0.0, &mut c_naive))
    });
    h.bench_function("gemm_blocked/256", |bch| {
        bch.iter(|| kernels::gemm_blocked(n, n, n, 1.0, black_box(&a), &b, 0.0, &mut c_blocked))
    });
    h.bench_function("gemm_parallel/256", |bch| {
        bch.iter(|| kernels::gemm_parallel(n, n, n, 1.0, black_box(&a), &b, 0.0, &mut c_parallel))
    });
    h.bench_function("gemm_simd/256", |bch| {
        bch.iter(|| kernels::gemm_simd(n, n, n, 1.0, black_box(&a), &b, 0.0, &mut c_simd))
    });

    // --- Mixed-precision GEMM: f32 and int8 perception tiers -------------
    let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
    let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
    let mut c32 = vec![0.0f32; n * n];
    kernels::gemm_f32(n, n, n, 1.0, &a32, &b32, 0.0, &mut c32);
    let c32_as_f64: Vec<f64> = c32.iter().map(|&x| x as f64).collect();
    let f32_diff = max_abs_diff(&c_naive, &c32_as_f64);
    let f32_tol = 2.0 * (n as f64 + 2.0) * f32::EPSILON as f64 * n as f64 / 4.0 + 1e-6;
    assert!(
        f32_diff <= f32_tol,
        "f32 GEMM out of bound: {f32_diff:e} > {f32_tol:e}"
    );
    let mut c_int8 = vec![0.0f64; n * n];
    let report = kernels::gemm_int8(n, n, n, &a, &b, &mut c_int8);
    let int8_diff = max_abs_diff(&c_naive, &c_int8);
    let (max_a, max_b) = (127.0 * report.scale_a, 127.0 * report.scale_b);
    let int8_tol = n as f64
        * (max_a * report.scale_b / 2.0 + (max_b + report.scale_b / 2.0) * report.scale_a / 2.0)
        + 1e-12;
    assert!(
        int8_diff <= int8_tol,
        "int8 GEMM out of bound: {int8_diff:e} > {int8_tol:e}"
    );

    h.bench_function("gemm_f32/256", |bch| {
        bch.iter(|| kernels::gemm_f32(n, n, n, 1.0, black_box(&a32), &b32, 0.0, &mut c32))
    });
    h.bench_function("gemm_int8/256", |bch| {
        bch.iter(|| kernels::gemm_int8(n, n, n, black_box(&a), &b, &mut c_int8))
    });

    // --- Conv3d forward: gather-loop reference vs im2col+GEMM ------------
    let mut init = Initializer::new(7);
    let mut conv = Conv3d::new(4, 8, 3, 1, 1, Dims3::new(10, 10, 10), &mut init);
    let xlen = 4 * 10 * 10 * 10;
    let x: Vec<f64> = (0..2 * xlen).map(|_| rng.random::<f64>() - 0.5).collect();
    let input = Tensor::from_vec(vec![2, xlen], x);
    let reference = conv.forward_reference(&input);
    let fast = conv.forward(&input, false);
    let conv_diff = max_abs_diff(reference.as_slice(), fast.as_slice());
    assert!(conv_diff <= 1e-12, "conv kernels diverged: {conv_diff:e}");

    h.bench_function("conv3d_forward_reference/4x8x10^3", |bch| {
        bch.iter(|| black_box(conv.forward_reference(black_box(&input))))
    });
    h.bench_function("conv3d_forward_im2col/4x8x10^3", |bch| {
        bch.iter(|| black_box(conv.forward(black_box(&input), false)))
    });

    // --- Raycast: naive vs azimuth-bucketed vs parallel 64x512 scan ------
    let lidar = Lidar::new(LidarConfig::default());
    let scene = SceneGenerator::new(1).generate();
    let reference = lidar.scan_reference(&scene);
    assert_eq!(
        reference,
        lidar.scan_serial(&scene),
        "bucketed scan is not bit-identical"
    );
    assert_eq!(
        reference,
        lidar.scan(&scene),
        "parallel scan is not bit-identical"
    );

    h.bench_function("raycast_naive/64x512", |bch| {
        bch.iter(|| black_box(lidar.scan_reference(black_box(&scene))))
    });
    h.bench_function("raycast_bucketed/64x512", |bch| {
        bch.iter(|| black_box(lidar.scan_serial(black_box(&scene))))
    });
    h.bench_function("raycast_parallel/64x512", |bch| {
        bch.iter(|| black_box(lidar.scan(black_box(&scene))))
    });

    // --- End-to-end sensing-action loop tick -----------------------------
    let mut looop = LoopBuilder::new("kernels-bench").build(
        FnSensor::new(|e: &f64, ctx: &mut StageContext| {
            ctx.charge(1e-6, 1e-6);
            *e
        }),
        FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
        FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.5 * f),
    );
    h.bench_function("loop_tick/minimal", |bch| {
        bch.iter(|| black_box(looop.tick(black_box(&1.0))))
    });
    h.finish();

    // --- BENCH_kernels.json ----------------------------------------------
    let mean = |id: &str| -> f64 {
        h.results()
            .iter()
            .find(|(rid, _)| rid == id)
            .map(|(_, s)| s.mean_ns)
            .expect("benchmark id missing")
    };
    let gemm_naive = mean("gemm_naive/256");
    let gemm_blocked = mean("gemm_blocked/256");
    let gemm_parallel = mean("gemm_parallel/256");
    let gemm_simd = mean("gemm_simd/256");
    let gemm_f32 = mean("gemm_f32/256");
    let gemm_int8 = mean("gemm_int8/256");
    let conv_ref = mean("conv3d_forward_reference/4x8x10^3");
    let conv_fast = mean("conv3d_forward_im2col/4x8x10^3");
    let ray_naive = mean("raycast_naive/64x512");
    let ray_bucketed = mean("raycast_bucketed/64x512");
    let ray_parallel = mean("raycast_parallel/64x512");
    let tick = mean("loop_tick/minimal");

    let json = format!(
        "{{\n  \
         \"isa\": \"{isa}\",\n  \
         \"gemm_256\": {{\n    \
           \"naive_ns\": {gemm_naive:.0},\n    \
           \"blocked_ns\": {gemm_blocked:.0},\n    \
           \"parallel_ns\": {gemm_parallel:.0},\n    \
           \"simd_ns\": {gemm_simd:.0},\n    \
           \"f32_ns\": {gemm_f32:.0},\n    \
           \"int8_ns\": {gemm_int8:.0},\n    \
           \"blocked_speedup\": {:.2},\n    \
           \"parallel_speedup\": {:.2},\n    \
           \"simd_speedup\": {:.2},\n    \
           \"f32_over_simd\": {:.2},\n    \
           \"int8_over_simd\": {:.2},\n    \
           \"max_abs_diff\": {gemm_diff:e},\n    \
           \"simd_max_abs_diff\": {simd_diff:e},\n    \
           \"f32_max_abs_diff\": {f32_diff:e},\n    \
           \"int8_max_abs_diff\": {int8_diff:e}\n  }},\n  \
         \"conv3d_forward\": {{\n    \
           \"reference_ns\": {conv_ref:.0},\n    \
           \"im2col_ns\": {conv_fast:.0},\n    \
           \"speedup\": {:.2},\n    \
           \"max_abs_diff\": {conv_diff:e}\n  }},\n  \
         \"raycast_64x512\": {{\n    \
           \"naive_ns\": {ray_naive:.0},\n    \
           \"bucketed_ns\": {ray_bucketed:.0},\n    \
           \"parallel_ns\": {ray_parallel:.0},\n    \
           \"bucketed_speedup\": {:.2},\n    \
           \"parallel_speedup\": {:.2},\n    \
           \"bit_identical\": true\n  }},\n  \
         \"loop_tick\": {{\n    \"mean_ns\": {tick:.1}\n  }}\n}}\n",
        gemm_naive / gemm_blocked,
        gemm_naive / gemm_parallel,
        gemm_naive / gemm_simd,
        gemm_simd / gemm_f32,
        gemm_simd / gemm_int8,
        conv_ref / conv_fast,
        ray_naive / ray_bucketed,
        ray_naive / ray_parallel,
    );
    let path = "BENCH_kernels.json";
    let mut f = std::fs::File::create(path).expect("create BENCH_kernels.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_kernels.json");
    println!("[json] {path}");
}
