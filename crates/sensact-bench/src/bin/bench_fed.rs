//! Federated-fleet bench: energy/latency/accuracy versus network quality.
//!
//! Three sections:
//!
//! 1. **Loss sweep** — a fixed heterogeneous fleet trained through the
//!    scheduler ([`run_federated_scheduled`]) over the edge network at
//!    increasing packet-loss rates. Shows the online-aggregation story:
//!    loss costs retransmit energy and participation, not wall-clock —
//!    the round cadence is fixed by the cutoff, stragglers just miss it.
//! 2. **Straggler sweep** — same fleet, loss-free, with a growing fraction
//!    of 8× slow links. Participation degrades gracefully; the synchronous
//!    accounting (`sync_latency_s`) is the bound the scheduled path
//!    undercuts.
//! 3. **1k-client determinism** (full mode only) — two back-to-back
//!    1 000-client runs must reproduce the combined fleet ⊕ network trace
//!    hash bit-for-bit from the seeds.
//!
//! Writes `BENCH_fed.json` at the repo root (full mode only, so CI smoke
//! runs don't clobber recorded numbers). Run with `--smoke` (or
//! `SENSACT_QUICK=1`) for reduced sizes.

use sensact_bench::{compare, header};
use sensact_fed::client::{Client, HardwareTier};
use sensact_fed::data::Dataset;
use sensact_fed::server::Strategy;
use sensact_fed::sim::NetworkConfig;
use sensact_fed::{run_federated_scheduled, FedFleetConfig, FedFleetReport};
use std::time::Instant;

fn smoke() -> bool {
    sensact_bench::quick() || std::env::args().any(|a| a == "--smoke")
}

/// A heterogeneous non-IID fleet (tiers round-robin) plus a held-out test set.
fn fleet(n: usize, samples: usize, seed: u64) -> (Vec<Client>, Dataset) {
    let all = Dataset::generate(samples, seed);
    let parts = all.split_noniid(n, seed);
    let tiers = [
        HardwareTier::EdgeGpu,
        HardwareTier::Mobile,
        HardwareTier::Mcu,
    ];
    let clients = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| Client::new(i, d, tiers[i % 3], seed ^ ((i as u64) << 4)))
        .collect();
    let test = Dataset::generate(samples / 4, seed ^ 0xFF);
    (clients, test)
}

struct SweepRow {
    knob: f64,
    report: FedFleetReport,
    fleet_size: usize,
}

impl SweepRow {
    fn delivered_ratio(&self) -> f64 {
        if self.report.net.msgs_sent == 0 {
            return 1.0;
        }
        self.report.net.msgs_delivered as f64 / self.report.net.msgs_sent as f64
    }

    fn json(&self, knob_name: &str) -> String {
        format!(
            "    {{ \"{knob_name}\": {:.3}, \"accuracy\": {:.4}, \"energy_j\": {:.6}, \"makespan_s\": {:.4}, \"sync_latency_s\": {:.4}, \"participation\": {:.3}, \"delivered_ratio\": {:.3}, \"retransmits\": {}, \"late_updates\": {} }}",
            self.knob,
            self.report.accuracy,
            self.report.energy_j,
            self.report.makespan_s,
            self.report.sync_latency_s,
            self.report.mean_participation(self.fleet_size),
            self.delivered_ratio(),
            self.report.net.retransmits,
            self.report.server.late_updates,
        )
    }
}

fn run_case(
    fleet_size: usize,
    samples: usize,
    rounds: usize,
    net: NetworkConfig,
    knob: f64,
) -> SweepRow {
    let (clients, test) = fleet(fleet_size, samples, 11);
    let config = FedFleetConfig {
        rounds,
        local_epochs: 4,
        ..FedFleetConfig::default()
    };
    let report = run_federated_scheduled(clients, Strategy::DcNas, &config, net, &test, &[]);
    SweepRow {
        knob,
        report,
        fleet_size,
    }
}

fn print_row(r: &SweepRow, label: &str) {
    compare(
        label,
        "sync bound",
        &format!(
            "acc {:.3}  energy {:>8.4} J  makespan {:>7.3} s (sync {:>7.3} s)  part {:>4.0}%  delivered {:>4.0}%",
            r.report.accuracy,
            r.report.energy_j,
            r.report.makespan_s,
            r.report.sync_latency_s,
            100.0 * r.report.mean_participation(r.fleet_size),
            100.0 * r.delivered_ratio(),
        ),
    );
}

fn main() {
    let smoke = smoke();
    let (fleet_size, samples, rounds) = if smoke { (9, 360, 3) } else { (24, 1440, 8) };

    header(&format!(
        "federated fleet over simulated edge network — {fleet_size} clients, {rounds} rounds"
    ));

    let losses: &[f64] = if smoke {
        &[0.0, 0.15]
    } else {
        &[0.0, 0.05, 0.15, 0.30]
    };
    let loss_rows: Vec<SweepRow> = losses
        .iter()
        .map(|&loss| {
            run_case(
                fleet_size,
                samples,
                rounds,
                NetworkConfig::edge(3).with_loss(loss),
                loss,
            )
        })
        .collect();
    for r in &loss_rows {
        print_row(r, &format!("loss {:>4.0}%", 100.0 * r.knob));
    }

    header("straggler sweep — fraction of 8x slow links, loss-free");
    let fractions: &[f64] = if smoke { &[0.0, 0.5] } else { &[0.0, 0.2, 0.5] };
    let straggler_rows: Vec<SweepRow> = fractions
        .iter()
        .map(|&frac| {
            run_case(
                fleet_size,
                samples,
                rounds,
                NetworkConfig::edge(3)
                    .with_loss(0.0)
                    .with_stragglers(frac, 8.0),
                frac,
            )
        })
        .collect();
    for r in &straggler_rows {
        print_row(r, &format!("stragglers {:>4.0}%", 100.0 * r.knob));
    }

    // Invariants the curves must respect, smoke and full alike. (Losses are
    // mostly recovered by retransmission, so the delivered ratio is a weak
    // signal — retransmit count is the direct one. The sync bound counts
    // compute only, so it is only comparable on a comm-free network; the
    // fleet unit tests assert the undercut there.)
    assert_eq!(loss_rows[0].report.net.retransmits, 0, "loss-free baseline");
    assert!(
        loss_rows.last().unwrap().report.net.retransmits > 0,
        "loss must force retransmits"
    );
    assert!(
        straggler_rows
            .last()
            .unwrap()
            .report
            .mean_participation(fleet_size)
            < straggler_rows[0].report.mean_participation(fleet_size),
        "stragglers must miss cutoffs"
    );

    let fleet1k = if smoke {
        None
    } else {
        header("1k-client determinism — two runs, one trace hash");
        let run = || {
            let (clients, test) = fleet(1000, 2000, 17);
            let config = FedFleetConfig {
                rounds: 3,
                local_epochs: 2,
                workers: 8,
                ..FedFleetConfig::default()
            };
            let t = Instant::now();
            let report = run_federated_scheduled(
                clients,
                Strategy::DcNas,
                &config,
                NetworkConfig::edge(5).with_loss(0.05),
                &test,
                &[],
            );
            (report, t.elapsed().as_secs_f64())
        };
        let (a, wall_a) = run();
        let (b, wall_b) = run();
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "1k-client run must reproduce bit-for-bit from the seeds"
        );
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        compare(
            "1000 clients x 3 rounds",
            "bit-for-bit",
            &format!(
                "trace 0x{:016x} twice  makespan {:.2} s  wall {:.2} s / {:.2} s",
                a.trace_hash, a.makespan_s, wall_a, wall_b
            ),
        );
        Some((a, wall_a))
    };

    if !smoke {
        let json = format!(
            "{{\n  \"fleet_size\": {fleet_size},\n  \"rounds\": {rounds},\n  \"loss_sweep\": [\n{}\n  ],\n  \"straggler_sweep\": [\n{}\n  ],\n  \"fleet_1k\": {}\n}}\n",
            loss_rows
                .iter()
                .map(|r| r.json("loss"))
                .collect::<Vec<_>>()
                .join(",\n"),
            straggler_rows
                .iter()
                .map(|r| r.json("straggler_fraction"))
                .collect::<Vec<_>>()
                .join(",\n"),
            match &fleet1k {
                Some((r, wall)) => format!(
                    "{{ \"clients\": 1000, \"rounds\": 3, \"trace_hash\": \"0x{:016x}\", \"accuracy\": {:.4}, \"makespan_s\": {:.4}, \"wall_s\": {:.2} }}",
                    r.trace_hash, r.accuracy, r.makespan_s, wall
                ),
                None => "null".to_string(),
            }
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fed.json");
        std::fs::write(path, json).expect("write BENCH_fed.json");
        println!("wrote BENCH_fed.json");
    }
}
