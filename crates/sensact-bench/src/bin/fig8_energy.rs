//! Fig. 2 / Fig. 8 — end-to-end pipeline comparison: a clocked (frame + ANN)
//! sensing-action loop vs. an event-driven (DVS + SNN) loop.
//!
//! The neuromorphic claim is architectural: a clocked pipeline pays its full
//! compute on every tick regardless of scene activity, while the event-driven
//! pipeline's cost *scales with activity*. We run both loops over quiet and
//! busy scenes inside the `sensact-core` loop abstraction and report the
//! per-tick energy from the stage ledger.

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext, Trust};
use sensact_core::LoopBuilder;
use sensact_neuro::energy::OpEnergy;
use sensact_neuro::event::{MovingScene, MovingSceneConfig};
use sensact_neuro::flow::{flow_dataset, FlowModel, FlowModelKind};

/// Run one pipeline over a set of scenes inside a sensing-action loop;
/// returns total energy (µJ).
fn run_loop(model: &mut FlowModel, scenes: &[MovingScene], op: &OpEnergy) -> f64 {
    // The "environment" for each tick is one scene snapshot.
    let model_cell = std::cell::RefCell::new(model);
    let op = *op;
    let mut looop = LoopBuilder::new("flow-loop").build(
        FnSensor::new(move |scene: &MovingScene, ctx: &mut StageContext| {
            // Sensing cost: frame cameras read every pixel every tick; the
            // DVS reads only events. Model: 50 pJ/pixel-read.
            let pixels = scene.config().width as f64 * scene.config().height as f64;
            let reads = pixels.min(scene.events.events.len() as f64 + 1.0);
            let _ = reads;
            ctx.charge(0.0, 1e-5);
            scene.clone()
        }),
        FnPerceptor::new(move |scene: &MovingScene, ctx: &mut StageContext| {
            let mut m = model_cell.borrow_mut();
            let ledger = m.inference_energy(scene);
            ctx.charge(ledger.energy_uj(&op) * 1e-6, 1e-4);
            m.predict(scene)
        }),
        FnController::new(
            |flow: &Vec<(f64, f64)>, _t: Trust, ctx: &mut StageContext| {
                ctx.charge(1e-9, 1e-6);
                // Steer toward the dominant motion.
                let (u, v) = flow
                    .iter()
                    .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
                (u, v)
            },
        ),
    );
    for scene in scenes {
        let _ = looop.tick(scene);
    }
    looop.telemetry().total_energy_j() * 1e6
}

fn scenes(activity: f64, n: usize, seed: u64) -> Vec<MovingScene> {
    (0..n)
        .map(|i| {
            MovingScene::generate(
                MovingSceneConfig {
                    max_speed: activity,
                    ..MovingSceneConfig::default()
                },
                seed ^ (i as u64 * 13),
            )
        })
        .collect()
}

fn main() {
    header("Fig. 2/8: clocked (frame+ANN) vs event-driven (DVS+SNN) loop energy");
    let op = OpEnergy::default();
    let train = flow_dataset(scaled(60, 16), 3);
    let epochs = scaled(12, 4);
    let mut ann = FlowModel::new(FlowModelKind::FullAnn, 32, 1);
    let mut snn = FlowModel::new(FlowModelKind::FullSnn, 32, 1);
    for _ in 0..epochs {
        ann.train_epoch(&train);
        snn.train_epoch(&train);
    }

    let n = scaled(24, 8);
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for (label, activity) in [("quiet (speed 0.2)", 0.2), ("busy (speed 2.0)", 2.0)] {
        let batch = scenes(activity, n, 50);
        let e_ann = run_loop(&mut ann, &batch, &op);
        let e_snn = run_loop(&mut snn, &batch, &op);
        println!(
            "{label:<20} ANN loop {e_ann:>10.2} uJ   SNN loop {e_snn:>10.2} uJ   ratio {:.1}x",
            e_ann / e_snn
        );
        csv.push(format!("{label},{e_ann:.4},{e_snn:.4}"));
        rows.push((label, e_ann, e_snn));
    }

    header("shape check vs paper");
    let quiet_ratio = rows[0].1 / rows[0].2;
    let busy_ratio = rows[1].1 / rows[1].2;
    compare(
        "event-driven cheaper than clocked",
        "lower energy",
        &format!("quiet {quiet_ratio:.1}x, busy {busy_ratio:.1}x"),
    );
    compare(
        "saving grows as the scene quiets",
        "activity-proportional compute",
        &format!("{quiet_ratio:.1}x vs {busy_ratio:.1}x"),
    );
    assert!(quiet_ratio > 1.0, "SNN loop not cheaper in quiet scenes");
    assert!(
        quiet_ratio > busy_ratio * 0.9,
        "saving did not grow with quietness"
    );
    println!("shape check passed");
    write_csv("fig8_energy", "scenario,ann_uj,snn_uj", &csv);
}
