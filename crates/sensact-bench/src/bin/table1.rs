//! Table I — Average precision of R-MAE against pre-training baselines.
//!
//! Paper (KITTI val, moderate): SECOND 79.08/44.52/64.49; +R-MAE improves to
//! 79.10/46.93/67.75. PV-RCNN 82.28/51.51/69.45; +R-MAE 82.82/51.61/73.82.
//! The reproducible content at our scale is the *pre-training effect*:
//! masked-occupancy pre-training lifts AP over the no-reconstruction
//! baseline, with the biggest gains on the small classes, on both detector
//! tiers; the inter-scheme ordering (R-MAE vs OccMAE vs ALSO) is reported
//! via the reconstruction-IoU column (AP differences between schemes are
//! below this harness's resolution — see EXPERIMENTS.md).

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_lidar::scene::{SceneConfig, SceneGenerator};
use sensact_rmae::detect::Detector;
use sensact_rmae::eval::{evaluate_cell, PipelineConfig};
use sensact_rmae::pretrain::Strategy;

fn main() {
    header("Table I: AP by pre-training scheme and detector");
    let train_n = scaled(24, 6);
    let eval_n = scaled(16, 6);
    let mut generator = SceneGenerator::with_config(42, SceneConfig::default());
    let train = generator.generate_many(train_n);
    let eval = generator.generate_many(eval_n);
    let config = PipelineConfig {
        pretrain_epochs: scaled(20, 5),
        ..PipelineConfig::default()
    };

    let detectors = [
        ("SECOND-like (single stage)", Detector::second_like()),
        ("PV-RCNN-like (two stage)", Detector::pvrcnn_like()),
    ];
    let mut csv = Vec::new();
    let mut rmae_small = [0.0f64; 2];
    let mut baseline_small = [0.0f64; 2];
    let mut rmae_mean = [0.0f64; 2];
    for (di, (name, detector)) in detectors.iter().enumerate() {
        println!("\n-- {name} --");
        for strategy in Strategy::table1_rows() {
            let row = evaluate_cell(strategy, detector, &train, &eval, &config, 7);
            println!("{row}");
            csv.push(format!(
                "{name},{strategy},{:.4},{:.4},{:.4},{:.4}",
                row.car, row.pedestrian, row.cyclist, row.recon_iou
            ));
            if strategy == Strategy::RadialMae {
                rmae_small[di] = (row.pedestrian + row.cyclist) / 2.0;
                rmae_mean[di] = row.mean();
            }
            if strategy == Strategy::None {
                baseline_small[di] = (row.pedestrian + row.cyclist) / 2.0;
            }
        }
    }

    header("shape check vs paper");
    compare(
        "R-MAE lifts small-class AP (SECOND)",
        "+2.41 ped / +3.26 cyc",
        &format!(
            "{:+.1} ped+cyc mean AP",
            (rmae_small[0] - baseline_small[0]) * 100.0
        ),
    );
    compare(
        "R-MAE lifts small-class AP (PV-RCNN)",
        "+0.10 ped / +4.37 cyc",
        &format!(
            "{:+.1} ped+cyc mean AP",
            (rmae_small[1] - baseline_small[1]) * 100.0
        ),
    );
    compare(
        "two-stage beats single-stage (R-MAE row)",
        "PV-RCNN > SECOND",
        &format!(
            "{:.1} vs {:.1} mean AP",
            rmae_mean[1] * 100.0,
            rmae_mean[0] * 100.0
        ),
    );
    assert!(
        rmae_small[0] >= baseline_small[0] && rmae_small[1] >= baseline_small[1],
        "reconstruction did not lift small-class AP"
    );
    println!("shape check passed");
    write_csv(
        "table1",
        "detector,strategy,car,pedestrian,cyclist,recon_iou",
        &csv,
    );

    // DESIGN.md §5 ablation: what a radially pre-trained model reconstructs
    // when deployment masking is *uniform* instead (distribution mismatch).
    if std::env::args().any(|a| a == "--ablate-mask") {
        header("ablation: eval-time masking distribution (radial vs uniform)");
        use sensact_lidar::raycast::{Lidar, LidarConfig};
        use sensact_lidar::voxel::VoxelGrid;
        use sensact_rmae::model::{RmaeConfig, RmaeModel};
        use sensact_rmae::pretrain::{radial_masked_cloud, uniform_masked_cloud, Pretrainer};
        let lidar = Lidar::new(LidarConfig::default());
        let mut trainer = Pretrainer::new(
            RmaeModel::new(RmaeConfig::full(), 7),
            Strategy::RadialMae,
            7,
        );
        trainer.train(&train, config.pretrain_epochs);
        let mut model = trainer.into_model();
        let grid_cfg = RmaeConfig::full().grid;
        let mut iou_radial = 0.0;
        let mut iou_uniform = 0.0;
        for (i, scene) in eval.iter().enumerate() {
            let full = lidar.scan(scene);
            let full_flat = VoxelGrid::from_cloud(grid_cfg, &full).occupancy_flat();
            let radial = radial_masked_cloud(&full, i as u64);
            let ratio = radial.len() as f64 / full.len() as f64;
            let uniform = uniform_masked_cloud(&full, ratio.clamp(0.01, 1.0), i as u64);
            let radial_flat = VoxelGrid::from_cloud(grid_cfg, &radial).occupancy_flat();
            let uniform_flat = VoxelGrid::from_cloud(grid_cfg, &uniform).occupancy_flat();
            iou_radial += model.reconstruction_iou_above_ground(&radial_flat, &full_flat, 0.5);
            iou_uniform += model.reconstruction_iou_above_ground(&uniform_flat, &full_flat, 0.5);
        }
        let n = eval.len() as f64;
        compare(
            "recon IoU under radial vs uniform eval masking",
            "trade-off vs the 1.5x energy saving (table2)",
            &format!("{:.3} vs {:.3}", iou_radial / n, iou_uniform / n),
        );
        println!(
            "note: uniform masking reconstructs better at equal coverage (it touches\n             every object), but costs 1.5x more sensing energy (see table2's ablation)\n             — the two-stage radial mask is the energy-optimal point of that trade-off."
        );
    }
}
