//! Fig. 9 — Optical-flow AEE comparison (left) and AEE vs. model size
//! (right), plus the energy ratios the paper quotes.
//!
//! Paper: Fusion-FlowNet achieves ~40 % lower error than event-only
//! baselines with ~half the parameters and 1.87× lower energy;
//! Adaptive-SpikeNet reaches ~20 % lower AEE than comparable ANNs with far
//! fewer parameters and ~10× less energy.

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_neuro::energy::OpEnergy;
use sensact_neuro::flow::{flow_dataset, FlowModel, FlowModelKind};

fn train_and_eval(
    kind: FlowModelKind,
    hidden: usize,
    train: &[sensact_neuro::event::MovingScene],
    eval: &[sensact_neuro::event::MovingScene],
    epochs: usize,
) -> (FlowModel, f64) {
    let mut model = FlowModel::new(kind, hidden, 1);
    for _ in 0..epochs {
        model.train_epoch(train);
    }
    let aee = model.evaluate_aee(eval);
    (model, aee)
}

fn mean_energy(model: &mut FlowModel, eval: &[sensact_neuro::event::MovingScene]) -> f64 {
    let op = OpEnergy::default();
    eval.iter()
        .map(|s| model.inference_energy(s).energy_uj(&op))
        .sum::<f64>()
        / eval.len() as f64
}

fn main() {
    header("Fig. 9 (left): AEE of the model family");
    let train = flow_dataset(scaled(80, 20), 7);
    let eval = flow_dataset(scaled(24, 8), 999);
    let epochs = scaled(16, 5);

    let kinds = [
        FlowModelKind::FullAnn,
        FlowModelKind::HybridSnnAnn,
        FlowModelKind::Fusion,
        FlowModelKind::FullSnn,
    ];
    let mut csv = Vec::new();
    let mut results = Vec::new();
    for kind in kinds {
        let (mut model, aee) = train_and_eval(kind, 32, &train, &eval, epochs);
        let energy = mean_energy(&mut model, &eval);
        println!(
            "{:<20} AEE {:.4}  params {:>6}  energy {:>8.3} uJ",
            kind.to_string(),
            aee,
            model.param_count(),
            energy
        );
        csv.push(format!(
            "{kind},{aee:.5},{},{energy:.5}",
            model.param_count()
        ));
        results.push((kind, aee, energy));
    }

    header("Fig. 9 (right): AEE vs model size (Adaptive-SpikeNet vs ANN)");
    let mut sweep_csv = Vec::new();
    for hidden in [16, 32, 64, 128] {
        let (_, aee_ann) = train_and_eval(FlowModelKind::FullAnn, hidden, &train, &eval, epochs);
        let (_, aee_snn) = train_and_eval(FlowModelKind::FullSnn, hidden, &train, &eval, epochs);
        println!("hidden {hidden:>4}: ANN AEE {aee_ann:.4}  SNN AEE {aee_snn:.4}");
        sweep_csv.push(format!("{hidden},{aee_ann:.5},{aee_snn:.5}"));
    }

    header("shape check vs paper");
    let aee_ann = results[0].1;
    let aee_fusion = results[2].1;
    let e_ann = results[0].2;
    let e_snn = results[3].2;
    compare(
        "fusion error vs event-only ANN",
        "-40%",
        &format!("{:+.0}%", (aee_fusion / aee_ann - 1.0) * 100.0),
    );
    compare(
        "SNN energy vs ANN energy",
        "10x lower (Adaptive-SpikeNet)",
        &format!("{:.1}x lower", e_ann / e_snn),
    );
    assert!(e_snn < e_ann, "SNN energy {e_snn} not below ANN {e_ann}");
    println!("shape check passed: SNN cheaper than ANN");

    write_csv("fig9_left", "model,aee,params,energy_uj", &csv);
    write_csv("fig9_right", "hidden,ann_aee,snn_aee", &sweep_csv);
}
