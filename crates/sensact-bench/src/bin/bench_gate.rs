//! CI perf-regression gate: re-measure the recorded overhead headlines with
//! the exact shared workloads ([`sensact_bench::obsbench`]) and compare them
//! against the committed baselines with a tolerance band.
//!
//! Three headline checks:
//!
//! * `BENCH_obs.json` → `realistic.disabled_overhead_pct` — the paired
//!   baseline-vs-disabled-tracer tick (the plane's always-on cost);
//! * `BENCH_sched.json` → `overhead_fleet1.overhead_pct` — the paired
//!   raw-vs-scheduled tick at fleet size 1;
//! * `BENCH_serve.json` → `gate.p99_ratio_pct` and
//!   `gate.median_cost_ratio_pct` — batched serving cost as a percentage of
//!   per-loop dispatch at fleet 64 (the cross-loop batching win; a
//!   regression means batching stopped paying for itself). The two modes
//!   are interleaved round-by-round so machine-load epochs cancel out of
//!   the paired quotients; the p99 ratio is the tail headline, the median
//!   cost ratio the tight (±1 pp) sustained-cost one.
//!
//! Overheads are percentages of a microsecond-scale tick, so the band is
//! absolute percentage points: a fresh measurement may exceed its committed
//! baseline by at most `SENSACT_GATE_TOL_PP` (default 4.0). A fresh number
//! *below* the baseline always passes — the gate catches regressions, not
//! improvements. Each headline is measured three times and the best (lowest)
//! overhead is compared: a genuine regression raises every repeat, while a
//! scheduling hiccup only pollutes one. Exits 1 on regression; the
//! `scripts/ci.sh` bench_gate step.

use sensact_bench::obsbench::{paired_realistic, sched_overhead_case};
use sensact_bench::servebench::serve_gate_headline;
use sensact_core::Tracer;

/// Extract the number following `"key":` — enough JSON for our own
/// generated baseline files, no parser dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Best (lowest) of three repeats of a fresh overhead measurement. One
/// repeat can land on a noisy scheduler quantum; a real regression raises
/// the floor of all three.
fn best_of_three(measure: impl Fn() -> f64) -> f64 {
    (0..3).map(|_| measure()).fold(f64::INFINITY, f64::min)
}

/// One gate line: pass unless `fresh` exceeds `committed` by > `tol_pp`.
fn check(name: &str, committed: f64, fresh: f64, tol_pp: f64, failures: &mut u32) {
    let regressed = fresh > committed + tol_pp;
    println!(
        "{:<36} committed {committed:+6.2} %  fresh {fresh:+6.2} %  band +{tol_pp:.1} pp  {}",
        name,
        if regressed { "FAIL" } else { "ok" }
    );
    if regressed {
        *failures += 1;
    }
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let tol_pp: f64 = std::env::var("SENSACT_GATE_TOL_PP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let mut failures = 0u32;

    println!("bench_gate: fresh paired headlines vs committed baselines\n");

    let obs = std::fs::read_to_string(format!("{root}/BENCH_obs.json"))
        .expect("read BENCH_obs.json at the repo root");
    let committed_obs = json_number(&obs, "disabled_overhead_pct")
        .expect("BENCH_obs.json carries realistic.disabled_overhead_pct");
    let fresh_obs = best_of_three(|| {
        let (base_ns, off_ns) = paired_realistic(120, 300, Tracer::disabled());
        (off_ns / base_ns - 1.0) * 100.0
    });
    check(
        "obs disabled-path overhead",
        committed_obs,
        fresh_obs,
        tol_pp,
        &mut failures,
    );

    let sched = std::fs::read_to_string(format!("{root}/BENCH_sched.json"))
        .expect("read BENCH_sched.json at the repo root");
    let committed_sched = json_number(&sched, "overhead_pct")
        .expect("BENCH_sched.json carries overhead_fleet1.overhead_pct");
    let fresh_sched = best_of_three(|| sched_overhead_case(512, 6).overhead_pct);
    check(
        "scheduler per-tick overhead",
        committed_sched,
        fresh_sched,
        tol_pp,
        &mut failures,
    );

    let serve = std::fs::read_to_string(format!("{root}/BENCH_serve.json"))
        .expect("read BENCH_serve.json at the repo root");
    // Scope the key lookup to the "gate" object: the per-fleet rows carry a
    // median_cost_ratio_pct of their own.
    let gate_at = serve
        .find("\"gate\"")
        .expect("BENCH_serve.json carries a gate object");
    let committed_p99 = json_number(&serve[gate_at..], "p99_ratio_pct")
        .expect("BENCH_serve.json carries gate.p99_ratio_pct");
    let committed_median = json_number(&serve[gate_at..], "median_cost_ratio_pct")
        .expect("BENCH_serve.json carries gate.median_cost_ratio_pct");
    // The ratios are ~tens of percent, so the pp band is applied to them
    // directly: batched cost creeping up relative to per-loop dispatch is
    // the regression these lines exist to catch. Three single 400-round
    // passes, best (lowest) of each ratio: a preemption burst pollutes one
    // pass, a genuine batching regression raises all three floors. The
    // committed baselines are medians over five such passes (`bench_serve`),
    // so the fresh floor sits at or below them unless batching regressed.
    let (mut fresh_p99, mut fresh_median) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let (p99, median) = serve_gate_headline(64, 400, 1);
        fresh_p99 = fresh_p99.min(p99);
        fresh_median = fresh_median.min(median);
    }
    check(
        "serving batched/unbatched p99",
        committed_p99,
        fresh_p99,
        tol_pp,
        &mut failures,
    );
    check(
        "serving batched/unbatched median",
        committed_median,
        fresh_median,
        tol_pp,
        &mut failures,
    );

    if failures > 0 {
        eprintln!("\nbench_gate FAILED: {failures} headline(s) regressed past the band");
        std::process::exit(1);
    }
    println!("\nbench_gate passed.");
}
