//! CI perf-regression gate: re-measure the recorded overhead headlines with
//! the exact shared workloads ([`sensact_bench::obsbench`]) and compare them
//! against the committed baselines with a tolerance band.
//!
//! Two headline checks:
//!
//! * `BENCH_obs.json` → `realistic.disabled_overhead_pct` — the paired
//!   baseline-vs-disabled-tracer tick (the plane's always-on cost);
//! * `BENCH_sched.json` → `overhead_fleet1.overhead_pct` — the paired
//!   raw-vs-scheduled tick at fleet size 1.
//!
//! Overheads are percentages of a microsecond-scale tick, so the band is
//! absolute percentage points: a fresh measurement may exceed its committed
//! baseline by at most `SENSACT_GATE_TOL_PP` (default 4.0). A fresh number
//! *below* the baseline always passes — the gate catches regressions, not
//! improvements. Each headline is measured three times and the best (lowest)
//! overhead is compared: a genuine regression raises every repeat, while a
//! scheduling hiccup only pollutes one. Exits 1 on regression; the
//! `scripts/ci.sh` bench_gate step.

use sensact_bench::obsbench::{paired_realistic, sched_overhead_case};
use sensact_core::Tracer;

/// Extract the number following `"key":` — enough JSON for our own
/// generated baseline files, no parser dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Best (lowest) of three repeats of a fresh overhead measurement. One
/// repeat can land on a noisy scheduler quantum; a real regression raises
/// the floor of all three.
fn best_of_three(measure: impl Fn() -> f64) -> f64 {
    (0..3).map(|_| measure()).fold(f64::INFINITY, f64::min)
}

/// One gate line: pass unless `fresh` exceeds `committed` by > `tol_pp`.
fn check(name: &str, committed: f64, fresh: f64, tol_pp: f64, failures: &mut u32) {
    let regressed = fresh > committed + tol_pp;
    println!(
        "{:<36} committed {committed:+6.2} %  fresh {fresh:+6.2} %  band +{tol_pp:.1} pp  {}",
        name,
        if regressed { "FAIL" } else { "ok" }
    );
    if regressed {
        *failures += 1;
    }
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let tol_pp: f64 = std::env::var("SENSACT_GATE_TOL_PP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let mut failures = 0u32;

    println!("bench_gate: fresh paired headlines vs committed baselines\n");

    let obs = std::fs::read_to_string(format!("{root}/BENCH_obs.json"))
        .expect("read BENCH_obs.json at the repo root");
    let committed_obs = json_number(&obs, "disabled_overhead_pct")
        .expect("BENCH_obs.json carries realistic.disabled_overhead_pct");
    let fresh_obs = best_of_three(|| {
        let (base_ns, off_ns) = paired_realistic(120, 300, Tracer::disabled());
        (off_ns / base_ns - 1.0) * 100.0
    });
    check(
        "obs disabled-path overhead",
        committed_obs,
        fresh_obs,
        tol_pp,
        &mut failures,
    );

    let sched = std::fs::read_to_string(format!("{root}/BENCH_sched.json"))
        .expect("read BENCH_sched.json at the repo root");
    let committed_sched = json_number(&sched, "overhead_pct")
        .expect("BENCH_sched.json carries overhead_fleet1.overhead_pct");
    let fresh_sched = best_of_three(|| sched_overhead_case(512, 6).overhead_pct);
    check(
        "scheduler per-tick overhead",
        committed_sched,
        fresh_sched,
        tol_pp,
        &mut failures,
    );

    if failures > 0 {
        eprintln!("\nbench_gate FAILED: {failures} headline(s) regressed past the band");
        std::process::exit(1);
    }
    println!("\nbench_gate passed.");
}
