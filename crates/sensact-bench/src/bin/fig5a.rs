//! Fig. 5a — Computational load of the dynamical models.
//!
//! Paper: the spectral Koopman approach needs the fewest MAC operations for
//! control and prediction; the Transformer the most. We print the per-step
//! MAC counts of the five models (same latent dimension).

use sensact_bench::{compare, header, write_csv};
use sensact_koopman::baselines::{
    DenseKoopman, LatentModel, MlpDynamics, RecurrentDynamics, TransformerDynamics,
};
use sensact_koopman::encoder::SpectralKoopman;

fn main() {
    header("Fig. 5a: MACs per prediction step and per control decision");
    let mut spectral = SpectralKoopman::new(0);
    let mut dense = DenseKoopman::new(0);
    let mut mlp = MlpDynamics::new(0);
    let mut recurrent = RecurrentDynamics::new(0);
    let mut transformer = TransformerDynamics::new(0);

    let mut rows: Vec<(&str, u64, u64)> = Vec::new();
    {
        let models: [(&str, &mut dyn LatentModel); 5] = [
            ("SpectralKoopman (ours)", &mut spectral),
            ("DenseKoopman", &mut dense),
            ("MLP", &mut mlp),
            ("Recurrent", &mut recurrent),
            ("Transformer", &mut transformer),
        ];
        for (name, m) in models {
            rows.push((name, m.prediction_macs(), m.control_macs()));
        }
    }

    println!(
        "{:<24} {:>16} {:>16}",
        "model", "prediction MACs", "control MACs"
    );
    for (name, pred, ctrl) in &rows {
        println!("{name:<24} {pred:>16} {ctrl:>16}");
    }

    header("shape check vs paper");
    let spectral_total = rows[0].1 + rows[0].2;
    let min_other = rows[1..].iter().map(|(_, p, c)| p + c).min().unwrap();
    let tf_total = rows[4].1 + rows[4].2;
    let max_other = rows[..4].iter().map(|(_, p, c)| p + c).max().unwrap();
    compare(
        "spectral Koopman is cheapest",
        "fewest MACs",
        &format!("{spectral_total} vs next {min_other}"),
    );
    compare(
        "Transformer is the most expensive",
        "highest MACs",
        &format!("{tf_total} vs next {max_other}"),
    );
    assert!(spectral_total < min_other, "ours not cheapest");
    assert!(tf_total > max_other, "transformer not most expensive");
    println!("shape check passed");

    write_csv(
        "fig5a",
        "model,prediction_macs,control_macs",
        &rows
            .iter()
            .map(|(n, p, c)| format!("{n},{p},{c}"))
            .collect::<Vec<_>>(),
    );
}
