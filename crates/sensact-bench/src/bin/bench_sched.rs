//! Fleet-runtime scaling bench: `sensact-sched` throughput and overhead.
//!
//! Two questions, two sections:
//!
//! 1. **Fleet throughput** (virtual time): a fleet of N identical loops on
//!    W = 8 deterministic virtual workers versus the same fleet on a single
//!    worker (the sequential baseline). The schedule is sized to exact
//!    capacity — each loop ticks K = 5 times at a period chosen so the
//!    aggregate charged latency just saturates the pool — so the ideal
//!    speedup is W. Acceptance: ≥ 4× at 1 000 loops. Sizes 100 / 1 000 /
//!    4 000 (smoke: 16 / 64).
//! 2. **Scheduler overhead** (wall clock) at fleet size 1: the realistic
//!    256-sample workload ticked raw (`SensingActionLoop::tick` in a plain
//!    loop) versus through `FleetScheduler::run_deterministic`. Batches are
//!    paired and interleaved so CPU frequency drift cancels. Acceptance:
//!    < 5 % per-tick overhead.
//!
//! Writes `BENCH_sched.json` at the repo root (full mode only, so CI smoke
//! runs don't clobber recorded numbers). Run with `--smoke` (or
//! `SENSACT_QUICK=1`) for the reduced sizes.

use sensact_bench::obsbench::sched_overhead_case;
use sensact_bench::{compare, header};
use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext, Trust};
use sensact_core::trace::SimClock;
use sensact_core::LoopBuilder;
use sensact_sched::{FleetConfig, FleetReport, FleetScheduler, LoopHandle, LoopSpec};

/// Virtual workers for the fleet runs (the machine's core count is
/// irrelevant — deterministic mode simulates the pool in virtual time).
const WORKERS: usize = 8;
/// Ticks per loop in every throughput run.
const TICKS_PER_LOOP: u64 = 5;
/// Charged latency of one trivial tick (virtual seconds).
const TICK_LATENCY_S: f64 = 1e-4;

fn smoke() -> bool {
    sensact_bench::quick() || std::env::args().any(|a| a == "--smoke")
}

/// A trivial member loop charging a fixed latency/energy per tick.
fn trivial_handle(name: String) -> LoopHandle {
    let looop = LoopBuilder::new(name).build(
        FnSensor::new(|e: &f64, ctx: &mut StageContext| {
            ctx.charge(1e-6, TICK_LATENCY_S);
            *e
        }),
        FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
        FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.5 * f),
    );
    LoopHandle::closed(looop, 1.0f64, |_, _| {})
}

/// Run N trivial loops over `workers` virtual workers at exact capacity:
/// period = N·latency/WORKERS, horizon = K periods ⇒ K ticks per loop.
fn fleet_run(n: usize, workers: usize) -> FleetReport {
    let period_s = n as f64 * TICK_LATENCY_S / WORKERS as f64;
    let horizon_s = TICKS_PER_LOOP as f64 * period_s;
    let mut fleet = FleetScheduler::new(FleetConfig {
        workers,
        watts_cap: None,
        seed: 42,
    });
    for i in 0..n {
        fleet.register(
            trivial_handle(format!("m{i}")),
            // Effectively unbounded queue: the single-worker baseline runs
            // far behind the release schedule and must not shed load, so
            // both runs execute the identical N·K ticks.
            LoopSpec::periodic(period_s).with_queue_capacity(usize::MAX),
        );
    }
    fleet.run_deterministic(horizon_s, &mut SimClock::new())
}

struct ThroughputRow {
    loops: usize,
    fleet_makespan_s: f64,
    sequential_makespan_s: f64,
    ticks: u64,
    speedup: f64,
    utilization: f64,
}

fn throughput_case(n: usize) -> ThroughputRow {
    let fleet = fleet_run(n, WORKERS);
    let sequential = fleet_run(n, 1);
    assert_eq!(
        fleet.ticks, sequential.ticks,
        "both runs must execute the identical schedule"
    );
    assert_eq!(fleet.drops + sequential.drops, 0, "no run may drop ticks");
    ThroughputRow {
        loops: n,
        fleet_makespan_s: fleet.makespan_s,
        sequential_makespan_s: sequential.makespan_s,
        ticks: fleet.ticks,
        speedup: sequential.makespan_s / fleet.makespan_s,
        utilization: fleet.mean_utilization(),
    }
}

fn main() {
    let smoke = smoke();
    let sizes: &[usize] = if smoke { &[16, 64] } else { &[100, 1000, 4000] };

    header(&format!(
        "fleet throughput — {WORKERS} virtual workers vs sequential, K = {TICKS_PER_LOOP} ticks/loop"
    ));
    let rows: Vec<ThroughputRow> = sizes.iter().map(|&n| throughput_case(n)).collect();
    for r in &rows {
        compare(
            &format!("{} loops ({} ticks)", r.loops, r.ticks),
            "ideal 8.0x",
            &format!(
                "{:.2}x  (makespan {:.4} s vs {:.4} s, util {:.0}%)",
                r.speedup,
                r.fleet_makespan_s,
                r.sequential_makespan_s,
                100.0 * r.utilization
            ),
        );
    }

    header("scheduler overhead at fleet size 1 — realistic 256-sample workload");
    let (batch, rounds) = if smoke { (256, 4) } else { (2048, 12) };
    let overhead = sched_overhead_case(batch, rounds);
    compare(
        "per-tick overhead (target < 5 %)",
        "raw tick",
        &format!(
            "raw {:.1} ns, scheduled {:.1} ns, overhead {:+.2} %",
            overhead.raw_tick_ns, overhead.scheduled_tick_ns, overhead.overhead_pct
        ),
    );

    let csv_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{:.6},{:.6},{:.3},{:.3}",
                r.loops,
                WORKERS,
                r.ticks,
                r.fleet_makespan_s,
                r.sequential_makespan_s,
                r.speedup,
                r.utilization
            )
        })
        .collect();
    sensact_bench::write_csv(
        "bench_sched",
        "loops,workers,ticks,fleet_makespan_s,sequential_makespan_s,speedup,utilization",
        &csv_rows,
    );

    if !smoke {
        let throughput_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"loops\": {}, \"ticks\": {}, \"fleet_makespan_s\": {:.6}, \"sequential_makespan_s\": {:.6}, \"speedup\": {:.3}, \"utilization\": {:.3} }}",
                    r.loops,
                    r.ticks,
                    r.fleet_makespan_s,
                    r.sequential_makespan_s,
                    r.speedup,
                    r.utilization
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"workers\": {WORKERS},\n  \"ticks_per_loop\": {TICKS_PER_LOOP},\n  \"throughput\": [\n{}\n  ],\n  \"overhead_fleet1\": {{\n    \"raw_tick_ns\": {:.1},\n    \"scheduled_tick_ns\": {:.1},\n    \"overhead_pct\": {:.2}\n  }}\n}}\n",
            throughput_json.join(",\n"),
            overhead.raw_tick_ns,
            overhead.scheduled_tick_ns,
            overhead.overhead_pct
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
        std::fs::write(path, json).expect("write BENCH_sched.json");
        println!("wrote BENCH_sched.json");
    }
}
