//! Differential conformance harness: every optimized kernel vs. its
//! reference, continuously.
//!
//! PR 1 established the guarantees (GEMM naive/blocked/parallel and the
//! raycast trio bitwise identical; conv/deconv im2col vs. gather-loop
//! ≤ 1e-12) and PR 3 added bit-exact JSONL export; this bin re-checks all of
//! them over seeded sweeps on every CI run, reports the max ULP divergence
//! per kernel pair, and fails (non-zero exit) on any violated contract — the
//! regression oracle every future perf PR runs against.
//!
//! The matrix, tiered by precision mode:
//! - `gemm_blocked`/`gemm_parallel` vs. `gemm_naive` over shape/alpha/beta
//!   sweeps — **bitwise** (ascending-k contract)
//! - `gemm` (dispatcher)/`gemm_simd`/`gemm_transb` vs. `gemm_naive` —
//!   per-element error ratio against the analytic FMA forward-error bound
//!   `2·γ_{k+2}·(|αA|·|B|)` ≤ 1; collapses to bitwise (ratio 0) on SSE2,
//!   scalar, and `SENSACT_FORCE_SCALAR=1` hosts
//! - `gemm_f32`/`gemm_transb_f32` vs. f64 accumulation of the f32-rounded
//!   operands — ratio against the single-precision bound ≤ 1
//! - `gemm_int8`/`gemm_transb_int8` vs. `gemm_naive` — ratio against the
//!   quantization bound `k·(max|A|·s_b/2 + (max|B|+s_b/2)·s_a/2)` ≤ 1
//!   (integer accumulation is exact; the two int8 layouts are bitwise equal)
//! - `gemm_transa`/`matvec_into` vs. `gemm_naive` on explicitly transposed
//!   operands, `beta = 0` — **bitwise**
//! - `Conv3d::forward`/`Deconv3d::forward` vs. `forward_reference` —
//!   max |Δ| ≤ 1e-12 (im2col reorders additions), ULP reported
//! - `gemm_batched`/`gemm_transb_batched` vs. the per-item kernels over
//!   seeded shapes *including ragged tail batches* — **bitwise** (the
//!   batched kernels pin dispatch on the per-item shape)
//! - `Conv3d::forward_batch` vs. the per-row forward — **bitwise** at f64
//!   for every batch size; f32/int8 batched outputs stay within their
//!   analytic precision tiers of the f64 per-row reference
//! - `Lidar::scan`/`scan_serial` vs. `scan_reference` — **bitwise**
//! - fake-quantize grid invariants (on-grid, idempotent, half-step error
//!   bound, poisoned-buffer saturation) over seeded buffers
//! - JSONL export round-trips (span/tick, hostile floats, all precision
//!   modes) — **bitwise**
//! - record → serialize → parse → replay of a faulty 1k-tick loop —
//!   **bitwise** per tick (`--smoke`: 200 ticks)
//! - the same round-trip for a budget-pressured mixed-precision loop that
//!   must visit all three precision modes and replay its exact schedule
//!
//! Results land in `BENCH_conformance.json` (tagged with the host ISA). Run
//! with `--smoke` for the small CI matrix.

use sensact_core::export::{parse_span, parse_tick, span_to_json, tick_to_json};
use sensact_core::replay::Recording;
use sensact_core::stage::{AlwaysTrust, FnController, FnPerceptor, FnSensor, StageContext, Trust};
use sensact_core::telemetry::TickRecord;
use sensact_core::trace::{Span, StageBreakdown, StageId};
use sensact_core::{
    EnergyBudget, FallibleLoop, FaultInjector, FaultProfile, Precision as RunPrecision,
    PrecisionPolicy, RecoveryPolicy, Reliable, WithFallback,
};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_math::kernels;
use sensact_math::rng::StdRng;
use sensact_nn::conv::{Conv3d, Deconv3d, Dims3};
use sensact_nn::init::Initializer;
use sensact_nn::layers::Layer;
use sensact_nn::quant::{fake_quantize, try_fake_quantize, Precision, QuantError};
use sensact_nn::Tensor;
use std::io::Write as _;

/// Map a float to an order-preserving integer so ULP distance is a
/// subtraction: negative floats flip to descending-from-zero, positives
/// shift above.
fn ulp_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// ULP distance between two floats; 0 iff bitwise identical, `u64::MAX` when
/// exactly one side is NaN.
fn ulp_diff(a: f64, b: f64) -> u64 {
    if a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()) {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    ulp_key(a).abs_diff(ulp_key(b))
}

fn max_ulp(a: &[f64], b: &[f64]) -> u64 {
    assert_eq!(a.len(), b.len(), "conformance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulp_diff(x, y))
        .fold(0, u64::max)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// One kernel-pair verdict of the matrix.
struct Pair {
    name: &'static str,
    cases: usize,
    max_ulp: u64,
    max_abs: f64,
    /// Allowed max |Δ|; 0.0 means the pair must be bitwise identical.
    tolerance: f64,
    pass: bool,
}

impl Pair {
    fn check(name: &'static str, cases: usize, max_ulp: u64, max_abs: f64, tolerance: f64) -> Self {
        let pass = if tolerance == 0.0 {
            max_ulp == 0
        } else {
            max_abs <= tolerance
        };
        Pair {
            name,
            cases,
            max_ulp,
            max_abs,
            tolerance,
            pass,
        }
    }
}

/// Per-element forward-error bound for the FMA microkernel versus the naive
/// ascending-k kernel: `2·γ_{k+2}·(|αA|·|B|) + 2ε·|β·C₀|`. The `1e-300`
/// floor keeps an exact-zero element from turning the ratio into `0/0`.
#[allow(clippy::too_many_arguments)] // mirrors the GEMM signature it bounds
fn fma_bound(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c0: &[f64],
) -> Vec<f64> {
    let abs_a: Vec<f64> = a.iter().map(|x| (alpha * x).abs()).collect();
    let abs_b: Vec<f64> = b.iter().map(|x| x.abs()).collect();
    let mut bound = vec![0.0; m * n];
    kernels::gemm_naive(m, n, k, 1.0, &abs_a, &abs_b, 0.0, &mut bound);
    let gamma = 2.0 * (k as f64 + 2.0) * f64::EPSILON;
    for (i, x) in bound.iter_mut().enumerate() {
        let beta_term = if beta == 0.0 {
            0.0
        } else {
            2.0 * f64::EPSILON * (beta * c0[i]).abs()
        };
        *x = *x * gamma + beta_term + 1e-300;
    }
    bound
}

/// Largest per-element `|reference - candidate| / bound`; ≤ 1 means the
/// candidate conforms to its analytic tier.
fn max_ratio(reference: &[f64], candidate: &[f64], bound: &[f64]) -> f64 {
    reference
        .iter()
        .zip(candidate)
        .zip(bound)
        .map(|((&r, &c), &b)| (r - c).abs() / b)
        .fold(0.0, f64::max)
}

fn gemm_pairs(smoke: bool, pairs: &mut Vec<Pair>) {
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(5, 7, 11), (16, 16, 16), (24, 1, 32)]
    } else {
        // The last shape crosses PAR_MIN_OPS so gemm_parallel genuinely
        // bands across threads and the dispatcher takes the parallel path.
        &[
            (5, 7, 11),
            (16, 16, 16),
            (24, 1, 32),
            (64, 48, 112),
            (160, 160, 96),
        ]
    };
    let params: &[(f64, f64)] = &[(1.0, 0.0), (0.5, 0.0), (-1.25, 0.75), (1.0, 1.0)];
    let mut rng = StdRng::seed_from_u64(0xC0F0_0001);
    let (mut duo_ulp, mut duo_abs, mut duo_cases) = (0u64, 0.0f64, 0usize);
    let (mut simd_ulp, mut simd_ratio, mut simd_cases) = (0u64, 0.0f64, 0usize);
    let (mut trans_ulp, mut trans_abs, mut trans_cases) = (0u64, 0.0f64, 0usize);
    let (mut tb_ulp, mut tb_ratio, mut tb_cases) = (0u64, 0.0f64, 0usize);
    for &(m, n, k) in shapes {
        let a: Vec<f64> = (0..m * k)
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        let b: Vec<f64> = (0..k * n)
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        let c0: Vec<f64> = (0..m * n)
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        for &(alpha, beta) in params {
            let mut c_ref = c0.clone();
            kernels::gemm_naive(m, n, k, alpha, &a, &b, beta, &mut c_ref);
            // Scalar tier: the cache-blocked and row-banded kernels keep the
            // ascending-k contract, so they stay bitwise.
            for gemm in [kernels::gemm_blocked, kernels::gemm_parallel] {
                let mut c = c0.clone();
                gemm(m, n, k, alpha, &a, &b, beta, &mut c);
                duo_ulp = duo_ulp.max(max_ulp(&c_ref, &c));
                duo_abs = duo_abs.max(max_abs_diff(&c_ref, &c));
                duo_cases += 1;
            }
            // SIMD tier: the dispatcher and the pinned SIMD entry point may
            // take the FMA microkernel, which rounds once per step — checked
            // against the per-element analytic bound instead of bitwise.
            let bound = fma_bound(m, n, k, alpha, &a, &b, beta, &c0);
            for gemm in [kernels::gemm, kernels::gemm_simd] {
                let mut c = c0.clone();
                gemm(m, n, k, alpha, &a, &b, beta, &mut c);
                simd_ulp = simd_ulp.max(max_ulp(&c_ref, &c));
                simd_ratio = simd_ratio.max(max_ratio(&c_ref, &c, &bound));
                simd_cases += 1;
            }
        }

        // Transposed layouts and matvec, beta = 0 (the layout kernels fold
        // beta into a different accumulation order, so only the overwrite
        // case carries the bitwise contract).
        let alpha = 1.5;
        let mut c_ref = vec![0.0; m * n];
        kernels::gemm_naive(m, n, k, alpha, &a, &b, 0.0, &mut c_ref);

        // transb dispatches to the SIMD microkernel too: FMA-bound tier.
        let bound = fma_bound(m, n, k, alpha, &a, &b, 0.0, &c0);
        let mut bt = vec![0.0; k * n];
        kernels::transpose_into(k, n, &b, &mut bt);
        let mut c = vec![1.0; m * n]; // stale contents must be ignored
        kernels::gemm_transb(m, n, k, alpha, &a, &bt, 0.0, &mut c);
        tb_ulp = tb_ulp.max(max_ulp(&c_ref, &c));
        tb_ratio = tb_ratio.max(max_ratio(&c_ref, &c, &bound));
        tb_cases += 1;

        let mut at = vec![0.0; m * k];
        kernels::transpose_into(m, k, &a, &mut at);
        let mut c = vec![-2.0; m * n];
        kernels::gemm_transa(m, n, k, alpha, &at, &b, 0.0, &mut c);
        trans_ulp = trans_ulp.max(max_ulp(&c_ref, &c));
        trans_abs = trans_abs.max(max_abs_diff(&c_ref, &c));

        let x = &b[..k]; // first column layout: use a dedicated n=1 product
        let mut y_ref = vec![0.0; m];
        kernels::gemm_naive(m, 1, k, 1.0, &a, x, 0.0, &mut y_ref);
        let mut y = vec![f64::NAN; m]; // matvec fully overwrites
        kernels::matvec_into(m, k, &a, x, &mut y);
        trans_ulp = trans_ulp.max(max_ulp(&y_ref, &y));
        trans_abs = trans_abs.max(max_abs_diff(&y_ref, &y));
        trans_cases += 2;
    }
    pairs.push(Pair::check(
        "gemm_blocked_parallel_vs_naive",
        duo_cases,
        duo_ulp,
        duo_abs,
        0.0,
    ));
    pairs.push(Pair::check(
        "gemm_simd_dispatch_fma_error_ratio",
        simd_cases,
        simd_ulp,
        simd_ratio,
        1.0,
    ));
    pairs.push(Pair::check(
        "gemm_transb_fma_error_ratio",
        tb_cases,
        tb_ulp,
        tb_ratio,
        1.0,
    ));
    pairs.push(Pair::check(
        "gemm_transa_matvec_vs_naive",
        trans_cases,
        trans_ulp,
        trans_abs,
        0.0,
    ));
}

/// Per-precision tolerance tiers for the f32 and int8 GEMM paths, each
/// checked as a ratio against its own analytic bound.
fn precision_pairs(smoke: bool, pairs: &mut Vec<Pair>) {
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(4, 7, 5), (16, 16, 64)]
    } else {
        &[(4, 7, 5), (1, 33, 16), (64, 64, 64), (40, 50, 300)]
    };
    let mut rng = StdRng::seed_from_u64(0xC0F0_0004);
    let (mut f_ulp, mut f_ratio, mut f_cases) = (0u64, 0.0f64, 0usize);
    let (mut q_ulp, mut q_ratio, mut q_cases) = (0u64, 0.0f64, 0usize);
    for &(m, n, k) in shapes {
        // f32 tier: reference is f64 accumulation of the *f32-rounded*
        // operands, so the measured error is purely the f32 accumulation.
        let a32: Vec<f32> = (0..m * k)
            .map(|_| rng.random::<f64>() as f32 - 0.5)
            .collect();
        let b32: Vec<f32> = (0..k * n)
            .map(|_| rng.random::<f64>() as f32 - 0.5)
            .collect();
        let a64: Vec<f64> = a32.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b32.iter().map(|&x| x as f64).collect();
        let mut c_ref = vec![0.0f64; m * n];
        kernels::gemm_naive(m, n, k, 1.0, &a64, &b64, 0.0, &mut c_ref);
        let mut bound = fma_bound(m, n, k, 1.0, &a64, &b64, 0.0, &[]);
        for x in bound.iter_mut() {
            // Same |A|·|B| magnitude profile, single-precision epsilon.
            *x = *x / f64::EPSILON * f32::EPSILON as f64 + 1e-30;
        }
        let mut c32 = vec![f32::NAN; m * n];
        kernels::gemm_f32(m, n, k, 1.0, &a32, &b32, 0.0, &mut c32);
        let mut bt32 = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt32[j * k + kk] = b32[kk * n + j];
            }
        }
        let mut c32t = vec![f32::NAN; m * n];
        kernels::gemm_transb_f32(m, n, k, 1.0, &a32, &bt32, 0.0, &mut c32t);
        for c in [&c32, &c32t] {
            let c64: Vec<f64> = c.iter().map(|&x| x as f64).collect();
            f_ulp = f_ulp.max(max_ulp(&c_ref, &c64));
            f_ratio = f_ratio.max(max_ratio(&c_ref, &c64, &bound));
            f_cases += 1;
        }

        // int8 tier: integer accumulation is exact, so the whole error is
        // input quantization — bounded by the scales the call reports.
        let a: Vec<f64> = (0..m * k)
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        let b: Vec<f64> = (0..k * n)
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        let mut c_ref = vec![0.0f64; m * n];
        kernels::gemm_naive(m, n, k, 1.0, &a, &b, 0.0, &mut c_ref);
        let mut c_q = vec![f64::NAN; m * n];
        let report = kernels::gemm_int8(m, n, k, &a, &b, &mut c_q);
        let max_a = a.iter().fold(0.0f64, |acc, &x| acc.max(x.abs()));
        let max_b = b.iter().fold(0.0f64, |acc, &x| acc.max(x.abs()));
        let half_a = report.scale_a / 2.0;
        let half_b = report.scale_b / 2.0;
        let tol = k as f64 * (max_a * half_b + (max_b + half_b) * half_a) + 1e-12;
        q_ulp = q_ulp.max(max_ulp(&c_ref, &c_q));
        q_ratio = q_ratio.max(max_abs_diff(&c_ref, &c_q) / tol);
        // The transb layout quantizes to the same codes: bitwise equal.
        let mut bt = vec![0.0f64; n * k];
        kernels::transpose_into(k, n, &b, &mut bt);
        let mut c_qt = vec![f64::NAN; m * n];
        let report_t = kernels::gemm_transb_int8(m, n, k, &a, &bt, &mut c_qt);
        if c_qt != c_q || report_t != report {
            q_ratio = f64::INFINITY;
        }
        q_cases += 2;
    }
    pairs.push(Pair::check(
        "gemm_f32_error_ratio",
        f_cases,
        f_ulp,
        f_ratio,
        1.0,
    ));
    pairs.push(Pair::check(
        "gemm_int8_quant_error_ratio",
        q_cases,
        q_ulp,
        q_ratio,
        1.0,
    ));
}

fn conv_pairs(smoke: bool, pairs: &mut Vec<Pair>) {
    const TOL: f64 = 1e-12;
    let configs: &[(usize, usize, usize, usize, usize, usize)] = if smoke {
        // (cin, cout, kernel, stride, pad, edge)
        &[(2, 3, 3, 1, 1, 5)]
    } else {
        &[(2, 3, 3, 1, 1, 5), (3, 4, 3, 2, 1, 7), (1, 2, 2, 1, 0, 6)]
    };
    let mut rng = StdRng::seed_from_u64(0xC0F0_0002);
    let (mut c_ulp, mut c_abs, mut c_cases) = (0u64, 0.0f64, 0usize);
    let (mut d_ulp, mut d_abs, mut d_cases) = (0u64, 0.0f64, 0usize);
    for &(cin, cout, kernel, stride, pad, edge) in configs {
        let dims = Dims3::new(edge, edge, edge);
        let mut init = Initializer::new(11);
        let mut conv = Conv3d::new(cin, cout, kernel, stride, pad, dims, &mut init);
        let xlen = cin * dims.volume();
        let x: Vec<f64> = (0..2 * xlen).map(|_| rng.random::<f64>() - 0.5).collect();
        let input = Tensor::from_vec(vec![2, xlen], x);
        let reference = conv.forward_reference(&input);
        let fast = conv.forward(&input, false);
        c_ulp = c_ulp.max(max_ulp(reference.as_slice(), fast.as_slice()));
        c_abs = c_abs.max(max_abs_diff(reference.as_slice(), fast.as_slice()));
        c_cases += 1;

        let mut init = Initializer::new(13);
        let mut deconv = Deconv3d::new(cin, cout, kernel, stride, pad, dims, &mut init);
        let reference = deconv.forward_reference(&input);
        let fast = deconv.forward(&input, false);
        d_ulp = d_ulp.max(max_ulp(reference.as_slice(), fast.as_slice()));
        d_abs = d_abs.max(max_abs_diff(reference.as_slice(), fast.as_slice()));
        d_cases += 1;
    }
    pairs.push(Pair::check(
        "conv3d_im2col_vs_reference",
        c_cases,
        c_ulp,
        c_abs,
        TOL,
    ));
    pairs.push(Pair::check(
        "deconv3d_col2im_vs_reference",
        d_cases,
        d_ulp,
        d_abs,
        TOL,
    ));
}

/// Batched GEMM vs. per-item dispatch: the serving front-end's cross-loop
/// batching contract. Both batched kernels pin their internal dispatch on
/// the PER-ITEM shape, so every slab must be bitwise identical to calling
/// the per-item kernel on it — including ragged batch sizes that don't
/// fill the register blocking.
fn batched_gemm_pairs(smoke: bool, pairs: &mut Vec<Pair>) {
    let batches: &[usize] = if smoke { &[1, 3] } else { &[1, 2, 3, 5, 8] };
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(4, 4, 8), (8, 16, 27)]
    } else {
        // Shapes straddle the SIMD eligibility threshold so both the
        // vectorized and scalar per-item paths are exercised; k = 0 checks
        // the pure beta-scaling edge.
        &[(4, 4, 8), (3, 5, 7), (8, 16, 27), (16, 64, 27), (4, 4, 0)]
    };
    let params: &[(f64, f64)] = &[(1.0, 0.0), (1.0, 1.0), (-0.5, 0.75)];
    let mut rng = StdRng::seed_from_u64(0xC0F0_0005);
    let (mut b_ulp, mut b_abs, mut b_cases) = (0u64, 0.0f64, 0usize);
    let (mut t_ulp, mut t_abs, mut t_cases) = (0u64, 0.0f64, 0usize);
    for &batch in batches {
        for &(m, n, k) in shapes {
            let mut rand = |len: usize| -> Vec<f64> {
                (0..len).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
            };
            for &(alpha, beta) in params {
                // Stacked-A form: per-item A slabs against one shared B.
                let a_stack = rand(batch * m * k);
                let b = rand(k * n);
                let c0 = rand(batch * m * n);
                let mut c_batched = c0.clone();
                kernels::gemm_batched(batch, m, n, k, alpha, &a_stack, &b, beta, &mut c_batched);
                let mut c_items = c0.clone();
                for t in 0..batch {
                    kernels::gemm(
                        m,
                        n,
                        k,
                        alpha,
                        &a_stack[t * m * k..(t + 1) * m * k],
                        &b,
                        beta,
                        &mut c_items[t * m * n..(t + 1) * m * n],
                    );
                }
                b_ulp = b_ulp.max(max_ulp(&c_items, &c_batched));
                b_abs = b_abs.max(max_abs_diff(&c_items, &c_batched));
                b_cases += 1;

                // Stacked-Bᵀ form (the im2col layout): shared A weights
                // against per-item transposed panels.
                let a = rand(m * k);
                let bt_stack = rand(batch * n * k);
                let c0 = rand(batch * m * n);
                let mut c_batched = c0.clone();
                kernels::gemm_transb_batched(
                    batch,
                    m,
                    n,
                    k,
                    alpha,
                    &a,
                    &bt_stack,
                    beta,
                    &mut c_batched,
                );
                let mut c_items = c0.clone();
                for t in 0..batch {
                    kernels::gemm_transb(
                        m,
                        n,
                        k,
                        alpha,
                        &a,
                        &bt_stack[t * n * k..(t + 1) * n * k],
                        beta,
                        &mut c_items[t * m * n..(t + 1) * m * n],
                    );
                }
                t_ulp = t_ulp.max(max_ulp(&c_items, &c_batched));
                t_abs = t_abs.max(max_abs_diff(&c_items, &c_batched));
                t_cases += 1;
            }
        }
    }
    pairs.push(Pair::check(
        "gemm_batched_vs_per_item",
        b_cases,
        b_ulp,
        b_abs,
        0.0,
    ));
    pairs.push(Pair::check(
        "gemm_transb_batched_vs_per_item",
        t_cases,
        t_ulp,
        t_abs,
        0.0,
    ));
}

/// Batched conv forward vs. the per-row forward, per precision tier: f64
/// bitwise for every batch size (ragged tails included); f32 and int8
/// within analytic envelopes of the f64 per-row reference (the batched
/// low-precision paths share grids/panels across the batch, so they are
/// not bitwise — but their error stays inside the tier).
fn batched_conv_pairs(smoke: bool, pairs: &mut Vec<Pair>) {
    // (cin, cout, kernel, stride, pad, edge); first entry is the serving
    // front-end's LidarConv signature.
    let configs: &[(usize, usize, usize, usize, usize, usize)] = if smoke {
        &[(1, 4, 3, 2, 1, 8)]
    } else {
        &[(1, 4, 3, 2, 1, 8), (2, 3, 3, 1, 1, 5)]
    };
    let batches: &[usize] = if smoke { &[1, 3] } else { &[1, 2, 3, 5] };
    let mut rng = StdRng::seed_from_u64(0xC0F0_0006);
    let (mut f64_ulp, mut f64_abs, mut f64_cases) = (0u64, 0.0f64, 0usize);
    let (mut f32_ulp, mut f32_ratio, mut f32_cases) = (0u64, 0.0f64, 0usize);
    let (mut i8_ulp, mut i8_ratio, mut i8_cases) = (0u64, 0.0f64, 0usize);
    for &(cin, cout, kernel, stride, pad, edge) in configs {
        let dims = Dims3::new(edge, edge, edge);
        let mut init = Initializer::new(0x5E2E);
        let mut conv = Conv3d::new(cin, cout, kernel, stride, pad, dims, &mut init);
        let in_feat = conv.in_features();
        let out_feat = conv.out_features();
        let ckk = cin * kernel * kernel * kernel;
        let max_weight = conv_weight_max(&mut conv, in_feat, out_feat);
        for &batch in batches {
            let rows: Vec<Vec<f64>> = (0..batch)
                .map(|_| (0..in_feat).map(|_| rng.random::<f64>() - 0.5).collect())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            // Per-row f64 reference (the canonical per-loop path).
            let mut per_row = vec![0.0; batch * out_feat];
            for (t, row) in rows.iter().enumerate() {
                let input = Tensor::from_vec(vec![1, in_feat], row.to_vec());
                let out = conv.forward_with_precision(&input, RunPrecision::F64);
                per_row[t * out_feat..(t + 1) * out_feat].copy_from_slice(out.as_slice());
            }
            // f64 tier: bitwise.
            let mut batched = vec![0.0; batch * out_feat];
            conv.forward_batch(&refs, &mut batched);
            f64_ulp = f64_ulp.max(max_ulp(&per_row, &batched));
            f64_abs = f64_abs.max(max_abs_diff(&per_row, &batched));
            f64_cases += 1;

            // Uniform analytic magnitudes: every im2col entry is an input
            // entry (or zero padding), so max|col| ≤ max|row|.
            let max_in = rows
                .iter()
                .flatten()
                .fold(0.0f64, |acc, &x| acc.max(x.abs()));
            // f32 tier: |Δ| vs. f64 reference bounded by the single-
            // precision FMA envelope over the reduction depth, plus the
            // f32 rounding of inputs/weights themselves.
            let mut batched32 = vec![0.0; batch * out_feat];
            conv.forward_batch_with_precision(&refs, RunPrecision::F32, &mut batched32);
            let eps32 = f32::EPSILON as f64;
            let mag = ckk as f64 * max_weight * max_in;
            let tol32 = (2.0 * (ckk as f64 + 4.0) * eps32) * mag + 1e-30;
            f32_ulp = f32_ulp.max(max_ulp(&per_row, &batched32));
            f32_ratio = f32_ratio.max(max_abs_diff(&per_row, &batched32) / tol32);
            f32_cases += 1;

            // int8 tier: symmetric max-abs/127 grids on weights and the
            // stacked column panel; integer accumulation is exact, so the
            // whole error is input quantization.
            let mut batched8 = vec![0.0; batch * out_feat];
            conv.forward_batch_with_precision(&refs, RunPrecision::Int8, &mut batched8);
            let s_w = max_weight / 127.0;
            let s_c = max_in / 127.0;
            let tol8 =
                ckk as f64 * (max_weight * s_c / 2.0 + (max_in + s_c / 2.0) * s_w / 2.0) + 1e-12;
            i8_ulp = i8_ulp.max(max_ulp(&per_row, &batched8));
            i8_ratio = i8_ratio.max(max_abs_diff(&per_row, &batched8) / tol8);
            i8_cases += 1;
        }
    }
    pairs.push(Pair::check(
        "conv3d_forward_batch_f64_vs_per_row",
        f64_cases,
        f64_ulp,
        f64_abs,
        0.0,
    ));
    pairs.push(Pair::check(
        "conv3d_forward_batch_f32_error_ratio",
        f32_cases,
        f32_ulp,
        f32_ratio,
        1.0,
    ));
    pairs.push(Pair::check(
        "conv3d_forward_batch_int8_error_ratio",
        i8_cases,
        i8_ulp,
        i8_ratio,
        1.0,
    ));
}

/// Max |weight| of a conv layer, probed through delta inputs (the weights
/// themselves are private). One delta voxel per input feature lights up
/// exactly the kernel taps that touch it, so the max response over all
/// deltas bounds max|W| from below *and* above once the bias is removed.
fn conv_weight_max(conv: &mut Conv3d, in_feat: usize, out_feat: usize) -> f64 {
    // Bias-only baseline.
    let zero = Tensor::zeros(vec![1, in_feat]);
    let base = conv.forward_with_precision(&zero, RunPrecision::F64);
    let mut max_w = 0.0f64;
    for i in 0..in_feat {
        let mut x = vec![0.0; in_feat];
        x[i] = 1.0;
        let out =
            conv.forward_with_precision(&Tensor::from_vec(vec![1, in_feat], x), RunPrecision::F64);
        for j in 0..out_feat {
            max_w = max_w.max((out.as_slice()[j] - base.as_slice()[j]).abs());
        }
    }
    max_w
}

fn raycast_pair(smoke: bool, pairs: &mut Vec<Pair>) {
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2, 3] };
    let config = if smoke {
        LidarConfig {
            beams: 16,
            azimuth_steps: 128,
            ..LidarConfig::default()
        }
    } else {
        LidarConfig::default()
    };
    let lidar = Lidar::new(config);
    let (mut ulp, mut abs, mut cases) = (0u64, 0.0f64, 0usize);
    let mut identical = true;
    for &seed in seeds {
        let scene = SceneGenerator::new(seed).generate();
        let reference = lidar.scan_reference(&scene);
        for cloud in [lidar.scan_serial(&scene), lidar.scan(&scene)] {
            identical &= cloud == reference;
            if cloud.len() == reference.len() {
                for (p, q) in reference.points().iter().zip(cloud.points()) {
                    for (a, b) in [(p.x, q.x), (p.y, q.y), (p.z, q.z), (p.range, q.range)] {
                        ulp = ulp.max(ulp_diff(a, b));
                        abs = abs.max((a - b).abs());
                    }
                    identical &= (p.beam, p.azimuth) == (q.beam, q.azimuth);
                }
            } else {
                ulp = u64::MAX;
            }
            cases += 1;
        }
    }
    if !identical {
        ulp = ulp.max(1);
    }
    pairs.push(Pair::check(
        "raycast_bucketed_parallel_vs_naive",
        cases,
        ulp,
        abs,
        0.0,
    ));
}

fn quant_pair(smoke: bool, pairs: &mut Vec<Pair>) {
    let rounds = if smoke { 16 } else { 128 };
    let mut rng = StdRng::seed_from_u64(0xC0F0_0003);
    let mut violations = 0usize;
    let mut cases = 0usize;
    for round in 0..rounds {
        let len = rng.random_range(1..96usize);
        let mut buf: Vec<f64> = (0..len).map(|_| rng.random_range(-8.0..8.0)).collect();
        // Every third round, poison the buffer: quantization must saturate,
        // never emit NaN, and the strict API must reject it.
        let poisoned = round % 3 == 2;
        if poisoned {
            let i = rng.random_range(0..len);
            buf[i] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][(round / 3) % 3];
            let first = buf.iter().position(|v| !v.is_finite()).unwrap();
            let mut strict = buf.clone();
            if try_fake_quantize(&mut strict, Precision::Int8)
                != Err(QuantError::NonFinite { index: first })
            {
                violations += 1;
            }
        }
        for precision in [Precision::Int2, Precision::Int8, Precision::Int16] {
            let mut q = buf.clone();
            let report = fake_quantize(&mut q, precision);
            let finite = q.iter().all(|v| v.is_finite())
                && report.scale.is_finite()
                && report.mse.is_finite();
            let on_grid = report.scale == 0.0
                || q.iter().all(|v| {
                    let g = v / report.scale;
                    (g - g.round()).abs() < 1e-9
                });
            let half_step = poisoned
                || buf
                    .iter()
                    .zip(&q)
                    .all(|(o, v)| (o - v).abs() <= report.scale / 2.0 + 1e-12);
            let mut q2 = q.clone();
            let second = fake_quantize(&mut q2, precision);
            let idempotent = q2 == q && second.mse < 1e-20;
            if !(finite && on_grid && half_step && idempotent) {
                violations += 1;
            }
            cases += 1;
        }
    }
    let ulp = if violations == 0 { 0 } else { u64::MAX };
    pairs.push(Pair::check(
        "fake_quantize_grid_invariants",
        cases,
        ulp,
        violations as f64,
        0.0,
    ));
}

fn hostile_floats() -> Vec<f64> {
    vec![
        0.1 + 0.2,
        1.0 / 3.0,
        -0.0,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        f64::MAX,
        -1.7e308,
        std::f64::consts::PI,
        1e-17,
    ]
}

fn export_pair(pairs: &mut Vec<Pair>) {
    let (mut ulp, mut cases) = (0u64, 0usize);
    let floats = hostile_floats();
    for (i, &v) in floats.iter().enumerate() {
        let span = Span {
            tick: i as u64,
            stage: StageId::ALL[i % 5],
            start_s: v,
            end_s: v * 2.0,
            energy_j: v,
            latency_s: v.abs(),
            ok: i % 2 == 0,
        };
        match parse_span(&span_to_json(&span)) {
            Some(rt) => {
                for (a, b) in [
                    (span.start_s, rt.start_s),
                    (span.end_s, rt.end_s),
                    (span.energy_j, rt.energy_j),
                    (span.latency_s, rt.latency_s),
                ] {
                    ulp = ulp.max(ulp_diff(a, b));
                }
                if (rt.tick, rt.stage, rt.ok) != (span.tick, span.stage, span.ok) {
                    ulp = u64::MAX;
                }
            }
            None => ulp = u64::MAX,
        }

        let mut stages = StageBreakdown::new();
        for (si, stage) in StageId::ALL.into_iter().enumerate() {
            stages.add(stage, v * si as f64, v.abs() / (si + 1) as f64);
        }
        let rec = TickRecord {
            tick: i as u64,
            energy_j: v,
            latency_s: v.abs(),
            trust: match i % 3 {
                0 => Trust::Trusted,
                1 => Trust::Suspect(v.abs().min(1.0)),
                _ => Trust::Untrusted,
            },
            precision: RunPrecision::ALL[i % 3],
            stages,
        };
        match parse_tick(&tick_to_json(&rec)) {
            Some(rt) => {
                ulp = ulp.max(ulp_diff(rec.energy_j, rt.energy_j));
                ulp = ulp.max(ulp_diff(rec.latency_s, rt.latency_s));
                for stage in StageId::ALL {
                    let (a, b) = (rec.stages.get(stage), rt.stages.get(stage));
                    ulp = ulp.max(ulp_diff(a.energy_j, b.energy_j));
                    ulp = ulp.max(ulp_diff(a.latency_s, b.latency_s));
                }
                if rt.trust != rec.trust || rt.tick != rec.tick || rt.precision != rec.precision {
                    ulp = u64::MAX;
                }
            }
            None => ulp = u64::MAX,
        }
        cases += 2;
    }
    pairs.push(Pair::check("jsonl_export_round_trip", cases, ulp, 0.0, 0.0));
}

/// Build the canonical faulty loop of the replay conformance case. One
/// construction site so the recorded and replayed loops cannot drift apart.
#[allow(clippy::type_complexity)]
fn faulty_loop(
    seed: u64,
) -> FallibleLoop<
    FaultInjector<FnSensor<impl FnMut(&f64, &mut StageContext) -> f64>, f64>,
    Reliable<FnPerceptor<impl FnMut(&f64, &mut StageContext) -> f64>>,
    AlwaysTrust,
    WithFallback<FnController<impl FnMut(&f64, Trust, &mut StageContext) -> f64>, f64>,
    sensact_core::adapt::NoAdaptation,
    f64,
> {
    FallibleLoop::new(
        "conformance-replay",
        FaultInjector::new(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(2e-4, 1e-3);
                *e
            }),
            FaultProfile {
                dropout: 0.15,
                stuck: 0.05,
                latency_spike: 0.05,
                spike_latency_s: 0.05,
                nan: 0.05,
            },
            seed,
        ),
        Reliable(FnPerceptor::new(|r: &f64, _: &mut StageContext| *r)),
        AlwaysTrust,
        WithFallback::new(
            FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.4 * f),
            0.0,
        ),
    )
    .with_recovery(RecoveryPolicy {
        max_retries: 1,
        retry_energy_j: 5e-5,
        max_hold_ticks: 2,
        staleness_decay: 0.3,
        latency_budget_s: Some(0.01),
    })
}

fn replay_pair(smoke: bool, pairs: &mut Vec<Pair>) {
    let ticks = if smoke { 200 } else { 1000 };
    let seed = 77;
    let mut recorded = faulty_loop(seed);
    let mut env = 3.0f64;
    recorded.run(&mut env, ticks, |e, a| *e += a + 0.01);
    let recording = Recording::capture("conformance-replay", seed, recorded.telemetry());

    // Through the wire: serialize, parse, replay a fresh loop against it.
    let parsed = Recording::from_jsonl(&recording.to_jsonl());
    let mut ulp = if parsed == recording { 0 } else { u64::MAX };
    let mut env = 3.0f64;
    match faulty_loop(parsed.meta.seed).replay(&mut env, &parsed, |e, a| *e += a + 0.01) {
        Ok(verified) if verified == ticks as u64 => {}
        Ok(_) => ulp = u64::MAX,
        Err(d) => {
            eprintln!("replay diverged: {d}");
            ulp = u64::MAX;
        }
    }
    pairs.push(Pair::check(
        "record_replay_round_trip",
        ticks,
        ulp,
        0.0,
        0.0,
    ));
}

/// Record → serialize → replay a loop whose precision governor actually
/// switches modes under budget pressure. The replay must reproduce the
/// recorded precision schedule tick-for-tick (the diff includes the
/// per-tick precision field), and the run must visit all three modes —
/// otherwise the tier proves nothing.
fn mixed_precision_replay_pair(smoke: bool, pairs: &mut Vec<Pair>) {
    let ticks = if smoke { 200 } else { 1000 };
    let seed = 99;
    // Capacity sized so pressure sweeps 0 → ~0.8 over the run, crossing
    // both policy thresholds regardless of the tick count.
    let capacity_j = ticks as f64 * 2e-4 * 1.2;
    let build = |seed: u64| {
        faulty_loop(seed)
            .with_budget(EnergyBudget::new(capacity_j))
            .with_precision(PrecisionPolicy::adaptive(0.25, 0.6))
    };
    let mut recorded = build(seed);
    let mut env = 3.0f64;
    recorded.run(&mut env, ticks, |e, a| *e += a + 0.01);
    let modes_seen = RunPrecision::ALL
        .iter()
        .filter(|&&p| recorded.telemetry().precision_ticks(p) > 0)
        .count();
    let recording = Recording::capture("conformance-mixed-precision", seed, recorded.telemetry());

    let parsed = Recording::from_jsonl(&recording.to_jsonl());
    let mut ulp = if parsed == recording && modes_seen == 3 {
        0
    } else {
        u64::MAX
    };
    let mut env = 3.0f64;
    match build(parsed.meta.seed).replay(&mut env, &parsed, |e, a| *e += a + 0.01) {
        Ok(verified) if verified == ticks as u64 => {}
        Ok(_) => ulp = u64::MAX,
        Err(d) => {
            eprintln!("mixed-precision replay diverged: {d}");
            ulp = u64::MAX;
        }
    }
    pairs.push(Pair::check(
        "mixed_precision_record_replay",
        ticks,
        ulp,
        0.0,
        0.0,
    ));
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    println!("== conformance matrix ({mode}) ==");

    let isa = sensact_math::simd::isa_name();
    println!("host isa: {isa}");

    let mut pairs = Vec::new();
    gemm_pairs(smoke, &mut pairs);
    precision_pairs(smoke, &mut pairs);
    conv_pairs(smoke, &mut pairs);
    batched_gemm_pairs(smoke, &mut pairs);
    batched_conv_pairs(smoke, &mut pairs);
    raycast_pair(smoke, &mut pairs);
    quant_pair(smoke, &mut pairs);
    export_pair(&mut pairs);
    replay_pair(smoke, &mut pairs);
    mixed_precision_replay_pair(smoke, &mut pairs);

    let mut json = format!("{{\n  \"mode\": \"{mode}\",\n  \"isa\": \"{isa}\",\n  \"pairs\": {{\n");
    for (i, p) in pairs.iter().enumerate() {
        let verdict = if p.pass { "pass" } else { "FAIL" };
        let requirement = if p.tolerance == 0.0 {
            "bitwise".to_string()
        } else {
            format!("|d| <= {:e}", p.tolerance)
        };
        println!(
            "{verdict}  {:<42} cases {:>4}  max_ulp {:>6}  max_abs {:9.3e}  ({requirement})",
            p.name,
            p.cases,
            if p.max_ulp == u64::MAX {
                "inf".to_string()
            } else {
                p.max_ulp.to_string()
            },
            p.max_abs,
        );
        let sep = if i + 1 == pairs.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"cases\": {}, \"max_ulp\": {}, \"max_abs_diff\": {:e}, \"tolerance\": {:e}, \"pass\": {}}}{sep}\n",
            p.name,
            p.cases,
            if p.max_ulp == u64::MAX { u64::MAX } else { p.max_ulp },
            p.max_abs,
            p.tolerance,
            p.pass,
        ));
    }
    let all_pass = pairs.iter().all(|p| p.pass);
    json.push_str(&format!("  }},\n  \"pass\": {all_pass}\n}}\n"));

    let path = "BENCH_conformance.json";
    let mut f = std::fs::File::create(path).expect("create BENCH_conformance.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_conformance.json");
    println!("[json] {path}");

    if !all_pass {
        eprintln!("conformance: divergent kernel pairs detected");
        std::process::exit(1);
    }
    println!("conformance: all {} pairs conform", pairs.len());
}
