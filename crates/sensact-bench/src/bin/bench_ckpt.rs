//! Checkpoint/restore bench: how expensive is kill-and-resume?
//!
//! Two sections:
//!
//! 1. **Loop checkpoint** — a faulty mixed-precision [`FallibleLoop`]
//!    (active fault injector, retry/hold recovery, 256-record telemetry
//!    ring) is warmed up and then repeatedly snapshotted, serialized to the
//!    JSONL wire form, parsed back, and restored onto a freshly built twin.
//!    Reported: snapshot / serialize / parse+restore latency and wire bytes
//!    per loop. A resumed twin is also ticked forward and compared
//!    bit-exactly against the original as a correctness guard.
//! 2. **Fleet migration** — a deterministic fleet of checkpointable
//!    members; each member is snapshotted over the wire and adopted by a
//!    fresh twin ([`FleetScheduler::snapshot_member`] /
//!    [`FleetScheduler::adopt_member`]). Reported: mean per-member
//!    migration latency and wire bytes.
//!
//! Writes `BENCH_ckpt.json` at the repo root (full mode only, so CI smoke
//! runs don't clobber recorded numbers). Run with `--smoke` (or
//! `SENSACT_QUICK=1`) for reduced sizes.

use sensact_bench::{compare, header};
use sensact_core::checkpoint::Checkpoint;
use sensact_core::fault::FnTryPerceptor;
use sensact_core::stage::{AlwaysTrust, FnController, FnPerceptor, FnSensor, StageContext};
use sensact_core::trace::SimClock;
use sensact_core::{
    EnergyBudget, FaultInjector, FaultProfile, LoopBuilder, PrecisionPolicy, RecoveryPolicy,
    WithFallback,
};
use sensact_core::{FallibleLoop, Trust};
use sensact_sched::{FleetConfig, FleetScheduler, LoopHandle, LoopSpec};
use std::hint::black_box;
use std::time::Instant;

fn smoke() -> bool {
    sensact_bench::quick() || std::env::args().any(|a| a == "--smoke")
}

fn mean_us(total_s: f64, iters: usize) -> f64 {
    total_s * 1e6 / iters as f64
}

fn main() {
    let smoke = smoke();
    let warm_ticks = if smoke { 256 } else { 2048 };
    let iters = if smoke { 64 } else { 2000 };
    let members = if smoke { 8 } else { 64 };

    // The representative loop: faulty sensor, retries and holds, a budget
    // whose pressure mixes the precision schedule, a wrapping telemetry
    // ring — every state class the checkpoint layer serializes.
    let build = || {
        let sensor = FaultInjector::new(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(2e-4 * (1.0 + 0.1 * e.abs()), 1e-4);
                *e
            }),
            FaultProfile {
                dropout: 0.12,
                stuck: 0.05,
                latency_spike: 0.04,
                spike_latency_s: 5e-4,
                nan: 0.03,
            },
            0xBE5C,
        );
        FallibleLoop::new(
            "ckpt-bench",
            sensor,
            FnTryPerceptor::new(|r: &f64, _: &mut StageContext| Ok(*r)),
            AlwaysTrust,
            WithFallback::new(
                FnController::new(|f: &f64, _t, _: &mut StageContext| -0.4 * f + 0.03),
                0.0,
            ),
        )
        .with_budget(EnergyBudget::new(1.0))
        .with_recovery(RecoveryPolicy {
            max_retries: 1,
            retry_energy_j: 1e-5,
            max_hold_ticks: 2,
            staleness_decay: 0.35,
            latency_budget_s: None,
        })
        .with_precision(
            PrecisionPolicy::adaptive(0.12, 0.9)
                .with_hold_ticks(4)
                .with_drift_threshold(0.3),
        )
        .with_telemetry_capacity(256)
    };

    let mut warmed = build();
    let mut env = 8.0f64;
    for _ in 0..warm_ticks {
        let out = warmed.tick(&env);
        env += out.action;
    }

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(warmed.snapshot());
    }
    let snapshot_us = mean_us(t0.elapsed().as_secs_f64(), iters);

    let ckpt = warmed.snapshot();
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(ckpt.to_jsonl());
    }
    let to_jsonl_us = mean_us(t0.elapsed().as_secs_f64(), iters);
    let wire = ckpt.to_jsonl();
    let wire_bytes = wire.len();

    let t0 = Instant::now();
    for _ in 0..iters {
        let parsed = Checkpoint::from_jsonl(&wire).expect("wire parses");
        let mut twin = build();
        twin.restore(&parsed).expect("restore succeeds");
        black_box(&twin);
    }
    let restore_us = mean_us(t0.elapsed().as_secs_f64(), iters);

    // Correctness guard: the resumed twin's continuation is bit-identical.
    let parsed = Checkpoint::from_jsonl(&wire).expect("wire parses");
    let mut twin = build();
    twin.restore(&parsed).expect("restore succeeds");
    let mut twin_env = env;
    for _ in 0..64 {
        let a = warmed.tick(&env);
        env += a.action;
        let b = twin.tick(&twin_env);
        twin_env += b.action;
        assert_eq!(
            a.energy_j.to_bits(),
            b.energy_j.to_bits(),
            "resumed twin diverged from the original"
        );
    }
    assert_eq!(env.to_bits(), twin_env.to_bits());

    header("loop checkpoint — faulty mixed-precision FallibleLoop, 256-record ring");
    compare(
        &format!("snapshot ({warm_ticks}-tick warm loop)"),
        "sub-ms",
        &format!("{snapshot_us:.1} us"),
    );
    compare(
        "serialize (JSONL wire)",
        "sub-ms",
        &format!("{to_jsonl_us:.1} us"),
    );
    compare(
        "parse + restore onto twin",
        "sub-ms",
        &format!("{restore_us:.1} us"),
    );
    compare("wire size", "-", &format!("{wire_bytes} bytes/loop"));

    // Fleet migration: every member snapshotted over the wire and adopted
    // by a fresh twin between deterministic runs.
    let member = |i: usize| {
        let looop = LoopBuilder::new(format!("m{i}")).build(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-6, 1e-4 * (1.0 + e.abs()));
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.3 * f + 0.02),
        );
        LoopHandle::closed_checkpointable(looop, 4.0f64, |e, a| *e += a)
    };
    let mut fleet = FleetScheduler::new(FleetConfig {
        workers: 4,
        watts_cap: None,
        seed: 7,
    });
    let ids: Vec<_> = (0..members)
        .map(|i| fleet.register(member(i), LoopSpec::periodic(1e-2)))
        .collect();
    let _ = fleet.run_deterministic(0.2, &mut SimClock::new());
    let mut migrate_total_s = 0.0;
    let mut migrate_bytes = 0usize;
    for (i, id) in ids.iter().enumerate() {
        let t0 = Instant::now();
        let wire = fleet
            .snapshot_member(*id)
            .expect("checkpointable")
            .to_jsonl();
        let parsed = Checkpoint::from_jsonl(&wire).expect("wire parses");
        fleet.adopt_member(*id, member(i), &parsed).expect("adopt");
        migrate_total_s += t0.elapsed().as_secs_f64();
        migrate_bytes += wire.len();
    }
    let report = fleet.run_deterministic(0.2, &mut SimClock::new());
    assert_eq!(report.ticks, members as u64 * 20, "resumed fleet must run");
    let migrate_us = mean_us(migrate_total_s, members);
    let member_bytes = migrate_bytes / members;

    header("fleet migration — snapshot_member → wire → adopt_member");
    compare(
        &format!("migrate ({members} members, mean)"),
        "sub-ms",
        &format!("{migrate_us:.1} us/member"),
    );
    compare("wire size", "-", &format!("{member_bytes} bytes/member"));

    sensact_bench::write_csv(
        "bench_ckpt",
        "snapshot_us,to_jsonl_us,restore_us,wire_bytes,migrate_us,member_bytes",
        &[format!(
            "{snapshot_us:.2},{to_jsonl_us:.2},{restore_us:.2},{wire_bytes},{migrate_us:.2},{member_bytes}"
        )],
    );

    if !smoke {
        let json = format!(
            "{{\n  \"loop\": {{\n    \"warm_ticks\": {warm_ticks},\n    \"snapshot_us\": {snapshot_us:.2},\n    \"to_jsonl_us\": {to_jsonl_us:.2},\n    \"restore_us\": {restore_us:.2},\n    \"wire_bytes\": {wire_bytes}\n  }},\n  \"fleet\": {{\n    \"members\": {members},\n    \"migrate_us_mean\": {migrate_us:.2},\n    \"wire_bytes_mean\": {member_bytes}\n  }}\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ckpt.json");
        std::fs::write(path, json).expect("write BENCH_ckpt.json");
        println!("wrote BENCH_ckpt.json");
    }
}
