//! Fig. 7 — Object-detection accuracy under snow, with and without STARNet.
//!
//! Paper: STARNet's trust-gated filtering restores ~15 % detection accuracy
//! under heavy snow, approaching clean-data performance.

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_starnet::fuse::evaluate_detection_under_snow;
use sensact_starnet::monitor::{train_on_clouds, StarnetConfig};

fn main() {
    header("Fig. 7: detection accuracy vs snow severity");
    let lidar = Lidar::new(LidarConfig::default());
    let train_clouds: Vec<_> = SceneGenerator::new(3)
        .generate_many(scaled(32, 8))
        .iter()
        .map(|s| lidar.scan(s))
        .collect();
    let eval_scenes = SceneGenerator::new(77).generate_many(scaled(10, 3));
    let mut monitor = train_on_clouds(&train_clouds, StarnetConfig::default(), 0);

    let mut csv = Vec::new();
    let mut clean_mean = 0.0;
    let mut snowy5 = 0.0;
    let mut recovered5 = 0.0;
    println!(
        "{:<9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "severity", "car", "ped", "cyc", "car+STAR", "ped+STAR", "cyc+STAR"
    );
    for severity in 0..=5u8 {
        let raw = evaluate_detection_under_snow(&eval_scenes, severity, None, 1);
        let guarded = evaluate_detection_under_snow(&eval_scenes, severity, Some(&mut monitor), 1);
        println!(
            "{severity:<9} {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} {:>9.3}",
            raw.car_ap,
            raw.pedestrian_ap,
            raw.cyclist_ap,
            guarded.car_ap,
            guarded.pedestrian_ap,
            guarded.cyclist_ap
        );
        csv.push(format!(
            "{severity},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            raw.car_ap,
            raw.pedestrian_ap,
            raw.cyclist_ap,
            guarded.car_ap,
            guarded.pedestrian_ap,
            guarded.cyclist_ap
        ));
        if severity == 0 {
            clean_mean = raw.mean();
        }
        if severity == 5 {
            snowy5 = raw.mean();
            recovered5 = guarded.mean();
        }
    }

    header("shape check vs paper");
    let lost = clean_mean - snowy5;
    let recovered = recovered5 - snowy5;
    compare(
        "snow@5 accuracy loss (raw)",
        "severe",
        &format!("{:.1} pts", lost * 100.0),
    );
    compare(
        "STARNet recovery at snow@5",
        "~15 pts (restores toward clean)",
        &format!("{:+.1} pts", recovered * 100.0),
    );
    compare(
        "recovered fraction of the loss",
        ">= half",
        &format!(
            "{:.0}%",
            if lost > 0.0 {
                recovered / lost * 100.0
            } else {
                0.0
            }
        ),
    );
    write_csv(
        "fig7",
        "severity,car_raw,ped_raw,cyc_raw,car_starnet,ped_starnet,cyc_starnet",
        &csv,
    );
}
