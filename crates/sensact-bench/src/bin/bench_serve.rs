//! Serving front-end throughput: sustained ticks/s and p99 tick latency
//! for mixed lidar + cartpole traffic over the deterministic loopback
//! transport, batched vs. per-loop dispatch, at fleet sizes 1 / 8 / 64 /
//! 512.
//!
//! Every observation travels the full protocol path (client wire encode →
//! sniff → decode → admission/shed → tick → action encode → client
//! decode), so the numbers are the serving stack's cost, not the kernels'
//! alone. The cross-loop batching win shows up at fleet ≥ 64, where half
//! the leases share the LidarConv perceptor and their forwards collapse
//! into one stacked GEMM per drain.
//!
//! Writes `BENCH_serve.json` (full mode), whose `gate` headlines
//! (`bench_gate` re-measures them) pin batched-vs-unbatched serving cost at
//! fleet 64: the p99 ratio (tail) and the median cost ratio (tight).
//! `--smoke` runs the reduced CI matrix and skips the JSON.

use sensact_bench::servebench::{serve_gate_headline, serve_pair, ServePair};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let isa = sensact_math::simd::isa_name();
    println!("== bench_serve ({mode}) — loopback serving throughput ==");
    println!("host isa: {isa}\n");

    let fleets: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 64, 512] };
    let rounds = |fleet: usize| -> usize {
        // Keep total observations roughly constant so each cell runs a
        // comparable amount of work (and the p99 has rounds to rank).
        let target = if smoke { 4_000 } else { 200_000 };
        (target / fleet).clamp(if smoke { 20 } else { 100 }, 4_000)
    };

    println!(
        "{:>6}  {:>10}  {:>14}  {:>12}  {:>8}  {:>8}",
        "fleet", "mode", "ticks/s", "p99 tick", "served", "shed"
    );
    let mut cells: Vec<ServePair> = Vec::new();
    for &fleet in fleets {
        let r = rounds(fleet);
        let pair = serve_pair(fleet, r);
        for m in [&pair.unbatched, &pair.batched] {
            println!(
                "{:>6}  {:>10}  {:>12.0}/s  {:>9.2} us  {:>8}  {:>8}",
                m.fleet,
                if m.batched { "batched" } else { "per-loop" },
                m.ticks_per_s,
                m.p99_tick_us,
                m.served,
                m.shed
            );
        }
        println!(
            "{:>6}  {:>10}  batched/unbatched  p99 = {:.1} %   median cost = {:.1} %",
            "",
            "",
            100.0 * pair.batched.p99_tick_us / pair.unbatched.p99_tick_us,
            pair.median_cost_ratio_pct
        );
        cells.push(pair);
    }

    let csv_rows: Vec<String> = cells
        .iter()
        .flat_map(|p| [&p.unbatched, &p.batched])
        .map(|m| {
            format!(
                "{},{},{:.0},{:.3},{},{}",
                m.fleet, m.batched, m.ticks_per_s, m.p99_tick_us, m.served, m.shed
            )
        })
        .collect();
    sensact_bench::write_csv(
        "bench_serve",
        "fleet,batched,ticks_per_s,p99_tick_us,served,shed",
        &csv_rows,
    );

    if !smoke {
        let fleet_json: Vec<String> = cells
            .iter()
            .map(|p| {
                let (u, b) = (&p.unbatched, &p.batched);
                format!(
                    "    {{ \"fleet\": {}, \"unbatched\": {{ \"ticks_per_s\": {:.0}, \"p99_tick_us\": {:.3}, \"served\": {}, \"shed\": {} }}, \"batched\": {{ \"ticks_per_s\": {:.0}, \"p99_tick_us\": {:.3}, \"served\": {}, \"shed\": {} }}, \"batched_speedup\": {:.3}, \"median_cost_ratio_pct\": {:.2} }}",
                    u.fleet,
                    u.ticks_per_s,
                    u.p99_tick_us,
                    u.served,
                    u.shed,
                    b.ticks_per_s,
                    b.p99_tick_us,
                    b.served,
                    b.shed,
                    b.ticks_per_s / u.ticks_per_s,
                    p.median_cost_ratio_pct,
                )
            })
            .collect();
        // Gate headlines: paired batched/unbatched ratios at fleet 64 —
        // the regime where the whole fleet's working set is still
        // cache-resident, so the stacked-GEMM win is cleanest. The
        // committed baselines are medians over five 400-round passes (the
        // center of the statistic); `bench_gate` re-measures single passes
        // with the exact same routine and compares its best-of-three floor
        // against these numbers.
        let gate_fleet = 64;
        let (p99_ratio_pct, median_ratio_pct) = serve_gate_headline(gate_fleet, 400, 5);
        let sustained = cells
            .iter()
            .map(|p| p.batched.ticks_per_s)
            .fold(0.0f64, f64::max);
        let json = format!(
            "{{\n  \"isa\": \"{isa}\",\n  \"fleets\": [\n{}\n  ],\n  \"sustained_ticks_per_s\": {:.0},\n  \"gate\": {{\n    \"fleet\": {},\n    \"p99_ratio_pct\": {:.2},\n    \"median_cost_ratio_pct\": {:.2}\n  }}\n}}\n",
            fleet_json.join(",\n"),
            sustained,
            gate_fleet,
            p99_ratio_pct,
            median_ratio_pct,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(path, json).expect("write BENCH_serve.json");
        println!(
            "\nwrote BENCH_serve.json (gate at fleet {gate_fleet}: p99 ratio {p99_ratio_pct:.1} %, median cost ratio {median_ratio_pct:.1} %)"
        );
    }
}
