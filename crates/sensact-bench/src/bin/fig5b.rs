//! Fig. 5b — Performance under external disturbances.
//!
//! Paper protocol: external force `F ~ Uniform(a_min, a_max)` applied to the
//! cart with probability `p` per step; the spectral Koopman model maintains
//! high performance even at `p = 0.25`. We train all five models on the same
//! interaction dataset and evaluate normalized episode reward across `p`.

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_koopman::baselines::{
    DenseKoopman, LatentModel, MlpDynamics, RecurrentDynamics, TransformerDynamics,
};
use sensact_koopman::control::{evaluate_robustness, ControllerKind};
use sensact_koopman::encoder::SpectralKoopman;
use sensact_koopman::train::collect_dataset;

fn run_model(
    name: &str,
    model: &mut dyn LatentModel,
    data: &sensact_koopman::train::Dataset,
    epochs: usize,
    probabilities: &[f64],
    episodes: usize,
) -> Vec<f64> {
    for e in 0..epochs {
        model.train_epoch(data, e as u64);
    }
    let mut controller = match ControllerKind::for_model(model, 0) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{name}: controller synthesis failed ({e}); skipping");
            return vec![0.0; probabilities.len()];
        }
    };
    let points = evaluate_robustness(model, &mut controller, probabilities, episodes, 200, 99);
    points.iter().map(|p| p.mean_reward).collect()
}

fn main() {
    header("Fig. 5b: normalized reward vs disturbance probability");
    let probabilities = [0.0, 0.05, 0.1, 0.25];
    let data = collect_dataset(scaled(3000, 800), 5);
    let epochs = scaled(25, 8);
    let episodes = scaled(10, 3);

    let mut spectral = SpectralKoopman::new(2);
    let mut dense = DenseKoopman::new(2);
    let mut mlp = MlpDynamics::new(2);
    let mut recurrent = RecurrentDynamics::new(2);
    let mut transformer = TransformerDynamics::new(2);
    let mut results: Vec<(&str, Vec<f64>)> = Vec::new();
    {
        let models: [(&str, &mut dyn LatentModel); 5] = [
            ("SpectralKoopman", &mut spectral),
            ("DenseKoopman", &mut dense),
            ("MLP", &mut mlp),
            ("Recurrent", &mut recurrent),
            ("Transformer", &mut transformer),
        ];
        for (name, m) in models {
            let rewards = run_model(name, m, &data, epochs, &probabilities, episodes);
            println!(
                "{name:<18} {}",
                rewards
                    .iter()
                    .map(|r| format!("p? {r:.2}"))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            results.push((name, rewards));
        }
    }

    println!(
        "\n{:<18} {:>7} {:>7} {:>7} {:>7}",
        "model", "p=0", "p=.05", "p=.1", "p=.25"
    );
    for (name, r) in &results {
        println!(
            "{name:<18} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            r[0], r[1], r[2], r[3]
        );
    }

    header("shape check vs paper");
    let ours_at_25 = results[0].1[3];
    let best_baseline_at_25 = results[1..]
        .iter()
        .map(|(_, r)| r[3])
        .fold(0.0f64, f64::max);
    compare(
        "spectral Koopman at p=0.25",
        "maintains high performance",
        &format!("{ours_at_25:.2} (best baseline {best_baseline_at_25:.2})"),
    );
    compare(
        "spectral Koopman at p=0",
        "balances the pole",
        &format!("{:.2}", results[0].1[0]),
    );

    write_csv(
        "fig5b",
        "model,p0,p005,p01,p025",
        &results
            .iter()
            .map(|(n, r)| format!("{n},{:.4},{:.4},{:.4},{:.4}", r[0], r[1], r[2], r[3]))
            .collect::<Vec<_>>(),
    );
}
