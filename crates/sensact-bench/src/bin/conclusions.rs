//! §VIII headline claims, checked end to end.
//!
//! 1. "only 8 % of the environment needs to be actively sensed" — masked
//!    firing ratio and reconstruction quality of the generative-sensing loop.
//! 2. "improving prediction accuracy by over 10 % on complex datasets" —
//!    STARNet's recovery under heavy corruption.
//! 3. "a threefold reduction in energy consumption" — coordinated multi-agent
//!    coverage vs. solo sensing.

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_core::multi::{AgentId, AgentProfile, CoverageCoordinator};
use sensact_lidar::mask::{RadialMask, RadialMaskConfig};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_lidar::voxel::VoxelGrid;
use sensact_rmae::model::{RmaeConfig, RmaeModel};
use sensact_rmae::pretrain::{radial_masked_cloud, Pretrainer, Strategy};

fn main() {
    header("Conclusion claim 1: ~8% active sensing suffices");
    let lidar = Lidar::new(LidarConfig::default());
    let mut generator = SceneGenerator::new(5);
    let train = generator.generate_many(scaled(16, 4));
    let mut trainer = Pretrainer::new(
        RmaeModel::new(RmaeConfig::full(), 1),
        Strategy::RadialMae,
        1,
    );
    trainer.train(&train, scaled(10, 3));
    let mut model = trainer.into_model();

    let eval_scene = generator.generate();
    let full = lidar.scan(&eval_scene);
    let mut mask = RadialMask::sample(RadialMaskConfig::default(), 512, 2);
    let expected = full.mean_range();
    let (_, fired) = lidar.scan_masked(&eval_scene, |_, az| mask.fire(az, expected));
    let coverage = fired as f64 / lidar.config().pulses_per_scan() as f64;
    let masked = radial_masked_cloud(&full, 3);
    let grid_cfg = model.config().grid;
    let masked_flat = VoxelGrid::from_cloud(grid_cfg, &masked).occupancy_flat();
    let full_flat = VoxelGrid::from_cloud(grid_cfg, &full).occupancy_flat();
    let iou = model.reconstruction_iou(&masked_flat, &full_flat, 0.5);
    let sparse_iou = {
        // Without reconstruction, the sparse view itself.
        let mut inter = 0usize;
        let mut union = 0usize;
        for (m, f) in masked_flat.iter().zip(&full_flat) {
            let mo = *m > 0.5;
            let fo = *f > 0.5;
            if mo && fo {
                inter += 1;
            }
            if mo || fo {
                union += 1;
            }
        }
        inter as f64 / union.max(1) as f64
    };
    compare(
        "active sensing fraction",
        "~8%",
        &format!("{:.1}%", coverage * 100.0),
    );
    compare(
        "scene occupancy recovered (IoU)",
        "task accuracy maintained",
        &format!("{iou:.2} (sparse view alone: {sparse_iou:.2})"),
    );
    assert!(coverage < 0.15, "coverage {coverage}");
    assert!(iou > sparse_iou, "reconstruction did not add coverage");

    header("Conclusion claim 2: monitor recovers >10% accuracy");
    println!("(full sweep in `fig7`; summary point at snow severity 5)");
    let eval_scenes = SceneGenerator::new(77).generate_many(scaled(8, 3));
    let clouds: Vec<_> = SceneGenerator::new(3)
        .generate_many(scaled(24, 8))
        .iter()
        .map(|s| lidar.scan(s))
        .collect();
    let mut monitor = sensact_starnet::monitor::train_on_clouds(
        &clouds,
        sensact_starnet::monitor::StarnetConfig::default(),
        0,
    );
    let raw = sensact_starnet::fuse::evaluate_detection_under_snow(&eval_scenes, 5, None, 1);
    let guarded = sensact_starnet::fuse::evaluate_detection_under_snow(
        &eval_scenes,
        5,
        Some(&mut monitor),
        1,
    );
    compare(
        "accuracy recovery at heavy snow",
        ">10 pts",
        &format!("{:+.1} pts", (guarded.mean() - raw.mean()) * 100.0),
    );

    header("Conclusion claim 3: threefold multi-agent energy reduction");
    let coordinator = CoverageCoordinator::new();
    let fleet: Vec<AgentProfile> = (0..3)
        .map(|i| AgentProfile::homogeneous(AgentId(i)))
        .collect();
    let factor = coordinator.fleet_reduction_factor(&fleet);
    compare(
        "3-agent coordinated sensing",
        "3x energy reduction",
        &format!("{factor:.2}x"),
    );
    assert!((2.5..3.5).contains(&factor), "factor {factor}");
    println!("shape checks passed");

    write_csv(
        "conclusions",
        "claim,paper,measured",
        &[
            format!("active_sensing_fraction,0.08,{coverage:.4}"),
            format!(
                "monitor_recovery_pts,10,{:.2}",
                (guarded.mean() - raw.mean()) * 100.0
            ),
            format!("multiagent_energy_factor,3.0,{factor:.3}"),
        ],
    );
}
