//! §V AUC table — STARNet anomaly detection across the corruption families.
//!
//! Paper (LiDAR-only): crosstalk AUC 0.9658, cross-sensor interference AUC
//! 0.9938, values above 0.90 across corruptions, without training on any
//! fault. We reproduce the protocol: the monitor trains only on clean scans
//! and scores clean vs. severity-5 corrupted streams.

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_lidar::corrupt::{Corruption, CorruptionKind};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_math::metrics::roc_auc;
use sensact_starnet::monitor::{train_on_clouds, StarnetConfig};

fn main() {
    header("STARNet anomaly-detection AUC by corruption");
    let lidar = Lidar::new(LidarConfig::default());
    let train_clouds: Vec<_> = SceneGenerator::new(1)
        .generate_many(scaled(48, 10))
        .iter()
        .map(|s| lidar.scan(s))
        .collect();
    let test_clouds: Vec<_> = SceneGenerator::new(500)
        .generate_many(scaled(12, 4))
        .iter()
        .map(|s| lidar.scan(s))
        .collect();
    let mut monitor = train_on_clouds(&train_clouds, StarnetConfig::default(), 0);

    let paper: &[(CorruptionKind, Option<f64>)] = &[
        (CorruptionKind::Snow, None),
        (CorruptionKind::Rain, None),
        (CorruptionKind::Fog, None),
        (CorruptionKind::BeamMissing, None),
        (CorruptionKind::MotionBlur, None),
        (CorruptionKind::Crosstalk, Some(0.9658)),
        (CorruptionKind::CrossSensorInterference, Some(0.9938)),
    ];

    let mut csv = Vec::new();
    let mut aucs = Vec::new();
    for &(kind, paper_auc) in paper {
        let mut labels = Vec::new();
        let mut scores = Vec::new();
        for (i, cloud) in test_clouds.iter().enumerate() {
            scores.push(monitor.score_cloud(cloud));
            labels.push(false);
            let corrupted = Corruption::new(kind, 5).apply(cloud, i as u64 * 31);
            scores.push(monitor.score_cloud(&corrupted));
            labels.push(true);
        }
        let auc = roc_auc(&labels, &scores);
        aucs.push(auc);
        let paper_str = paper_auc
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| ">0.90 (typ.)".to_string());
        compare(&format!("{kind}"), &paper_str, &format!("{auc:.4}"));
        csv.push(format!("{kind},{auc:.4}"));
    }

    header("shape check vs paper");
    let min_auc = aucs.iter().copied().fold(1.0f64, f64::min);
    let crosstalk_auc = aucs[5];
    let cross_sensor_auc = aucs[6];
    compare(
        "minimum AUC across corruptions",
        ">0.90 typical",
        &format!("{min_auc:.3}"),
    );
    compare("crosstalk", "0.9658", &format!("{crosstalk_auc:.4}"));
    compare(
        "cross-sensor interference",
        "0.9938",
        &format!("{cross_sensor_auc:.4}"),
    );
    assert!(crosstalk_auc > 0.9, "crosstalk AUC {crosstalk_auc}");
    assert!(
        cross_sensor_auc > 0.85,
        "cross-sensor AUC {cross_sensor_auc}"
    );
    println!("shape check passed");
    write_csv("starnet_auc", "corruption,auc", &csv);
}
