//! Table II — Conventional LiDAR vs. the R-MAE framework.
//!
//! Paper values: coverage 100 % → <10 %, pulse energy 50 µJ → 5.5 µJ,
//! 830 K params, 335 M FLOPs/scan, scan energy 72 mJ → 792 µJ, reconstruction
//! overhead 7.1 mJ, combined advantage 9.11×.

use sensact_bench::{compare, header, write_csv};
use sensact_lidar::energy::EnergyModel;
use sensact_lidar::mask::{RadialMask, RadialMaskConfig};
use sensact_lidar::raycast::{Lidar, LidarConfig};
use sensact_lidar::scene::SceneGenerator;
use sensact_nn::count::MacEnergyModel;
use sensact_rmae::model::{RmaeConfig, RmaeModel};

fn main() {
    header("Table II: conventional vs R-MAE sensing economics");
    let scene = SceneGenerator::new(11).generate();
    let lidar = Lidar::new(LidarConfig::default());
    let energy = EnergyModel::default();

    // Conventional: every pulse at full power.
    let full = lidar.scan(&scene);
    let pulses = lidar.config().pulses_per_scan();
    let conventional_j = energy.conventional_scan_energy(pulses);

    // R-MAE: masked firing with range-budgeted pulses. The per-pulse
    // expected range comes from the previous revolution (temporal
    // coherence) — this is what lets stage 2 bias firing away from the
    // R⁴-expensive far pulses.
    let mut prior: std::collections::HashMap<(u16, u16), f64> = std::collections::HashMap::new();
    for p in &full {
        prior.insert((p.beam, p.azimuth), p.range);
    }
    let mean_range = full.mean_range();
    let mut mask = RadialMask::sample(RadialMaskConfig::default(), 512, 3);
    let (masked, fired) = lidar.scan_masked(&scene, |beam, az| {
        let expected = prior.get(&(beam, az)).copied().unwrap_or(mean_range);
        mask.fire(az, expected)
    });
    let adaptive = energy.adaptive_scan_energy(&masked, fired, energy.min_pulse_energy);
    let coverage = fired as f64 / pulses as f64;

    // Reconstruction overhead: the autoencoder's compute at INT8.
    let model = RmaeModel::new(RmaeConfig::full(), 0);
    let stats = model.stats();
    let mac_energy = MacEnergyModel::default();
    let recon_mj = mac_energy.energy_mj(stats.macs, 8);

    let combined_adaptive = adaptive.total_energy_j + recon_mj * 1e-3;
    let advantage = conventional_j / combined_adaptive;

    compare(
        "Scene coverage",
        "100% -> <10%",
        &format!("100% -> {:.1}%", coverage * 100.0),
    );
    compare(
        "Energy per laser pulse",
        "50 uJ -> 5.5 uJ",
        &format!("50.0 uJ -> {:.1} uJ", adaptive.mean_pulse_uj()),
    );
    compare(
        "Model parameters",
        "830 K",
        &format!("{} (coarser grid)", stats.params),
    );
    compare(
        "FLOPs per 360 scan",
        "335 M",
        &format!("{:.1} M", stats.flops() as f64 / 1e6),
    );
    compare(
        "Sensing energy per scan",
        "72 mJ -> 792 uJ",
        &format!(
            "{:.1} mJ -> {:.0} uJ",
            conventional_j * 1e3,
            adaptive.total_energy_j * 1e6
        ),
    );
    compare(
        "Reconstruction overhead",
        "7.1 mJ",
        &format!("{recon_mj:.3} mJ"),
    );
    compare(
        "Combined sensing+compute advantage",
        "9.11x",
        &format!("{advantage:.2}x"),
    );

    write_csv(
        "table2",
        "metric,conventional,rmae",
        &[
            format!("coverage,1.0,{coverage:.4}"),
            format!("pulse_energy_uj,50.0,{:.3}", adaptive.mean_pulse_uj()),
            format!("params,0,{}", stats.params),
            format!("flops,0,{}", stats.flops()),
            format!(
                "scan_energy_j,{conventional_j:.6},{:.9}",
                adaptive.total_energy_j
            ),
            format!("reconstruction_mj,0,{recon_mj:.6}"),
            format!("advantage,1.0,{advantage:.3}"),
        ],
    );

    assert!(
        coverage < 0.15,
        "coverage {coverage} exceeds the paper band"
    );
    assert!(advantage > 3.0, "combined advantage only {advantage:.2}x");
    println!("\nshape check passed: <15% coverage, >3x combined advantage");

    // DESIGN.md §5 ablation: the two-stage radial mask vs a uniform random
    // mask at the *same* keep ratio. Stage 2 biases firing away from the
    // far (R⁴-expensive) pulses, so radial masking is cheaper per kept pulse.
    header("ablation: radial vs uniform masking at matched coverage");
    let mut uniform = sensact_lidar::mask::UniformMask::new(coverage, 5);
    let (uniform_cloud, uniform_fired) = lidar.scan_masked(&scene, |_, _| uniform.fire());
    let uniform_energy =
        energy.adaptive_scan_energy(&uniform_cloud, uniform_fired, energy.min_pulse_energy);
    compare(
        "mean pulse energy (radial vs uniform)",
        "radial biases away from far pulses",
        &format!(
            "{:.2} uJ vs {:.2} uJ",
            adaptive.mean_pulse_uj(),
            uniform_energy.mean_pulse_uj()
        ),
    );
    compare(
        "scan energy at equal coverage",
        "radial cheaper",
        &format!(
            "{:.0} uJ vs {:.0} uJ ({:.2}x)",
            adaptive.total_energy_j * 1e6,
            uniform_energy.total_energy_j * 1e6,
            uniform_energy.total_energy_j / adaptive.total_energy_j.max(1e-12)
        ),
    );
    assert!(
        adaptive.mean_pulse_uj() < uniform_energy.mean_pulse_uj(),
        "radial masking lost its range-aware energy advantage"
    );
    println!("ablation shape check passed");
}
