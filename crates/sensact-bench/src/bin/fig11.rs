//! Fig. 11 — Relative energy/latency/area reductions of DC-NAS and HaLo-FL
//! vs. static federated learning on the CIFAR-10-like workload.
//!
//! Paper: both adaptive frameworks significantly reduce energy, latency and
//! area utilization while maintaining accuracy. Use
//! `--uniform-precision` to print the HaLo ablation (uniform INT8 fleet).

use sensact_bench::{compare, header, scaled, write_csv};
use sensact_fed::client::{Client, HardwareTier};
use sensact_fed::data::Dataset;
use sensact_fed::server::{run_federated, FedConfig, FedReport, Strategy};

fn fleet(n: usize, seed: u64) -> (Vec<Client>, Dataset) {
    let all = Dataset::generate(scaled(2400, 600), seed);
    let parts = all.split_noniid(n, seed);
    let tiers = [
        HardwareTier::EdgeGpu,
        HardwareTier::Mobile,
        HardwareTier::Mcu,
    ];
    let clients = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| Client::new(i, d, tiers[i % 3], seed ^ ((i as u64) << 4)))
        .collect();
    (clients, Dataset::generate(400, seed ^ 0xFF))
}

fn run(strategy: Strategy, seed: u64) -> FedReport {
    let (mut clients, test) = fleet(8, seed);
    let config = FedConfig {
        rounds: scaled(10, 4),
        local_epochs: scaled(10, 4),
    };
    run_federated(&mut clients, strategy, &config, &test)
}

fn main() {
    header("Fig. 11: adaptive FL vs static FL (8 heterogeneous clients, non-IID)");
    let strategies = [
        Strategy::Static,
        Strategy::DcNas,
        Strategy::HaloFl,
        Strategy::Combined,
    ];
    let reports: Vec<FedReport> = strategies.iter().map(|&s| run(s, 9)).collect();
    let baseline = reports[0];

    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>8}",
        "strategy", "accuracy", "energy (J)", "latency (s)", "area"
    );
    let mut csv = Vec::new();
    for r in &reports {
        println!(
            "{:<14} {:>9.3} {:>12.4} {:>12.3} {:>8.3}",
            r.strategy.to_string(),
            r.accuracy,
            r.energy_j,
            r.latency_s,
            r.area
        );
        csv.push(format!(
            "{},{:.4},{:.6},{:.6},{:.4}",
            r.strategy, r.accuracy, r.energy_j, r.latency_s, r.area
        ));
    }

    header("relative reductions vs static (the Fig. 11 bars)");
    for r in &reports[1..] {
        println!(
            "{:<14} energy -{:.0}%  latency -{:.0}%  area -{:.0}%  accuracy {:+.1} pts",
            r.strategy.to_string(),
            (1.0 - r.energy_j / baseline.energy_j) * 100.0,
            (1.0 - r.latency_s / baseline.latency_s) * 100.0,
            (1.0 - r.area / baseline.area) * 100.0,
            (r.accuracy - baseline.accuracy) * 100.0
        );
    }

    header("shape check vs paper");
    let dcnas = reports[1];
    let halo = reports[2];
    compare(
        "DC-NAS reduces energy & latency",
        "significant reduction",
        &format!(
            "-{:.0}% energy, -{:.0}% latency",
            (1.0 - dcnas.energy_j / baseline.energy_j) * 100.0,
            (1.0 - dcnas.latency_s / baseline.latency_s) * 100.0
        ),
    );
    compare(
        "HaLo-FL reduces energy & area",
        "significant reduction",
        &format!(
            "-{:.0}% energy, -{:.0}% area",
            (1.0 - halo.energy_j / baseline.energy_j) * 100.0,
            (1.0 - halo.area / baseline.area) * 100.0
        ),
    );
    assert!(dcnas.energy_j < baseline.energy_j);
    assert!(halo.energy_j < baseline.energy_j);
    assert!(halo.area < baseline.area);
    println!("shape check passed");

    if std::env::args().any(|a| a == "--uniform-precision") {
        header("ablation: HaLo selector vs uniform INT8");
        let (mut clients, test) = fleet(8, 9);
        for c in clients.iter_mut() {
            c.precision = sensact_nn::quant::Precision::Int8;
        }
        let config = FedConfig {
            rounds: scaled(10, 4),
            local_epochs: scaled(10, 4),
        };
        // Note: run_federated would reset precisions; emulate a fixed run.
        let mut energy = 0.0;
        let mut global = clients[0].params_flat();
        for _ in 0..config.rounds {
            for c in clients.iter_mut() {
                c.set_params_flat(&global);
                let _ = c.local_train(config.local_epochs);
                energy += c.round_energy_j(config.local_epochs);
            }
            global = {
                // Plain FedAvg (all full networks).
                let dim = global.len();
                let mut sum = vec![0.0; dim];
                let mut total_w = 0.0;
                for c in clients.iter_mut() {
                    let w = c.data.len() as f64;
                    for (s, v) in sum.iter_mut().zip(c.params_flat()) {
                        *s += v * w;
                    }
                    total_w += w;
                }
                sum.iter().map(|s| s / total_w).collect()
            };
        }
        clients[0].set_params_flat(&global);
        let acc = clients[0].evaluate(&test);
        println!(
            "uniform INT8: accuracy {acc:.3}, energy {energy:.4} J (HaLo: {:.3} / {:.4} J)",
            halo.accuracy, halo.energy_j
        );
    }

    write_csv("fig11", "strategy,accuracy,energy_j,latency_s,area", &csv);
}
