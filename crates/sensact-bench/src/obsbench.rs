//! Shared paired-measurement workloads behind the recorded observability and
//! scheduler overhead headlines (`BENCH_obs.json` / `BENCH_sched.json`).
//!
//! `benches/bench_obs.rs`, `bin/bench_sched.rs` and the CI `bench_gate`
//! binary all call into this module, so the gate re-measures *exactly* the
//! quantity each committed baseline recorded — same workload, same paired
//! interleaved methodology — and a drifted copy can't silently diverge from
//! what the gate checks.

use sensact_core::stage::{
    Controller, FnController, FnPerceptor, FnSensor, Perceptor, Sensor, StageContext, Trust,
};
use sensact_core::trace::SimClock;
use sensact_core::{LoopBuilder, Tracer};
use sensact_math::RunningStats;
use sensact_sched::{FleetConfig, FleetScheduler, LoopHandle, LoopSpec};
use std::hint::black_box;
use std::time::Instant;

/// The realistic workload: a 256-sample sweep sensor plus a mean+variance
/// perceptor — ~2.6 µs of real work per tick, the scale the percentage
/// targets are measured on.
pub fn realistic_sensor() -> FnSensor<impl FnMut(&f64, &mut StageContext) -> Vec<f64>> {
    FnSensor::new(|e: &f64, ctx: &mut StageContext| {
        ctx.charge(1e-6, 1e-6);
        let mut sweep = Vec::with_capacity(256);
        for i in 0..256 {
            sweep.push(e + (i as f64 * 0.1).sin());
        }
        sweep
    })
}

/// See [`realistic_sensor`].
pub fn realistic_perceptor() -> FnPerceptor<impl FnMut(&Vec<f64>, &mut StageContext) -> f64> {
    FnPerceptor::new(|sweep: &Vec<f64>, _: &mut StageContext| {
        let n = sweep.len() as f64;
        let mean = sweep.iter().sum::<f64>() / n;
        let var = sweep.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        mean + var
    })
}

/// The proportional controller shared by every workload.
pub fn controller() -> FnController<impl FnMut(&f64, Trust, &mut StageContext) -> f64> {
    FnController::new(|f: &f64, _t: Trust, _: &mut StageContext| -0.5 * f)
}

/// The PR 2-era telemetry: bounded ring of slim records plus O(1)
/// aggregates — what `LoopTelemetry` kept per tick before the observability
/// layer added breakdowns and histograms. Benchmarking against this
/// isolates the always-on attribution cost.
pub struct BaselineTelemetry {
    records: Vec<(u64, f64, f64, Trust)>,
    head: usize,
    capacity: usize,
    ticks: u64,
    total_energy_j: f64,
    total_latency_s: f64,
    energy: RunningStats,
    latency: RunningStats,
}

impl Default for BaselineTelemetry {
    fn default() -> Self {
        BaselineTelemetry::new()
    }
}

impl BaselineTelemetry {
    /// An empty PR 2-era ledger (4096-record ring).
    pub fn new() -> Self {
        BaselineTelemetry {
            records: Vec::new(),
            head: 0,
            capacity: 4096,
            ticks: 0,
            total_energy_j: 0.0,
            total_latency_s: 0.0,
            energy: RunningStats::new(),
            latency: RunningStats::new(),
        }
    }

    /// Record one tick (ring insert + running aggregates).
    pub fn record(&mut self, energy_j: f64, latency_s: f64, trust: Trust) {
        let rec = (self.ticks, energy_j, latency_s, trust);
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
        self.ticks += 1;
        self.total_energy_j += energy_j;
        self.total_latency_s += latency_s;
        self.energy.push(energy_j);
        self.latency.push(latency_s);
    }
}

/// One hand-rolled pre-observability tick: stage calls, budget consumption
/// and the slim aggregate record — everything PR 2's `tick` did, nothing the
/// observability layer added.
pub fn baseline_tick<R>(
    env: &f64,
    sensor: &mut FnSensor<impl FnMut(&f64, &mut StageContext) -> R>,
    perceptor: &mut FnPerceptor<impl FnMut(&R, &mut StageContext) -> f64>,
    controller: &mut FnController<impl FnMut(&f64, Trust, &mut StageContext) -> f64>,
    budget: &mut sensact_core::EnergyBudget,
    telemetry: &mut BaselineTelemetry,
) -> f64 {
    let mut ctx = StageContext::new();
    let reading = sensor.sense(env, &mut ctx);
    let features = perceptor.perceive(&reading, &mut ctx);
    let action = controller.decide(&features, Trust::Trusted, &mut ctx);
    budget.consume(ctx.energy_j(), ctx.latency_s());
    telemetry.record(ctx.energy_j(), ctx.latency_s(), Trust::Trusted);
    action
}

/// Paired interleaved measurement: alternate batches of the two workloads
/// so slow drift (CPU frequency scaling, thermal throttling) hits both
/// sides equally, and take the per-side minimum over many rounds. Two
/// independent harness rows measured minutes apart wander by double-digit
/// percent on a busy host; the paired floor is stable to ~1 %.
pub fn paired_min_ns(
    rounds: usize,
    batch: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let (mut min_a, mut min_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..batch {
            a();
        }
        min_a = min_a.min(t.elapsed().as_nanos() as f64 / batch as f64);
        let t = Instant::now();
        for _ in 0..batch {
            b();
        }
        min_b = min_b.min(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    (min_a, min_b)
}

/// One paired round of [`baseline_tick`] vs a realistic loop built with the
/// given tracer; returns `(baseline_ns, candidate_ns)` floors — the
/// `BENCH_obs.json` realistic headline.
pub fn paired_realistic(rounds: usize, batch: usize, tracer: Tracer) -> (f64, f64) {
    let (mut s, mut p, mut k) = (realistic_sensor(), realistic_perceptor(), controller());
    let mut budget = sensact_core::EnergyBudget::unlimited();
    let mut t = BaselineTelemetry::new();
    let mut looop = LoopBuilder::new("paired").with_tracer(tracer).build(
        realistic_sensor(),
        realistic_perceptor(),
        controller(),
    );
    paired_min_ns(
        rounds,
        batch,
        || {
            black_box(baseline_tick(
                black_box(&1.0),
                &mut s,
                &mut p,
                &mut k,
                &mut budget,
                &mut t,
            ));
        },
        || {
            black_box(looop.tick(black_box(&1.0)));
        },
    )
}

/// The scheduler-overhead headline (`BENCH_sched.json` `overhead_fleet1`).
pub struct OverheadRow {
    /// Per-tick floor of the raw `SensingActionLoop::tick` path (ns).
    pub raw_tick_ns: f64,
    /// Per-tick cost through `FleetScheduler::run_deterministic` (ns).
    pub scheduled_tick_ns: f64,
    /// `100 · (scheduled − raw) / raw`.
    pub overhead_pct: f64,
}

/// Paired interleaved measurement of raw vs scheduled ticks at fleet size 1
/// on the realistic workload — the `BENCH_sched.json` overhead headline.
pub fn sched_overhead_case(batch: u64, rounds: u32) -> OverheadRow {
    let mut raw =
        LoopBuilder::new("raw").build(realistic_sensor(), realistic_perceptor(), controller());
    let env = 0.25f64;

    let scheduled = LoopBuilder::new("scheduled").build(
        realistic_sensor(),
        realistic_perceptor(),
        controller(),
    );
    let mut fleet = FleetScheduler::new(FleetConfig {
        workers: 1,
        watts_cap: None,
        seed: 0,
    });
    let period_s = 1e-3;
    fleet.register(
        LoopHandle::closed(scheduled, env, |_, _| {}),
        // Execution keeps pace with the release schedule (1 µs charged vs a
        // 1 ms period), so a small queue never sheds load.
        LoopSpec::periodic(period_s).with_queue_capacity(5),
    );
    let horizon_s = batch as f64 * period_s;

    // Warm-up (untimed) pass for each side, then alternating timed batches.
    for _ in 0..batch {
        black_box(raw.tick(&env));
    }
    black_box(fleet.run_deterministic(horizon_s, &mut SimClock::new()));

    let mut raw_ns = 0.0f64;
    let mut sched_ns = 0.0f64;
    let mut sched_ticks = 0u64;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(raw.tick(&env));
        }
        raw_ns += t.elapsed().as_nanos() as f64;

        let t = Instant::now();
        let report = fleet.run_deterministic(horizon_s, &mut SimClock::new());
        sched_ns += t.elapsed().as_nanos() as f64;
        assert_eq!(report.ticks, batch, "scheduler must execute every release");
        sched_ticks += report.ticks;
    }
    let raw_tick_ns = raw_ns / (batch * rounds as u64) as f64;
    let scheduled_tick_ns = sched_ns / sched_ticks as f64;
    OverheadRow {
        raw_tick_ns,
        scheduled_tick_ns,
        overhead_pct: 100.0 * (scheduled_tick_ns - raw_tick_ns) / raw_tick_ns,
    }
}
