//! Minimal wall-clock micro-benchmark harness.
//!
//! Covers the small slice of the criterion API the benches use
//! (`bench_function` + `Bencher::iter`) with adaptive iteration counts:
//! each benchmark is calibrated with a single run, then timed over several
//! samples sized to fill a fixed measurement budget. Results print as a
//! table and can be exported as CSV/JSON rows.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean wall-clock time per iteration (nanoseconds).
    pub mean_ns: f64,
    /// Fastest observed per-iteration time across samples (nanoseconds).
    pub min_ns: f64,
    /// Total iterations measured (excluding calibration).
    pub iters: u64,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the workload `iters` times, timing the whole batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of benchmarks with a shared time budget.
pub struct Harness {
    name: String,
    target: Duration,
    samples: u32,
    results: Vec<(String, Sample)>,
}

impl Harness {
    /// Harness with the default budget (~300 ms per benchmark, ~50 ms in
    /// quick mode — see [`crate::quick`]).
    pub fn new(name: &str) -> Self {
        let target = if crate::quick() {
            Duration::from_millis(50)
        } else {
            Duration::from_millis(300)
        };
        println!("== {name} ==");
        Harness {
            name: name.to_string(),
            target,
            samples: 8,
            results: Vec::new(),
        }
    }

    /// Time `f`, sizing iteration batches so all samples together roughly
    /// fill the budget, and print one summary row.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        // Calibration run (1 iteration) sizes the measurement batches.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let single_ns = (b.elapsed.as_nanos() as u64).max(1);
        let budget_ns = self.target.as_nanos() as u64 / self.samples as u64;
        let per_sample = (budget_ns / single_ns).clamp(1, 1_000_000_000);

        let mut min_ns = f64::INFINITY;
        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters: per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per_iter = b.elapsed.as_nanos() as f64 / per_sample as f64;
            min_ns = min_ns.min(per_iter);
            total_ns += b.elapsed.as_nanos() as f64;
            total_iters += per_sample;
        }
        let sample = Sample {
            mean_ns: total_ns / total_iters as f64,
            min_ns,
            iters: total_iters,
        };
        println!(
            "{id:<44} mean {:>12}   min {:>12}   ({} iters)",
            fmt_ns(sample.mean_ns),
            fmt_ns(sample.min_ns),
            sample.iters
        );
        self.results.push((id.to_string(), sample));
        self
    }

    /// All recorded results in run order.
    pub fn results(&self) -> &[(String, Sample)] {
        &self.results
    }

    /// Write results as `target/experiments/<name>.csv`.
    pub fn finish(&self) {
        let rows: Vec<String> = self
            .results
            .iter()
            .map(|(id, s)| format!("{id},{:.1},{:.1},{}", s.mean_ns, s.min_ns, s.iters))
            .collect();
        crate::write_csv(&self.name, "benchmark,mean_ns,min_ns,iters", &rows);
    }
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_times() {
        let mut h = Harness::new("harness_unit_test");
        h.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let results = h.results();
        assert_eq!(results.len(), 1);
        assert!(results[0].1.mean_ns > 0.0);
        assert!(results[0].1.min_ns <= results[0].1.mean_ns * 1.001);
        assert!(results[0].1.iters >= 8);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_500.0).ends_with("us"));
        assert!(fmt_ns(12_500_000.0).ends_with("ms"));
        assert!(fmt_ns(2_500_000_000.0).ends_with('s'));
    }
}
