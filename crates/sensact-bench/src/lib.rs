//! # sensact-bench
//!
//! Experiment harnesses reproducing every table and figure of the paper's
//! evaluation. One binary per artifact (see `src/bin/`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — AP per class × pre-training scheme × detector |
//! | `table2` | Table II — conventional vs. R-MAE energy/params/FLOPs |
//! | `fig5a` | Fig. 5a — MACs of the dynamics models |
//! | `fig5b` | Fig. 5b — reward vs. disturbance probability |
//! | `fig7` | Fig. 7 — detection accuracy under snow ± STARNet |
//! | `starnet_auc` | §V AUC table over the 7 corruption families |
//! | `fig9` | Fig. 9 — optical-flow AEE bars + size sweep |
//! | `fig8_energy` | Fig. 2/8 — clocked vs. event-driven loop energy |
//! | `fig11` | Fig. 11 — DC-NAS / HaLo-FL energy/latency/area reductions |
//! | `conclusions` | §VIII headline claims (8 % sensing, 3× fleet energy, monitor recovery) |
//!
//! Every binary prints a paper-vs-measured comparison and appends a CSV under
//! `target/experiments/`. Set `SENSACT_QUICK=1` for reduced problem sizes.
//! Micro-benchmarks live in `benches/`, driven by the in-repo [`harness`]
//! (wall-clock timing, no external dependencies — the workspace builds
//! offline).

use std::io::Write;
use std::path::PathBuf;

pub mod harness;
pub mod obsbench;
pub mod servebench;

/// Whether quick mode is requested (smaller problem sizes).
pub fn quick() -> bool {
    std::env::var("SENSACT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// Scale a size by quick mode (quarter size, at least `min`).
pub fn scaled(full: usize, min: usize) -> usize {
    if quick() {
        (full / 4).max(min)
    } else {
        full
    }
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Print a `paper vs measured` comparison line.
pub fn compare(label: &str, paper: &str, measured: &str) {
    println!("{label:<44} paper: {paper:<18} measured: {measured}");
}

/// Append CSV rows to `target/experiments/<name>.csv` (creates the dir);
/// errors are reported but not fatal — the printed output is the artifact.
pub fn write_csv(name: &str, header_row: &str, rows: &[String]) {
    let dir = PathBuf::from("target/experiments");
    let write = || -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{header_row}")?;
        for r in rows {
            writeln!(f, "{r}")?;
        }
        Ok(path)
    };
    match write() {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_quick_floor() {
        // Without the env var, full size.
        if !quick() {
            assert_eq!(scaled(100, 10), 100);
        }
        // The floor always holds.
        assert!(scaled(8, 10) >= if quick() { 10 } else { 8 });
    }

    #[test]
    fn csv_writer_creates_file() {
        write_csv("unit_test", "a,b", &["1,2".to_string(), "3,4".to_string()]);
        let content = std::fs::read_to_string("target/experiments/unit_test.csv").unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("3,4"));
    }
}
