//! Mixed-precision fleet integration: a watts-capped fleet run under
//! [`SimClock`] must (a) push its loops through multiple precision modes via
//! the energy arbiter's fleet-wide hints, and (b) be bit-exactly
//! reproducible — identical trace hash and identical per-tick records,
//! including each loop's precision schedule, across reruns with the same
//! seed.

use sensact_core::replay::{first_divergence, Recording};
use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext};
use sensact_core::trace::SimClock;
use sensact_core::{LoopBuilder, Precision, PrecisionPolicy};
use sensact_sched::{FleetConfig, FleetScheduler, LoopHandle, LoopId, LoopSpec};

const LOOPS: usize = 4;

/// A fleet whose summed burn (~4 W) overshoots its 1 W cap: the arbiter
/// oscillates between throttled (int8/f32 hints) and relaxed (no hint)
/// stretches as strides breathe, so every precision mode shows up.
fn precision_fleet(seed: u64) -> FleetScheduler {
    let mut sched = FleetScheduler::new(FleetConfig {
        workers: 2,
        watts_cap: Some(1.0),
        seed,
    });
    for i in 0..LOOPS {
        let looop = LoopBuilder::new(format!("mp-{i}"))
            .with_precision(PrecisionPolicy::adaptive(0.5, 0.85))
            .build(
                FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                    ctx.charge(1e-3, 1e-4);
                    *e
                }),
                FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
                FnController::new(|f: &f64, _t, _: &mut StageContext| -0.2 * f),
            );
        sched.register(
            LoopHandle::closed(looop, 1.0f64, |e, a| *e += a),
            LoopSpec::periodic(1e-3),
        );
    }
    sched
}

fn run(seed: u64) -> (u64, u64, Vec<Recording>) {
    let mut sched = precision_fleet(seed);
    let mut clock = SimClock::new();
    let report = sched.run_deterministic(1.0, &mut clock);
    assert_eq!(clock.peek_s(), report.makespan_s);
    let recordings = (0..LOOPS)
        .map(|i| Recording::capture(format!("mp-{i}"), seed, sched.loop_telemetry(LoopId(i))))
        .collect();
    (report.trace_hash, report.ticks, recordings)
}

#[test]
fn mixed_precision_fleet_replays_bit_exactly() {
    let (hash_a, ticks_a, recs_a) = run(42);
    let (hash_b, ticks_b, recs_b) = run(42);

    assert_eq!(hash_a, hash_b, "trace hash must be seed-deterministic");
    assert_eq!(ticks_a, ticks_b);
    assert!(
        ticks_a >= 1000,
        "fleet must accumulate >= 1000 ticks, got {ticks_a}"
    );

    // Bit-exact per tick, including the precision field: any drift in the
    // arbiter hints or governor decisions would surface here.
    for (a, b) in recs_a.iter().zip(&recs_b) {
        assert_eq!(a.ticks.len(), b.ticks.len());
        assert_eq!(first_divergence(&a.ticks, &b.ticks), None);
        // The serialized form round-trips the schedule losslessly too.
        assert_eq!(Recording::from_jsonl(&a.to_jsonl()), *a);
    }

    // The arbiter's hints must genuinely move loops off f64: under a 4x
    // overshoot the fleet visits at least two precision modes, and the
    // cheap modes dominate while throttled.
    let mode_ticks: Vec<u64> = Precision::ALL
        .iter()
        .map(|&p| {
            recs_a
                .iter()
                .flat_map(|r| &r.ticks)
                .filter(|t| t.precision == p)
                .count() as u64
        })
        .collect();
    let modes_seen = mode_ticks.iter().filter(|&&n| n > 0).count();
    assert!(
        modes_seen >= 2,
        "expected multiple precision modes, got ticks per mode {mode_ticks:?}"
    );
    assert!(
        mode_ticks[1] + mode_ticks[2] > 0,
        "arbiter hints never cheapened any loop: {mode_ticks:?}"
    );

    // A different seed reorders equal-deadline releases: observable in the
    // trace hash, so the determinism assertion above is not vacuous.
    let (hash_c, _, _) = run(43);
    assert_ne!(hash_a, hash_c, "seed must be observable in the trace hash");
}
