//! The fleet scheduler: deadline-aware multiplexing of N loops over W
//! workers.
//!
//! Time here is *virtual* — the same simulated seconds every stage charges
//! through [`StageContext`](sensact_core::StageContext). A loop with period
//! `p` releases its k-th tick at `k·p` (stretched by the energy arbiter
//! when the fleet is over its watts cap); the tick *starts* once its
//! release is due and the loop's previous tick has completed (a loop is
//! sequential), and *completes* at `start + charged latency`. A completion
//! later than `release + latency budget` is a deadline miss, surfaced
//! through the loop's own
//! [`StageError::Timeout`](sensact_core::StageError) fault path.
//!
//! Two execution modes share these semantics:
//!
//! * [`FleetScheduler::run`] — OS worker threads over the sharded
//!   work-stealing EDF queue. Throughput-oriented: the OS threads *are* the
//!   capacity, so no virtual worker clock is modeled and — absent a watts
//!   cap — every loop's tick/drop/miss schedule is independent of the
//!   interleaving; only steals, wall time, and utilization vary.
//! * [`FleetScheduler::run_deterministic`] — a single-threaded event-driven
//!   simulation of W *virtual* workers under a caller-provided
//!   [`SimClock`]: a tick additionally waits for the earliest-free virtual
//!   worker, so fleet makespan reflects worker capacity. The interleaving
//!   is a pure function of the seed: EDF ties break by seeded per-release
//!   keys, and the run's execution trace is folded into
//!   [`FleetReport::trace_hash`] so two runs can be compared
//!   tick-for-tick.

use crate::arbiter::EnergyArbiter;
use crate::handle::{DynLoop, LoopHandle, TickOutcome};
use crate::queue::{tie_break, Release, ShardedQueue};
use sensact_core::checkpoint::{Checkpoint, CheckpointError, Section};
use sensact_core::health::{encode_transition, HealthScorer};
use sensact_core::trace::{trace_mix, SimClock};
use sensact_core::{
    CausalSpan, FleetHealth, FleetTracer, HealthPolicy, HealthSignals, HealthStatus, Histogram,
    LoopTelemetry, MetricsRegistry, SpanKind, TraceContext,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on a loop's pending-tick backlog.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4;

/// Salt mixed into scheduler-owned trace ids, keeping tick traces disjoint
/// from the federated round traces derived from the same fleet seed.
const SCHED_TRACE_SALT: u64 = 0x5C4E_D71C;

/// Salt for health-transition trace ids.
const HEALTH_TRACE_SALT: u64 = 0x5C4E_D41F;

/// Causal spans each worker's flight recorder retains (ring buffer).
pub const FLIGHT_RECORDER_CAPACITY: usize = 32;

/// Per-loop completion window between health evaluations in deterministic
/// runs — small enough to catch a storm mid-run, large enough for the rates
/// to mean something.
pub const HEALTH_WINDOW_TICKS: u64 = 16;

/// Bound on flight-recorder incidents one run will capture.
pub const MAX_INCIDENTS: usize = 8;

/// Sliding completion window the miss-storm invariant watches per worker.
const MISS_STORM_WINDOW: usize = 8;

/// Misses within [`MISS_STORM_WINDOW`] that trip the invariant.
const MISS_STORM_THRESHOLD: usize = 6;

/// A member loop's timing contract with the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopSpec {
    /// Tick release period (virtual seconds, > 0).
    pub period_s: f64,
    /// Response-time budget per tick; a completion later than
    /// `release + budget` is a deadline miss. `None` uses the period as an
    /// implicit deadline for EDF ordering and disables miss accounting.
    pub latency_budget_s: Option<f64>,
    /// Bound on the backlog of released-but-unexecuted ticks; beyond it the
    /// *oldest* pending releases are dropped (and counted), keeping the loop
    /// fresh instead of arbitrarily late.
    pub queue_capacity: usize,
}

impl LoopSpec {
    /// A periodic loop with no explicit latency budget.
    pub fn periodic(period_s: f64) -> Self {
        LoopSpec {
            period_s,
            latency_budget_s: None,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }

    /// Set the per-tick latency budget (reusing the loop's
    /// [`EnergyBudget`](sensact_core::EnergyBudget) latency notion).
    pub fn with_budget(mut self, latency_budget_s: f64) -> Self {
        self.latency_budget_s = Some(latency_budget_s);
        self
    }

    /// Set the pending-tick queue bound (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Absolute completion deadline of a tick released at `release_s`: the
    /// latency budget past the release, or one period when no explicit
    /// budget is set. Public so admission-control layers (the serving
    /// front-end) can run the same arithmetic the scheduler enforces.
    pub fn deadline_s(&self, release_s: f64) -> f64 {
        release_s + self.latency_budget_s.unwrap_or(self.period_s)
    }
}

impl Default for LoopSpec {
    fn default() -> Self {
        LoopSpec::periodic(1e-2)
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Worker count (virtual workers in deterministic mode, OS threads in
    /// threaded mode). Clamped to ≥ 1.
    pub workers: usize,
    /// Optional fleet-average power cap (watts) enforced by the
    /// [`EnergyArbiter`].
    pub watts_cap: Option<f64>,
    /// Seed for the EDF tie-break keys — the knob that makes deterministic
    /// runs reproducible and distinguishable.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            watts_cap: None,
            seed: 0,
        }
    }
}

/// Identifier of a registered loop (index order of registration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopId(pub usize);

/// Scheduler-side accounting for one member loop (cumulative across runs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoopStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Pending releases dropped by backpressure (drop-oldest).
    pub drops: u64,
    /// Deadline misses (also surfaced as `Timeout` faults in the loop).
    pub deadline_misses: u64,
    /// Stage faults reported by the loop itself.
    pub faults: u64,
    /// Energy charged (joules).
    pub energy_j: f64,
    /// Charged latency executed (virtual seconds).
    pub busy_s: f64,
    /// Off-worker communication tail time (virtual seconds): in-flight
    /// network time after compute finished. Counts toward the loop's
    /// sequential timeline and deadlines, never toward worker busy time.
    pub comm_s: f64,
}

#[derive(Debug)]
struct Slot {
    handle: LoopHandle,
    spec: LoopSpec,
    stats: LoopStats,
    /// Completion time of the loop's latest tick this run (virtual seconds).
    /// A loop is sequential: tick k+1 can never start before tick k
    /// completed, whichever worker runs it.
    last_completion_s: f64,
    /// The member was retired ([`FleetScheduler::retire_member`]): run loops
    /// skip it, reports omit it, and [`FleetScheduler::register`] may reuse
    /// the slot (so [`LoopId`]s stay dense under membership churn).
    retired: bool,
    /// Count of externally-driven releases
    /// ([`FleetScheduler::tick_member_at`]) — the release index space of a
    /// serving-mode member.
    ext_releases: u64,
}

/// Placeholder occupying a retired slot until [`FleetScheduler::register`]
/// reuses it. Never ticked: run modes skip retired slots.
struct TombstoneLoop {
    telemetry: LoopTelemetry,
}

impl DynLoop for TombstoneLoop {
    fn name(&self) -> &str {
        "<retired>"
    }

    fn tick_once(&mut self) -> TickOutcome {
        unreachable!("retired slot must never tick")
    }

    fn telemetry(&self) -> &LoopTelemetry {
        &self.telemetry
    }

    fn record_deadline_miss(&mut self, _latency_s: f64, _budget_s: f64) {}
}

/// Per-loop summary embedded in a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSummary {
    /// Loop name.
    pub name: String,
    /// Cumulative stats at the end of the run.
    pub stats: LoopStats,
}

/// Why a flight-recorder dump was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentReason {
    /// ≥ `MISS_STORM_THRESHOLD` deadline misses inside one worker's last
    /// `MISS_STORM_WINDOW` completions.
    MissStorm,
    /// A loop's health scorer transitioned into [`HealthStatus::Critical`]
    /// (trust collapse, sustained SLO violation).
    HealthCollapse,
}

impl IncidentReason {
    /// Short static name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            IncidentReason::MissStorm => "miss_storm",
            IncidentReason::HealthCollapse => "health_collapse",
        }
    }
}

/// A flight-recorder dump: the last few causal spans a worker executed
/// before an invariant tripped, frozen for post-mortem without keeping the
/// whole trace stream around.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Virtual worker whose recorder was dumped.
    pub worker: usize,
    /// Loop whose completion tripped the invariant.
    pub loop_idx: usize,
    /// Virtual time of the trip.
    pub at_s: f64,
    /// Which invariant tripped.
    pub reason: IncidentReason,
    /// The recorder's contents, oldest first (≤ [`FLIGHT_RECORDER_CAPACITY`]).
    pub spans: Vec<CausalSpan>,
}

/// What one fleet run did.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Virtual-time horizon the fleet ran to.
    pub horizon_s: f64,
    /// Worker count.
    pub workers: usize,
    /// Ticks executed this run.
    pub ticks: u64,
    /// Pending releases dropped by backpressure this run.
    pub drops: u64,
    /// Deadline misses this run.
    pub deadline_misses: u64,
    /// Cross-shard steals this run (0 in deterministic mode — it models an
    /// ideal shared queue).
    pub steals: u64,
    /// Completions that observed an over-cap fleet.
    pub throttle_events: u64,
    /// Fleet virtual makespan: the latest tick completion, including
    /// off-worker communication tails (seconds).
    pub makespan_s: f64,
    /// Summed charged energy this run (joules).
    pub energy_j: f64,
    /// Wall-clock duration of the run (seconds).
    pub wall_s: f64,
    /// Per-worker executed charged latency (virtual seconds).
    pub worker_busy_s: Vec<f64>,
    /// Ready-queue depth sampled at every pop.
    pub queue_depth: Histogram,
    /// Order-sensitive FNV-1a fold of the execution trace
    /// `(loop, release, worker, completion)`; `0` in threaded mode.
    pub trace_hash: u64,
    /// Per-loop summaries (cumulative stats, registration order).
    pub loops: Vec<LoopSummary>,
    /// End-of-run per-loop health classification (whole-run rates against
    /// the scheduler's [`HealthPolicy`], registration order).
    pub loop_health: Vec<HealthStatus>,
    /// Fleet-level roll-up of `loop_health`.
    pub health: FleetHealth,
    /// Flight-recorder dumps captured when an invariant tripped
    /// (deterministic mode with tracing enabled; bounded by
    /// [`MAX_INCIDENTS`]).
    pub incidents: Vec<Incident>,
}

impl FleetReport {
    /// Fleet throughput in virtual time (ticks per simulated second).
    pub fn throughput_ticks_per_vs(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.ticks as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// Utilization of worker `w`: executed latency over makespan.
    pub fn utilization(&self, w: usize) -> f64 {
        if self.makespan_s > 0.0 {
            self.worker_busy_s.get(w).copied().unwrap_or(0.0) / self.makespan_s
        } else {
            0.0
        }
    }

    /// Mean worker utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.worker_busy_s.is_empty() {
            return 0.0;
        }
        (0..self.worker_busy_s.len())
            .map(|w| self.utilization(w))
            .sum::<f64>()
            / self.worker_busy_s.len() as f64
    }

    /// Fleet average power over the run (watts).
    pub fn watts(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.energy_j / self.makespan_s
        } else {
            0.0
        }
    }

    /// Export scheduler-level metrics under `sched.*` names: counters for
    /// ticks/drops/deadline-misses/steals/throttles, gauges for
    /// makespan/energy/watts and health, and histograms for queue depth and
    /// per-worker utilization.
    ///
    /// The export is *idempotent*: every sample describes this report's
    /// totals (`set_counter`/`set`/`install_histogram`, never accumulation),
    /// so re-exporting the same report — a scrape loop rendering the same
    /// run twice — cannot double-count.
    pub fn export_into(&self, registry: &mut MetricsRegistry) {
        registry.set_counter("sched.ticks_total", self.ticks);
        registry.set_counter("sched.drops_total", self.drops);
        registry.set_counter("sched.deadline_miss_total", self.deadline_misses);
        registry.set_counter("sched.steals_total", self.steals);
        registry.set_counter("sched.throttle_total", self.throttle_events);
        registry.set_counter("sched.incidents_total", self.incidents.len() as u64);
        registry.set_counter("sched.health.healthy", self.health.healthy as u64);
        registry.set_counter("sched.health.degraded", self.health.degraded as u64);
        registry.set_counter("sched.health.critical", self.health.critical as u64);
        registry.set("sched.health.status_code", self.health.status.code() as f64);
        registry.set("sched.workers", self.workers as f64);
        registry.set("sched.makespan_s", self.makespan_s);
        registry.set("sched.fleet_energy_j", self.energy_j);
        registry.set("sched.fleet_watts", self.watts());
        registry.install_histogram("sched.queue.depth", self.queue_depth.clone());
        let mut util = Histogram::new();
        for w in 0..self.worker_busy_s.len() {
            util.record(self.utilization(w));
        }
        registry.install_histogram("sched.worker.utilization_frac", util);
    }

    /// Human-readable fleet report (also available via `Display`).
    pub fn text_report(&self) -> String {
        self.to_string()
    }
}

impl FleetReport {
    /// Render the ASCII fleet dashboard: the report summary (fleet rollups,
    /// health states, per-loop rows, incidents) plus the fleet-wide tick
    /// latency distribution from a rolled-up registry
    /// ([`FleetScheduler::rollup_metrics`]) — the
    /// [`text_report`](sensact_core::export::text_report)-style companion to
    /// the Prometheus exposition.
    pub fn dashboard(&self, rollup: &MetricsRegistry) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{self}");
        for (key, title) in [
            ("loop.tick.latency_s", "tick latency (s)"),
            ("sched.worker.utilization_frac", "worker utilization"),
        ] {
            if let Some(hist) = rollup.histogram(key) {
                let _ = writeln!(out, "  {title}, {} samples:", hist.count());
                out.push_str(&sensact_core::export::ascii_histogram(hist, 8, 40));
            }
        }
        out
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} loops over {} workers, horizon {:.4} s (virtual)",
            self.loops.len(),
            self.workers,
            self.horizon_s
        )?;
        writeln!(
            f,
            "  ticks {}  drops {}  deadline-misses {}  steals {}  throttles {}",
            self.ticks, self.drops, self.deadline_misses, self.steals, self.throttle_events
        )?;
        writeln!(
            f,
            "  makespan {:.4} s  throughput {:.1} ticks/vs  energy {:.3e} J ({:.3e} W)  util {:.0}%",
            self.makespan_s,
            self.throughput_ticks_per_vs(),
            self.energy_j,
            self.watts(),
            100.0 * self.mean_utilization()
        )?;
        writeln!(
            f,
            "  health {}: {} healthy / {} degraded / {} critical  incidents {}",
            self.health.status,
            self.health.healthy,
            self.health.degraded,
            self.health.critical,
            self.incidents.len()
        )?;
        writeln!(
            f,
            "  {:<20} {:>8} {:>7} {:>7} {:>7}  health",
            "loop", "ticks", "drops", "misses", "faults"
        )?;
        for (i, s) in self.loops.iter().enumerate() {
            let health = self
                .loop_health
                .get(i)
                .copied()
                .unwrap_or(HealthStatus::Healthy);
            writeln!(
                f,
                "  {:<20} {:>8} {:>7} {:>7} {:>7}  {}",
                s.name,
                s.stats.ticks,
                s.stats.drops,
                s.stats.deadline_misses,
                s.stats.faults,
                health
            )?;
        }
        for inc in &self.incidents {
            writeln!(
                f,
                "  incident {} worker {} loop {} at {:.4} s ({} spans)",
                inc.reason.name(),
                inc.worker,
                inc.loop_idx,
                inc.at_s,
                inc.spans.len()
            )?;
        }
        Ok(())
    }
}

/// Clamp a charged latency to something a virtual clock can advance by.
fn sane_latency(latency_s: f64) -> f64 {
    if latency_s.is_finite() && latency_s > 0.0 {
        latency_s
    } else {
        0.0
    }
}

/// What executing one release did, on the virtual timeline.
struct Executed {
    /// When the tick started (worker free, release due, loop sequential).
    start_s: f64,
    /// When the *worker* is free again: `start + charged latency`.
    busy_end_s: f64,
    /// When the tick fully completes: `busy_end + comm tail`. This is what
    /// the loop's sequential timeline, deadlines, and fleet makespan use.
    completion_s: f64,
    /// Energy the tick charged (joules), as reported.
    energy_j: f64,
    /// Whether the completion blew the loop's latency budget.
    missed: bool,
}

/// Execute one release on a slot: tick the loop, advance accounting, check
/// the deadline. A tick starts when its release is due, its loop's previous
/// tick has completed (a loop is sequential), and — in deterministic mode —
/// its assigned virtual worker is free (`worker_avail_s`; threaded mode
/// passes `0` because OS threads provide real capacity). The worker is
/// occupied only for the charged compute latency; a communication tail
/// ([`TickOutcome::comm_s`](crate::handle::TickOutcome)) extends the loop's
/// completion — and its deadline check — without burning worker capacity.
fn execute_release(
    slot: &mut Slot,
    release: &Release,
    worker_avail_s: f64,
    ctx: Option<TraceContext>,
) -> Executed {
    let start_s = worker_avail_s
        .max(release.release_s)
        .max(slot.last_completion_s);
    slot.handle.set_tick_start(start_s);
    if let Some(ctx) = ctx {
        slot.handle.set_trace_context(ctx);
    }
    let out = slot.handle.tick_once();
    let latency_s = sane_latency(out.latency_s);
    let comm_s = sane_latency(out.comm_s);
    let busy_end_s = start_s + latency_s;
    let completion_s = busy_end_s + comm_s;
    slot.last_completion_s = completion_s;
    slot.stats.ticks += 1;
    slot.stats.faults += out.faults as u64;
    slot.stats.busy_s += latency_s;
    slot.stats.comm_s += comm_s;
    if out.energy_j.is_finite() && out.energy_j > 0.0 {
        slot.stats.energy_j += out.energy_j;
    }
    let mut missed = false;
    if let Some(budget_s) = slot.spec.latency_budget_s {
        let response_s = completion_s - release.release_s;
        if response_s > budget_s {
            missed = true;
            slot.stats.deadline_misses += 1;
            slot.handle.record_deadline_miss(response_s, budget_s);
        }
    }
    Executed {
        start_s,
        busy_end_s,
        completion_s,
        energy_j: out.energy_j,
        missed,
    }
}

/// The root context of one release's scheduler tick trace. Pure function of
/// `(seed, loop, release)`, so any participant — the loop itself, a test
/// reconstructing the tree — can re-derive it without a handoff.
fn sched_tick_context(seed: u64, loop_idx: usize, release_idx: u64) -> TraceContext {
    let trace_id = trace_mix(seed ^ SCHED_TRACE_SALT, &[loop_idx as u64, release_idx]);
    TraceContext::root(trace_id, &[SpanKind::SchedTick.tag()])
}

/// Record a release's SchedTick span (and its CommTail child when the tick
/// had an off-worker tail). Returns the spans so deterministic mode can also
/// feed its flight recorder.
fn record_tick_spans(
    tracer: &FleetTracer,
    ctx: TraceContext,
    release: &Release,
    exec: &Executed,
) -> (CausalSpan, Option<CausalSpan>) {
    let tick = CausalSpan {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: ctx.parent_id,
        kind: SpanKind::SchedTick,
        node: release.loop_idx as u64,
        detail: release.release_idx,
        start_s: exec.start_s,
        end_s: exec.busy_end_s,
        ok: !exec.missed,
    };
    tracer.record(tick);
    let tail = (exec.completion_s > exec.busy_end_s).then(|| {
        let child = ctx.child(&[SpanKind::CommTail.tag()]);
        let span = CausalSpan {
            trace_id: child.trace_id,
            span_id: child.span_id,
            parent_id: child.parent_id,
            kind: SpanKind::CommTail,
            node: release.loop_idx as u64,
            detail: release.release_idx,
            start_s: exec.busy_end_s,
            end_s: exec.completion_s,
            ok: !exec.missed,
        };
        tracer.record(span);
        span
    });
    (tick, tail)
}

/// Compute the loop's next release after a completion, applying drop-oldest
/// backpressure and the arbiter's stride stretch. `None` retires the loop
/// (next release would fall past the horizon).
fn next_release(
    slot: &mut Slot,
    release: &Release,
    completion_s: f64,
    stretch: f64,
    horizon_s: f64,
    seed: u64,
) -> Option<Release> {
    let period_s = slot.spec.period_s;
    let stride_s = period_s * stretch.max(1.0);
    let throttled = stretch > 1.0;
    // While unthrottled, anchor to the exact `idx · period` grid instead of
    // accumulating strides — repeated addition drifts below the true grid
    // and would sneak an extra release in before the horizon. A throttled
    // loop has no fixed grid, so there we accumulate (monotone via `max`).
    let step = |to_idx: u64| {
        let accumulated = release.release_s + (to_idx - release.release_idx) as f64 * stride_s;
        if throttled {
            accumulated
        } else {
            accumulated.max(to_idx as f64 * period_s)
        }
    };
    let mut release_idx = release.release_idx + 1;
    let mut release_s = step(release_idx);
    if release_s < horizon_s && completion_s >= release_s {
        // Backlog: releases due in (last executed, completion]. Keep the
        // newest `queue_capacity`, drop the oldest beyond it.
        let behind = ((completion_s - release_s) / stride_s).floor() as u64 + 1;
        let cap = slot.spec.queue_capacity as u64;
        if behind > cap {
            // Only releases strictly before the horizon exist to be dropped —
            // a completion far past the horizon must not count phantom
            // releases that were never scheduled.
            let mut dropped = behind - cap;
            let in_horizon = ((horizon_s - release_s) / stride_s).ceil().max(0.0) as u64 + 1;
            dropped = dropped.min(in_horizon);
            while dropped > 0 && step(release_idx + dropped - 1) >= horizon_s {
                dropped -= 1;
            }
            slot.stats.drops += dropped;
            release_idx += dropped;
            release_s = step(release_idx);
        }
    }
    if release_s >= horizon_s {
        return None;
    }
    Some(Release::new(
        slot.spec.deadline_s(release_s),
        tie_break(seed, release.loop_idx, release_idx),
        release.loop_idx,
        release_idx,
        release_s,
    ))
}

/// Health signals for one loop over a stats window `[base, stats]`: miss and
/// drop rates over the window's releases, trust/retransmit fractions from
/// the loop's cumulative telemetry, and completion lag against the fleet
/// frontier in units of the loop's period.
fn window_signals(
    stats: &LoopStats,
    base: &LoopStats,
    telemetry: &LoopTelemetry,
    spec: &LoopSpec,
    frontier_s: f64,
    last_completion_s: f64,
) -> HealthSignals {
    let ticks = stats.ticks - base.ticks;
    let misses = stats.deadline_misses - base.deadline_misses;
    let drops = stats.drops - base.drops;
    let comm = telemetry.comm_counters();
    let staleness = if ticks == 0 {
        0.0
    } else {
        ((frontier_s - last_completion_s) / spec.period_s).max(0.0)
    };
    HealthSignals {
        miss_rate: misses as f64 / ticks.max(1) as f64,
        drop_rate: drops as f64 / (ticks + drops).max(1) as f64,
        trust_drift: telemetry.suspect_fraction(),
        staleness,
        retransmit_rate: comm.retransmits as f64 / comm.msgs_sent.max(1) as f64,
    }
}

fn fnv_fold(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// A fleet of heterogeneous loops multiplexed over a worker pool.
#[derive(Debug)]
pub struct FleetScheduler {
    config: FleetConfig,
    slots: Vec<Mutex<Slot>>,
    /// Indices of retired slots available for reuse by `register`.
    free: Vec<usize>,
    tracer: Arc<FleetTracer>,
    health_policy: HealthPolicy,
}

/// What one externally-driven member tick
/// ([`FleetScheduler::tick_member_at`]) did on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberTickOutcome {
    /// When the tick started: the release time, or later if the member's
    /// previous tick had not yet completed (a loop is sequential).
    pub start_s: f64,
    /// When compute finished (`start + charged latency`).
    pub busy_end_s: f64,
    /// When the tick fully completed (`busy_end + comm tail`) — the
    /// member's new sequential frontier.
    pub completion_s: f64,
    /// Energy the tick charged (joules).
    pub energy_j: f64,
    /// Whether the completion blew the member's latency budget (also
    /// recorded in its stats and fault telemetry).
    pub missed: bool,
}

impl FleetScheduler {
    /// An empty fleet (causal tracing disabled, default health policy).
    pub fn new(config: FleetConfig) -> Self {
        FleetScheduler {
            config,
            slots: Vec::new(),
            free: Vec::new(),
            tracer: Arc::new(FleetTracer::disabled()),
            health_policy: HealthPolicy::default(),
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Attach a shared [`FleetTracer`]: every executed release emits a
    /// `SchedTick` causal span (plus a `CommTail` child for off-worker
    /// tails), and each tick's [`TraceContext`] is handed to the loop via
    /// [`DynLoop::set_trace_context`]
    /// so downstream layers (the federated runtime, the network simulator)
    /// can link their spans into the same causal stream.
    pub fn set_tracer(&mut self, tracer: Arc<FleetTracer>) {
        self.tracer = tracer;
    }

    /// Builder-style [`FleetScheduler::set_tracer`].
    pub fn with_tracer(mut self, tracer: Arc<FleetTracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled unless one was set).
    pub fn tracer(&self) -> &Arc<FleetTracer> {
        &self.tracer
    }

    /// Replace the health policy used for per-loop SLO scoring.
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.health_policy = policy;
    }

    /// Builder-style [`FleetScheduler::set_health_policy`].
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> Self {
        self.health_policy = policy;
        self
    }

    /// The active health policy.
    pub fn health_policy(&self) -> &HealthPolicy {
        &self.health_policy
    }

    /// Register a member loop under a timing spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec's period or latency budget is not positive and
    /// finite — a zero period would release infinitely often at one instant.
    pub fn register(&mut self, handle: LoopHandle, spec: LoopSpec) -> LoopId {
        assert!(
            spec.period_s.is_finite() && spec.period_s > 0.0,
            "loop period must be positive and finite"
        );
        if let Some(b) = spec.latency_budget_s {
            assert!(
                b.is_finite() && b > 0.0,
                "latency budget must be positive and finite"
            );
        }
        let spec = LoopSpec {
            queue_capacity: spec.queue_capacity.max(1),
            ..spec
        };
        let slot = Slot {
            handle,
            spec,
            stats: LoopStats::default(),
            last_completion_s: 0.0,
            retired: false,
            ext_releases: 0,
        };
        // Reuse a retired slot if one exists (membership churn keeps ids
        // dense); otherwise grow the table.
        if let Some(idx) = self.free.pop() {
            *self.slots[idx].get_mut().unwrap_or_else(|e| e.into_inner()) = slot;
            LoopId(idx)
        } else {
            self.slots.push(Mutex::new(slot));
            LoopId(self.slots.len() - 1)
        }
    }

    /// Retire member `id` and return its handle: the slot stops releasing
    /// ticks in run modes, disappears from reports, and becomes available
    /// for reuse by the next [`FleetScheduler::register`]. This is the
    /// membership-churn half of the serving front-end: a lease release or
    /// expiry retires the member without disturbing the rest of the fleet.
    ///
    /// # Panics
    ///
    /// Panics if the member is already retired.
    pub fn retire_member(&mut self, id: LoopId) -> LoopHandle {
        let slot = self.slot_mut(id);
        assert!(!slot.retired, "retire_member: member already retired");
        slot.retired = true;
        let handle = std::mem::replace(
            &mut slot.handle,
            LoopHandle::from_dyn(Box::new(TombstoneLoop {
                telemetry: LoopTelemetry::new(),
            })),
        );
        self.free.push(id.0);
        handle
    }

    /// Number of active (non-retired) member loops.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no active loops are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indices of active (non-retired) slots, registration order.
    fn active_indices(&mut self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| !self.slot_mut(LoopId(i)).retired)
            .collect()
    }

    fn slot_mut(&mut self, id: LoopId) -> &mut Slot {
        self.slots[id.0]
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// A member loop's telemetry (preserved across scheduling).
    pub fn loop_telemetry(&mut self, id: LoopId) -> &LoopTelemetry {
        self.slot_mut(id).handle.telemetry()
    }

    /// A member loop's scheduler-side stats (cumulative).
    pub fn loop_stats(&mut self, id: LoopId) -> LoopStats {
        self.slot_mut(id).stats
    }

    /// A member loop's name.
    pub fn loop_name(&mut self, id: LoopId) -> String {
        self.slot_mut(id).handle.name().to_string()
    }

    /// Serialize member `id` for kill-and-resume or live migration: the
    /// loop's own checkpoint ([`LoopHandle::save_state`] — stages,
    /// telemetry, environment) plus a `sched.slot` section carrying the
    /// scheduler-side accounting (cumulative [`LoopStats`] and the loop's
    /// sequential-completion frontier).
    ///
    /// `Err(Unsupported)` for members not registered through a
    /// checkpointable constructor. Snapshot between runs, not mid-run — the
    /// run methods hold the slots.
    pub fn snapshot_member(&mut self, id: LoopId) -> Result<Checkpoint, CheckpointError> {
        let slot = self.slot_mut(id);
        let mut ckpt = slot.handle.save_state()?;
        let mut s = Section::new("sched.slot");
        s.put_u64("ticks", slot.stats.ticks);
        s.put_u64("drops", slot.stats.drops);
        s.put_u64("deadline_misses", slot.stats.deadline_misses);
        s.put_u64("faults", slot.stats.faults);
        s.put_f64("energy_j", slot.stats.energy_j);
        s.put_f64("busy_s", slot.stats.busy_s);
        s.put_f64("comm_s", slot.stats.comm_s);
        s.put_f64("last_completion_s", slot.last_completion_s);
        s.put_u64("ext_releases", slot.ext_releases);
        ckpt.push(s);
        Ok(ckpt)
    }

    /// Replace member `id` with `handle` restored from a
    /// [`FleetScheduler::snapshot_member`] checkpoint — the adoption half of
    /// a migration. The handle must be constructed identically to the
    /// snapshotted member (same stages, seeds, policies); the member's
    /// timing spec stays as registered. On success the slot's stats and
    /// completion frontier are restored too, so subsequent deterministic
    /// runs are bit-identical to a fleet whose member was never killed. On
    /// error the existing member is left untouched.
    pub fn adopt_member(
        &mut self,
        id: LoopId,
        mut handle: LoopHandle,
        ckpt: &Checkpoint,
    ) -> Result<(), CheckpointError> {
        handle.restore_from(ckpt)?;
        let s = ckpt.section("sched.slot")?;
        let stats = LoopStats {
            ticks: s.get_u64("ticks")?,
            drops: s.get_u64("drops")?,
            deadline_misses: s.get_u64("deadline_misses")?,
            faults: s.get_u64("faults")?,
            energy_j: s.get_f64("energy_j")?,
            busy_s: s.get_f64("busy_s")?,
            comm_s: s.get_f64("comm_s")?,
        };
        let last_completion_s = s.get_f64("last_completion_s")?;
        let ext_releases = s.get_u64("ext_releases")?;
        let slot = self.slot_mut(id);
        slot.handle = handle;
        slot.stats = stats;
        slot.last_completion_s = last_completion_s;
        slot.ext_releases = ext_releases;
        slot.retired = false;
        Ok(())
    }

    /// Execute one externally-driven tick of member `id`, released at
    /// `release_s` on the virtual timeline — the serving front-end's entry
    /// point, where a tick is released by an *observation arriving* rather
    /// than by a periodic schedule. Runs through the same accounting as a
    /// scheduled release: the tick starts no earlier than the member's
    /// previous completion (a loop is sequential), stats and deadline
    /// misses accrue to the same [`LoopStats`], and — when tracing is
    /// enabled — a `SchedTick` causal span is recorded under the same
    /// deterministic trace-id scheme as the run modes.
    ///
    /// # Panics
    ///
    /// Panics if the member is retired.
    pub fn tick_member_at(&mut self, id: LoopId, release_s: f64) -> MemberTickOutcome {
        let seed = self.config.seed;
        let tracer = Arc::clone(&self.tracer);
        let traced = tracer.is_enabled();
        let slot = self.slot_mut(id);
        assert!(!slot.retired, "tick_member_at: member is retired");
        let release_idx = slot.ext_releases;
        slot.ext_releases += 1;
        let release = Release::new(
            slot.spec.deadline_s(release_s),
            tie_break(seed, id.0, release_idx),
            id.0,
            release_idx,
            release_s,
        );
        let ctx = traced.then(|| sched_tick_context(seed, id.0, release_idx));
        let exec = execute_release(slot, &release, 0.0, ctx);
        if let Some(ctx) = ctx {
            record_tick_spans(&tracer, ctx, &release, &exec);
        }
        MemberTickOutcome {
            start_s: exec.start_s,
            busy_end_s: exec.busy_end_s,
            completion_s: exec.completion_s,
            energy_j: exec.energy_j,
            missed: exec.missed,
        }
    }

    /// Charge `n` dropped releases to member `id` — the accounting hook for
    /// an ingress layer shedding observations *before* they release ticks
    /// (the same drop-oldest backpressure the run modes apply, moved to the
    /// admission edge).
    pub fn record_member_drops(&mut self, id: LoopId, n: u64) {
        self.slot_mut(id).stats.drops += n;
    }

    /// A member loop's timing spec (as registered).
    pub fn member_spec(&mut self, id: LoopId) -> LoopSpec {
        self.slot_mut(id).spec
    }

    /// A member loop's sequential-completion frontier (virtual seconds):
    /// when its latest tick fully completed. The admission-control input —
    /// pending work can start no earlier than this.
    pub fn member_frontier_s(&mut self, id: LoopId) -> f64 {
        self.slot_mut(id).last_completion_s
    }

    fn initial_release(&mut self, idx: usize) -> Release {
        let seed = self.config.seed;
        let slot = self.slot_mut(LoopId(idx));
        // Virtual time restarts at zero for every run.
        slot.last_completion_s = 0.0;
        Release::new(
            slot.spec.deadline_s(0.0),
            tie_break(seed, idx, 0),
            idx,
            0,
            0.0,
        )
    }

    /// Fleet-wide (ticks, drops, deadline misses) so far — slot stats are
    /// cumulative, so per-run report counters subtract a pre-run snapshot.
    fn totals(&mut self) -> (u64, u64, u64) {
        (0..self.slots.len()).fold((0, 0, 0), |acc, i| {
            let s = self.slot_mut(LoopId(i)).stats;
            (acc.0 + s.ticks, acc.1 + s.drops, acc.2 + s.deadline_misses)
        })
    }

    /// Per-loop stats snapshot, registration order.
    fn stats_snapshot(&mut self) -> Vec<LoopStats> {
        (0..self.slots.len())
            .map(|i| self.slot_mut(LoopId(i)).stats)
            .collect()
    }

    /// End-of-run health: classify every loop's whole-run signals
    /// (hysteresis-free — one window covers the run) and roll them up.
    fn classify_health(
        &mut self,
        base: &[LoopStats],
        makespan_s: f64,
    ) -> (Vec<HealthStatus>, FleetHealth) {
        let policy = self.health_policy;
        let statuses: Vec<HealthStatus> = self
            .active_indices()
            .into_iter()
            .map(|i| {
                let slot = self.slot_mut(LoopId(i));
                let signals = window_signals(
                    &slot.stats,
                    &base[i],
                    slot.handle.telemetry(),
                    &slot.spec,
                    makespan_s,
                    slot.last_completion_s,
                );
                policy.classify(&signals)
            })
            .collect();
        let fleet = FleetHealth::roll_up(statuses.iter().copied(), &policy);
        (statuses, fleet)
    }

    /// Roll every member loop's telemetry up into one fleet-level registry:
    /// each loop exports into a scratch registry which is merged in —
    /// counters add, gauges sum, histograms merge bucket-wise in
    /// O(buckets) — so the result equals a single registry that had
    /// observed every loop directly.
    pub fn rollup_metrics(&mut self) -> MetricsRegistry {
        let mut fleet = MetricsRegistry::new();
        for i in self.active_indices() {
            let mut per_loop = MetricsRegistry::new();
            self.slot_mut(LoopId(i))
                .handle
                .telemetry()
                .export_into(&mut per_loop);
            fleet.merge(&per_loop);
        }
        fleet
    }

    fn summaries(&mut self) -> Vec<LoopSummary> {
        self.active_indices()
            .into_iter()
            .map(|i| {
                let slot = self.slot_mut(LoopId(i));
                LoopSummary {
                    name: slot.handle.name().to_string(),
                    stats: slot.stats,
                }
            })
            .collect()
    }

    fn empty_report(&mut self, horizon_s: f64, workers: usize) -> FleetReport {
        let base = self.stats_snapshot();
        let (loop_health, health) = self.classify_health(&base, 0.0);
        FleetReport {
            horizon_s,
            workers,
            ticks: 0,
            drops: 0,
            deadline_misses: 0,
            steals: 0,
            throttle_events: 0,
            makespan_s: 0.0,
            energy_j: 0.0,
            wall_s: 0.0,
            worker_busy_s: vec![0.0; workers],
            queue_depth: Histogram::new(),
            trace_hash: FNV_OFFSET,
            loops: self.summaries(),
            loop_health,
            health,
            incidents: Vec::new(),
        }
    }

    /// Run the fleet to the virtual horizon on OS worker threads pulling
    /// from the sharded work-stealing EDF queue.
    ///
    /// Per-loop telemetry and stats are exact, and — absent a watts cap —
    /// each loop's tick/drop/miss schedule is interleaving-independent
    /// (a loop's virtual timeline depends only on its own history). Steal
    /// counts, wall time, and utilization do depend on OS scheduling — use
    /// [`FleetScheduler::run_deterministic`] for fully reproducible runs.
    pub fn run(&mut self, horizon_s: f64) -> FleetReport {
        let workers = self.config.workers.max(1);
        let runnable = horizon_s.is_finite() && horizon_s > 0.0;
        if self.is_empty() || !runnable {
            return self.empty_report(horizon_s, workers);
        }
        let wall_start = std::time::Instant::now();
        let base = self.stats_snapshot();
        let (base_ticks, base_drops, base_misses) = self.totals();
        let active = self.active_indices();
        let queue = ShardedQueue::new(workers);
        for &i in &active {
            let r = self.initial_release(i);
            queue.push(r);
        }
        let outstanding = AtomicUsize::new(active.len());
        let arbiter = Mutex::new(EnergyArbiter::new(self.config.watts_cap));
        let seed = self.config.seed;
        let traced = self.tracer.is_enabled();
        let slots = &self.slots;
        let queue_ref = &queue;
        let outstanding_ref = &outstanding;
        let arbiter_ref = &arbiter;
        let tracer_ref = &self.tracer;

        // (virtual clock, busy, depth histogram) per worker.
        let worker_results: Vec<(f64, f64, Histogram)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wid| {
                    scope.spawn(move || {
                        let mut frontier_s = 0.0f64;
                        let mut busy_s = 0.0f64;
                        let mut depth = Histogram::new();
                        loop {
                            if outstanding_ref.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            let Some(release) = queue_ref.pop(wid) else {
                                // Releases in flight on other workers will
                                // repopulate the queue (or retire).
                                std::thread::yield_now();
                                continue;
                            };
                            depth.record(queue_ref.depth() as f64);
                            let mut slot = slots[release.loop_idx]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner());
                            // Virtual capacity is not modeled here — the OS
                            // threads are the capacity — so each loop's
                            // timeline depends only on its own history and
                            // drop/miss accounting is interleaving-
                            // independent (given no watts cap).
                            let ctx = traced.then(|| {
                                sched_tick_context(seed, release.loop_idx, release.release_idx)
                            });
                            let exec = execute_release(&mut slot, &release, 0.0, ctx);
                            if let Some(ctx) = ctx {
                                record_tick_spans(tracer_ref, ctx, &release, &exec);
                            }
                            busy_s += exec.busy_end_s - exec.start_s;
                            frontier_s = frontier_s.max(exec.completion_s);
                            let (stretch, hint) = {
                                let mut arb = arbiter_ref.lock().unwrap_or_else(|e| e.into_inner());
                                let stretch = arb.on_completion(exec.energy_j, exec.completion_s);
                                (stretch, arb.recommended_precision())
                            };
                            slot.handle.set_precision_hint(hint);
                            match next_release(
                                &mut slot,
                                &release,
                                exec.completion_s,
                                stretch,
                                horizon_s,
                                seed,
                            ) {
                                Some(next) => {
                                    drop(slot);
                                    queue_ref.push(next);
                                }
                                None => {
                                    drop(slot);
                                    outstanding_ref.fetch_sub(1, Ordering::AcqRel);
                                }
                            }
                        }
                        (frontier_s, busy_s, depth)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        });

        let arbiter = arbiter.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut queue_depth = Histogram::new();
        let mut worker_busy_s = Vec::with_capacity(workers);
        let mut makespan_s = 0.0f64;
        for (frontier_s, busy_s, depth) in &worker_results {
            makespan_s = makespan_s.max(*frontier_s);
            worker_busy_s.push(*busy_s);
            queue_depth.merge(depth);
        }
        let (ticks, drops, misses) = self.totals();
        let loops = self.summaries();
        let (loop_health, health) = self.classify_health(&base, makespan_s);
        FleetReport {
            horizon_s,
            workers,
            ticks: ticks - base_ticks,
            drops: drops - base_drops,
            deadline_misses: misses - base_misses,
            steals: queue.steals(),
            throttle_events: arbiter.throttle_events(),
            makespan_s,
            energy_j: arbiter.energy_j(),
            wall_s: wall_start.elapsed().as_secs_f64(),
            worker_busy_s,
            queue_depth,
            trace_hash: 0,
            loops,
            loop_health,
            health,
            // Flight recording needs a deterministic span order per worker —
            // threaded mode leaves it to `run_deterministic`.
            incidents: Vec::new(),
        }
    }

    /// Run the fleet to the virtual horizon as a single-threaded,
    /// event-driven simulation of the same `workers` virtual workers, kept
    /// in lockstep with the caller's [`SimClock`] (advanced to each
    /// completion's virtual time).
    ///
    /// The run is a pure function of the fleet and the configured seed:
    /// identical seeds give identical per-loop tick counts, bit-identical
    /// telemetry, and an identical [`FleetReport::trace_hash`]; a different
    /// seed reorders equal-deadline releases and is observable through the
    /// hash.
    pub fn run_deterministic(&mut self, horizon_s: f64, clock: &mut SimClock) -> FleetReport {
        let workers = self.config.workers.max(1);
        let runnable = horizon_s.is_finite() && horizon_s > 0.0;
        if self.is_empty() || !runnable {
            return self.empty_report(horizon_s, workers);
        }
        let wall_start = std::time::Instant::now();
        let base = self.stats_snapshot();
        let (base_ticks, base_drops, base_misses) = self.totals();
        let seed = self.config.seed;
        let tracer = Arc::clone(&self.tracer);
        let traced = tracer.is_enabled();
        let policy = self.health_policy;
        let mut heap: BinaryHeap<Reverse<Release>> = BinaryHeap::new();
        for i in self.active_indices() {
            let r = self.initial_release(i);
            heap.push(Reverse(r));
        }
        let mut worker_clock_s = vec![0.0f64; workers];
        let mut worker_busy_s = vec![0.0f64; workers];
        let mut arbiter = EnergyArbiter::new(self.config.watts_cap);
        let mut queue_depth = Histogram::new();
        let mut trace_hash = FNV_OFFSET;
        // Fleet makespan frontier: the latest *full* completion, including
        // off-worker comm tails that finish after their worker was freed.
        let mut frontier_s = 0.0f64;
        // Per-worker flight recorders + miss-storm windows, and per-loop
        // health scorers evaluated on fixed completion windows.
        let mut recorder: Vec<VecDeque<CausalSpan>> = vec![VecDeque::new(); workers];
        let mut miss_window: Vec<VecDeque<bool>> = vec![VecDeque::new(); workers];
        let mut incidents: Vec<Incident> = Vec::new();
        let mut scorers: Vec<HealthScorer> = (0..self.slots.len())
            .map(|_| HealthScorer::new(policy))
            .collect();
        let mut window_base: Vec<LoopStats> = base.clone();
        let mut health_evals: Vec<u64> = vec![0; self.slots.len()];

        while let Some(Reverse(release)) = heap.pop() {
            queue_depth.record(heap.len() as f64);
            // Earliest-available worker takes the earliest deadline; ties on
            // the clock break by worker index. Deterministic by construction.
            let mut wid = 0usize;
            for w in 1..workers {
                if worker_clock_s[w] < worker_clock_s[wid] {
                    wid = w;
                }
            }
            let slot = self.slots[release.loop_idx]
                .get_mut()
                .unwrap_or_else(|e| e.into_inner());
            let ctx =
                traced.then(|| sched_tick_context(seed, release.loop_idx, release.release_idx));
            let exec = execute_release(slot, &release, worker_clock_s[wid], ctx);
            // The worker is free once compute ends; a comm tail keeps the
            // *loop* busy (sequential + deadline) but not the worker.
            worker_busy_s[wid] += exec.busy_end_s - exec.start_s;
            worker_clock_s[wid] = exec.busy_end_s;
            frontier_s = frontier_s.max(exec.completion_s);
            // Clock plumbing: keep the caller's SimClock at the fleet's
            // virtual frontier (advance clamps regressions to zero).
            clock.advance(exec.completion_s - clock.peek_s());
            let stretch = arbiter.on_completion(exec.energy_j, exec.completion_s);
            slot.handle
                .set_precision_hint(arbiter.recommended_precision());
            trace_hash = fnv_fold(trace_hash, release.loop_idx as u64);
            trace_hash = fnv_fold(trace_hash, release.release_idx);
            trace_hash = fnv_fold(trace_hash, wid as u64);
            trace_hash = fnv_fold(trace_hash, exec.completion_s.to_bits());
            if let Some(ctx) = ctx {
                let (tick_span, tail_span) = record_tick_spans(&tracer, ctx, &release, &exec);
                let ring = &mut recorder[wid];
                for span in std::iter::once(tick_span).chain(tail_span) {
                    if ring.len() == FLIGHT_RECORDER_CAPACITY {
                        ring.pop_front();
                    }
                    ring.push_back(span);
                }
                // Miss-storm invariant: mostly-missing completions inside
                // one worker's recent window freeze that worker's recorder.
                let misses = &mut miss_window[wid];
                if misses.len() == MISS_STORM_WINDOW {
                    misses.pop_front();
                }
                misses.push_back(exec.missed);
                if misses.len() == MISS_STORM_WINDOW
                    && misses.iter().filter(|&&m| m).count() >= MISS_STORM_THRESHOLD
                    && incidents.len() < MAX_INCIDENTS
                {
                    incidents.push(Incident {
                        worker: wid,
                        loop_idx: release.loop_idx,
                        at_s: exec.completion_s,
                        reason: IncidentReason::MissStorm,
                        spans: ring.iter().copied().collect(),
                    });
                    misses.clear();
                }
            }
            // Health window: every HEALTH_WINDOW_TICKS completions of a loop,
            // feed its windowed signals through the hysteresis scorer.
            let li = release.loop_idx;
            if slot.stats.ticks - window_base[li].ticks >= HEALTH_WINDOW_TICKS {
                let signals = window_signals(
                    &slot.stats,
                    &window_base[li],
                    slot.handle.telemetry(),
                    &slot.spec,
                    frontier_s,
                    slot.last_completion_s,
                );
                window_base[li] = slot.stats;
                health_evals[li] += 1;
                if let Some((from, to)) = scorers[li].observe(&signals) {
                    if traced {
                        let trace_id = trace_mix(seed ^ HEALTH_TRACE_SALT, &[li as u64]);
                        let hctx = TraceContext::root(
                            trace_id,
                            &[SpanKind::Health.tag(), health_evals[li]],
                        );
                        let span = CausalSpan {
                            trace_id: hctx.trace_id,
                            span_id: hctx.span_id,
                            parent_id: hctx.parent_id,
                            kind: SpanKind::Health,
                            node: li as u64,
                            detail: encode_transition(from, to),
                            start_s: exec.completion_s,
                            end_s: exec.completion_s,
                            ok: to == HealthStatus::Healthy,
                        };
                        tracer.record(span);
                        if to == HealthStatus::Critical && incidents.len() < MAX_INCIDENTS {
                            let mut spans: Vec<CausalSpan> =
                                recorder[wid].iter().copied().collect();
                            spans.push(span);
                            incidents.push(Incident {
                                worker: wid,
                                loop_idx: li,
                                at_s: exec.completion_s,
                                reason: IncidentReason::HealthCollapse,
                                spans,
                            });
                        }
                    }
                }
            }
            if let Some(next) =
                next_release(slot, &release, exec.completion_s, stretch, horizon_s, seed)
            {
                heap.push(Reverse(next));
            }
        }

        let makespan_s = worker_clock_s.iter().fold(frontier_s, |a, &b| a.max(b));
        let (ticks, drops, misses) = self.totals();
        let loops = self.summaries();
        let (loop_health, health) = self.classify_health(&base, makespan_s);
        FleetReport {
            horizon_s,
            workers,
            ticks: ticks - base_ticks,
            drops: drops - base_drops,
            deadline_misses: misses - base_misses,
            steals: 0,
            throttle_events: arbiter.throttle_events(),
            makespan_s,
            energy_j: arbiter.energy_j(),
            wall_s: wall_start.elapsed().as_secs_f64(),
            worker_busy_s,
            queue_depth,
            trace_hash,
            loops,
            loop_health,
            health,
            incidents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::LoopHandle;
    use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext};
    use sensact_core::LoopBuilder;

    /// A scalar loop charging `latency_s`/`energy_j` per tick.
    fn handle(name: &str, energy_j: f64, latency_s: f64) -> LoopHandle {
        let looop = LoopBuilder::new(name).build(
            FnSensor::new(move |e: &f64, ctx: &mut StageContext| {
                ctx.charge(energy_j, latency_s);
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.2 * f),
        );
        LoopHandle::closed(looop, 1.0f64, |e, a| *e += a)
    }

    fn fleet(n: usize, workers: usize, seed: u64) -> FleetScheduler {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers,
            watts_cap: None,
            seed,
        });
        for i in 0..n {
            sched.register(
                handle(&format!("loop-{i}"), 1e-6, 1e-4),
                LoopSpec::periodic(1e-2),
            );
        }
        sched
    }

    #[test]
    fn deterministic_run_executes_every_release() {
        let mut sched = fleet(3, 2, 42);
        let report = sched.run_deterministic(0.1, &mut SimClock::new());
        // 10 releases per loop in [0, 0.1): k·0.01 for k = 0..9.
        assert_eq!(report.ticks, 30);
        assert_eq!(report.drops, 0);
        assert_eq!(report.deadline_misses, 0);
        for i in 0..3 {
            assert_eq!(sched.loop_stats(LoopId(i)).ticks, 10);
            assert_eq!(sched.loop_telemetry(LoopId(i)).ticks(), 10);
        }
        assert!(report.makespan_s > 0.0 && report.makespan_s < 0.1);
        assert!(report.throughput_ticks_per_vs() > 0.0);
    }

    #[test]
    fn threaded_run_matches_release_schedule() {
        let mut sched = fleet(8, 4, 7);
        let report = sched.run(0.1);
        // No backlog (latency ≪ period), so nothing can be dropped and every
        // loop executes its full schedule regardless of interleaving.
        assert_eq!(report.ticks, 80);
        assert_eq!(report.drops, 0);
        for i in 0..8 {
            assert_eq!(sched.loop_telemetry(LoopId(i)).ticks(), 10);
        }
        assert!(report.wall_s > 0.0);
    }

    #[test]
    fn simclock_tracks_virtual_frontier() {
        let mut sched = fleet(2, 1, 0);
        let mut clock = SimClock::new();
        let report = sched.run_deterministic(0.05, &mut clock);
        assert_eq!(clock.peek_s(), report.makespan_s);
        assert!(clock.peek_s() > 0.0);
    }

    #[test]
    fn overrunning_tick_surfaces_timeout_and_misses() {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 0,
        });
        // 5 ms charged latency against a 1 ms budget: every tick misses.
        let id = sched.register(
            handle("laggard", 1e-6, 5e-3),
            LoopSpec::periodic(1e-2).with_budget(1e-3),
        );
        let report = sched.run_deterministic(0.1, &mut SimClock::new());
        assert_eq!(report.ticks, 10);
        assert_eq!(report.deadline_misses, 10);
        let counters = sched.loop_telemetry(id).fault_counters();
        assert_eq!(
            counters.timeouts, 10,
            "missed deadlines must surface as Timeout faults"
        );
        let text = report.text_report();
        assert!(text.contains("deadline-misses 10"), "{text}");
    }

    #[test]
    fn backlogged_loop_drops_oldest_and_stays_bounded() {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 0,
        });
        // 5 ms per tick released every 1 ms: the loop falls 4 releases
        // behind per executed tick; capacity 2 forces steady drops.
        let id = sched.register(
            handle("swamped", 1e-6, 5e-3),
            LoopSpec::periodic(1e-3).with_queue_capacity(2),
        );
        let report = sched.run_deterministic(0.1, &mut SimClock::new());
        let stats = sched.loop_stats(id);
        assert!(stats.drops > 0, "backpressure must drop releases");
        assert_eq!(report.drops, stats.drops);
        // Conservation: executed + dropped never exceeds the release
        // schedule (100 releases in [0, 0.1) at 1 ms).
        assert!(stats.ticks + stats.drops <= 100);
        // Drop-oldest keeps the loop fresh: it still ticks regularly.
        assert!(stats.ticks >= 100 / 5 / 2, "ticks {}", stats.ticks);
        assert!(
            report.text_report().contains("drops"),
            "report must show drops"
        );
    }

    #[test]
    fn energy_arbiter_throttles_over_cap_fleet() {
        let run = |watts_cap: Option<f64>| {
            let mut sched = FleetScheduler::new(FleetConfig {
                workers: 1,
                watts_cap,
                seed: 0,
            });
            // 1 J per 1 ms tick ⇒ 1000 W average; cap at 1 W.
            let id = sched.register(handle("hot", 1.0, 1e-3), LoopSpec::periodic(1e-3));
            let report = sched.run_deterministic(0.2, &mut SimClock::new());
            (report, sched.loop_stats(id))
        };
        let (free, free_stats) = run(None);
        let (capped, capped_stats) = run(Some(1.0));
        assert_eq!(free.throttle_events, 0);
        assert!(capped.throttle_events > 0, "cap must throttle");
        assert!(
            capped_stats.ticks < free_stats.ticks / 4,
            "throttled {} vs free {}",
            capped_stats.ticks,
            free_stats.ticks
        );
    }

    #[test]
    fn report_exports_into_registry() {
        let mut sched = fleet(4, 2, 3);
        let report = sched.run_deterministic(0.1, &mut SimClock::new());
        let mut registry = MetricsRegistry::new();
        report.export_into(&mut registry);
        assert_eq!(registry.counter("sched.ticks_total"), report.ticks);
        assert_eq!(registry.counter("sched.drops_total"), 0);
        assert_eq!(registry.counter("sched.deadline_miss_total"), 0);
        assert!(registry.gauge("sched.fleet_watts").is_some());
        assert!(registry.histogram("sched.queue.depth").is_some());
        let util = registry.histogram("sched.worker.utilization_frac").unwrap();
        assert_eq!(util.count(), 2);
        // The registry's Display is the textual metrics surface.
        let text = registry.to_string();
        assert!(text.contains("sched.deadline_miss_total"), "{text}");
        assert!(text.contains("sched.drops_total"), "{text}");
    }

    /// Satellite: scheduler determinism. Same seed ⇒ identical per-loop tick
    /// counts and bit-identical telemetry totals; different seed ⇒ an
    /// observably different interleaving.
    #[test]
    fn same_seed_reproduces_bit_exactly_different_seed_interleaves_differently() {
        let run = |seed: u64| {
            let mut sched = fleet(6, 3, seed);
            let report = sched.run_deterministic(1.0, &mut SimClock::new());
            let telem: Vec<(u64, u64, u64)> = (0..6)
                .map(|i| {
                    let t = sched.loop_telemetry(LoopId(i));
                    (
                        t.ticks(),
                        t.total_energy_j().to_bits(),
                        t.total_latency_s().to_bits(),
                    )
                })
                .collect();
            let ticks: Vec<u64> = (0..6).map(|i| sched.loop_stats(LoopId(i)).ticks).collect();
            (report.trace_hash, ticks, telem)
        };
        let (hash_a, ticks_a, telem_a) = run(42);
        let (hash_b, ticks_b, telem_b) = run(42);
        assert_eq!(hash_a, hash_b, "same seed must replay the same trace");
        assert_eq!(ticks_a, ticks_b);
        assert_eq!(telem_a, telem_b, "telemetry must be bit-identical");
        let (hash_c, ticks_c, _) = run(43);
        assert_ne!(
            hash_a, hash_c,
            "a different seed must reorder equal-deadline releases"
        );
        // The schedule itself is unchanged — only the interleaving moved.
        assert_eq!(ticks_a, ticks_c);
    }

    #[test]
    fn empty_fleet_and_zero_horizon_are_benign() {
        let mut sched = FleetScheduler::new(FleetConfig::default());
        assert!(sched.is_empty());
        let r = sched.run(1.0);
        assert_eq!(r.ticks, 0);
        let mut sched = fleet(2, 2, 0);
        let r = sched.run_deterministic(0.0, &mut SimClock::new());
        assert_eq!(r.ticks, 0);
        assert_eq!(sched.len(), 2);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        let mut sched = FleetScheduler::new(FleetConfig::default());
        let _ = sched.register(handle("bad", 1e-6, 1e-4), LoopSpec::periodic(0.0));
    }

    /// A bare [`DynLoop`] charging fixed compute latency plus an off-worker
    /// communication tail, recording each tick's virtual start time.
    struct CommLoop {
        telemetry: sensact_core::LoopTelemetry,
        latency_s: f64,
        comm_s: f64,
        starts: std::sync::Arc<Mutex<Vec<f64>>>,
        ctxs: std::sync::Arc<Mutex<Vec<TraceContext>>>,
    }

    impl CommLoop {
        fn boxed(latency_s: f64, comm_s: f64) -> LoopHandle {
            Self::observed(latency_s, comm_s).0
        }

        fn observed(latency_s: f64, comm_s: f64) -> (LoopHandle, std::sync::Arc<Mutex<Vec<f64>>>) {
            let (handle, starts, _) = Self::instrumented(latency_s, comm_s);
            (handle, starts)
        }

        #[allow(clippy::type_complexity)]
        fn instrumented(
            latency_s: f64,
            comm_s: f64,
        ) -> (
            LoopHandle,
            std::sync::Arc<Mutex<Vec<f64>>>,
            std::sync::Arc<Mutex<Vec<TraceContext>>>,
        ) {
            let starts = std::sync::Arc::new(Mutex::new(Vec::new()));
            let ctxs = std::sync::Arc::new(Mutex::new(Vec::new()));
            let handle = LoopHandle::from_dyn(Box::new(CommLoop {
                telemetry: sensact_core::LoopTelemetry::new(),
                latency_s,
                comm_s,
                starts: starts.clone(),
                ctxs: ctxs.clone(),
            }));
            (handle, starts, ctxs)
        }
    }

    impl crate::handle::DynLoop for CommLoop {
        fn name(&self) -> &str {
            "comm"
        }
        fn set_tick_start(&mut self, start_s: f64) {
            self.starts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(start_s);
        }
        fn set_trace_context(&mut self, ctx: TraceContext) {
            self.ctxs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ctx);
        }
        fn tick_once(&mut self) -> crate::handle::TickOutcome {
            self.telemetry
                .record(1e-6, self.latency_s, sensact_core::Trust::Trusted);
            crate::handle::TickOutcome {
                energy_j: 1e-6,
                latency_s: self.latency_s,
                comm_s: self.comm_s,
                faults: 0,
            }
        }
        fn telemetry(&self) -> &sensact_core::LoopTelemetry {
            &self.telemetry
        }
        fn record_deadline_miss(&mut self, latency_s: f64, budget_s: f64) {
            self.telemetry
                .record_fault(&sensact_core::StageError::Timeout {
                    latency_s,
                    budget_s,
                });
        }
    }

    /// Satellite: a comm tail frees the worker (tails of different loops
    /// overlap on one worker; worker busy time excludes them) but extends
    /// the loop's completion, so makespan and deadline checks see it.
    #[test]
    fn comm_tails_overlap_across_loops_but_count_toward_deadlines() {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 0,
        });
        // 4 loops, one release each (period = horizon): 1 ms of compute
        // followed by a 0.5 s upload, against a 0.1 s budget.
        let ids: Vec<LoopId> = (0..4)
            .map(|_| {
                sched.register(
                    CommLoop::boxed(1e-3, 0.5),
                    LoopSpec::periodic(1.0).with_budget(0.1),
                )
            })
            .collect();
        let report = sched.run_deterministic(1.0, &mut SimClock::new());
        assert_eq!(report.ticks, 4);
        // The single worker only holds each tick for its compute time, so
        // the four uploads are in flight concurrently: makespan is one tail
        // past the last compute slot, nowhere near the serialized 4 × 0.501.
        assert!((report.worker_busy_s[0] - 4e-3).abs() < 1e-12);
        assert!(
            (report.makespan_s - (4e-3 + 0.5)).abs() < 1e-9,
            "{}",
            report.makespan_s
        );
        // But each loop's completion includes its tail: every tick blows the
        // 0.1 s budget and surfaces as a Timeout fault.
        assert_eq!(report.deadline_misses, 4);
        for id in &ids {
            let stats = sched.loop_stats(*id);
            assert!((stats.comm_s - 0.5).abs() < 1e-12);
            assert!((stats.busy_s - 1e-3).abs() < 1e-12);
            assert_eq!(sched.loop_telemetry(*id).fault_counters().timeouts, 1);
        }
    }

    /// Tentpole: tracing. SchedTick spans cover every executed release,
    /// CommTail spans parent under their tick, and two identically-seeded
    /// runs export a bit-identical trace stream.
    #[test]
    fn tracer_records_causally_linked_tick_and_tail_spans() {
        use sensact_core::export::trace_stream_hash;
        let run = || {
            let mut sched = FleetScheduler::new(FleetConfig {
                workers: 2,
                watts_cap: None,
                seed: 9,
            })
            .with_tracer(Arc::new(FleetTracer::new()));
            for _ in 0..2 {
                sched.register(CommLoop::boxed(1e-3, 2e-3), LoopSpec::periodic(1e-2));
            }
            let report = sched.run_deterministic(0.05, &mut SimClock::new());
            let spans = sched.tracer().spans();
            (report, spans)
        };
        let (report, spans) = run();
        let ticks: Vec<&CausalSpan> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::SchedTick)
            .collect();
        let tails: Vec<&CausalSpan> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::CommTail)
            .collect();
        assert_eq!(ticks.len() as u64, report.ticks);
        assert_eq!(tails.len() as u64, report.ticks, "every tick had a tail");
        for tail in &tails {
            let parent = ticks
                .iter()
                .find(|t| t.span_id == tail.parent_id && t.trace_id == tail.trace_id)
                .expect("comm tail must parent under its tick span");
            assert_eq!(parent.node, tail.node);
            assert!((tail.start_s - parent.end_s).abs() < 1e-12);
        }
        // Context is re-derivable without a handoff: the span ids match the
        // pure function of (seed, loop, release).
        for t in &ticks {
            let ctx = sched_tick_context(9, t.node as usize, t.detail);
            assert_eq!(t.span_id, ctx.span_id);
        }
        let (_, spans_b) = run();
        assert_eq!(
            trace_stream_hash(&spans),
            trace_stream_hash(&spans_b),
            "same seed must export a bit-identical trace stream"
        );
    }

    /// The scheduler hands each loop its tick's [`TraceContext`] before
    /// `tick_once` when tracing is on — and never when it is off — so loops
    /// can parent their own downstream spans (network sends, stage work)
    /// under the scheduler's tick span.
    #[test]
    fn loops_receive_their_tick_trace_context() {
        let seed = 5;
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 2,
            watts_cap: None,
            seed,
        })
        .with_tracer(Arc::new(FleetTracer::new()));
        let (handle, _, ctxs) = CommLoop::instrumented(1e-3, 0.0);
        let id = sched.register(handle, LoopSpec::periodic(1e-2));
        let report = sched.run_deterministic(0.05, &mut SimClock::new());
        let got = ctxs.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(got.len() as u64, report.ticks, "one context per tick");
        for (release_idx, ctx) in got.iter().enumerate() {
            assert_eq!(
                *ctx,
                sched_tick_context(seed, id.0, release_idx as u64),
                "context must re-derive from (seed, loop, release)"
            );
        }

        // Untraced: the default no-op hook is never fed a context.
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 2,
            watts_cap: None,
            seed,
        });
        let (handle, _, ctxs) = CommLoop::instrumented(1e-3, 0.0);
        sched.register(handle, LoopSpec::periodic(1e-2));
        let _ = sched.run_deterministic(0.05, &mut SimClock::new());
        assert!(ctxs.lock().unwrap_or_else(|e| e.into_inner()).is_empty());
    }

    /// A disabled tracer records nothing and the report is still complete.
    #[test]
    fn disabled_tracer_records_nothing() {
        let mut sched = fleet(3, 2, 1);
        let report = sched.run_deterministic(0.05, &mut SimClock::new());
        assert!(sched.tracer().is_empty());
        assert!(!sched.tracer().is_enabled());
        assert_eq!(report.incidents.len(), 0);
        assert_eq!(report.loop_health.len(), 3);
    }

    /// Satellite: the report export is idempotent — exporting the same
    /// report twice into one registry must not double any sample.
    #[test]
    fn report_export_is_idempotent() {
        let mut sched = fleet(4, 2, 3);
        let report = sched.run_deterministic(0.1, &mut SimClock::new());
        let mut registry = MetricsRegistry::new();
        report.export_into(&mut registry);
        report.export_into(&mut registry);
        assert_eq!(registry.counter("sched.ticks_total"), report.ticks);
        assert_eq!(
            registry.counter("sched.health.healthy"),
            report.health.healthy as u64
        );
        let util = registry.histogram("sched.worker.utilization_frac").unwrap();
        assert_eq!(util.count(), 2, "one sample per worker, not per export");
    }

    /// Health scoring: a fleet whose every tick misses its deadline ends the
    /// run critical (miss_rate 1.0), and the roll-up reflects it; a clean
    /// fleet stays healthy.
    #[test]
    fn health_classifies_missing_and_clean_fleets() {
        let mut sick = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 0,
        });
        sick.register(
            handle("laggard", 1e-6, 5e-3),
            LoopSpec::periodic(1e-2).with_budget(1e-3),
        );
        let report = sick.run_deterministic(0.1, &mut SimClock::new());
        assert_eq!(report.loop_health, vec![HealthStatus::Critical]);
        assert_eq!(report.health.status, HealthStatus::Critical);
        assert_eq!(report.health.critical, 1);
        let text = report.text_report();
        assert!(text.contains("health critical"), "{text}");
        assert!(text.contains("laggard"), "{text}");

        let mut clean = fleet(4, 2, 0);
        let report = clean.run_deterministic(0.1, &mut SimClock::new());
        assert_eq!(report.health.status, HealthStatus::Healthy);
        assert_eq!(report.health.healthy, 4);
        assert_eq!(report.loop_health, vec![HealthStatus::Healthy; 4]);
    }

    /// Tentpole: the flight recorder. A sustained miss storm trips the
    /// per-worker invariant and dumps the recorder's recent spans into the
    /// report; the hysteresis scorer's collapse emits a Health span.
    #[test]
    fn miss_storm_trips_flight_recorder_and_health_span() {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 0,
        })
        .with_tracer(Arc::new(FleetTracer::new()));
        // Every tick misses: 5 ms latency against a 1 ms budget, long enough
        // for several health windows (HEALTH_WINDOW_TICKS completions each).
        sched.register(
            handle("stormy", 1e-6, 5e-3),
            LoopSpec::periodic(1e-2).with_budget(1e-3),
        );
        let report = sched.run_deterministic(5.0, &mut SimClock::new());
        assert!(report.ticks >= 3 * HEALTH_WINDOW_TICKS);
        let storm = report
            .incidents
            .iter()
            .find(|i| i.reason == IncidentReason::MissStorm)
            .expect("a permanent miss storm must trip the recorder");
        assert_eq!(storm.worker, 0);
        assert!(!storm.spans.is_empty());
        assert!(storm.spans.len() <= FLIGHT_RECORDER_CAPACITY);
        assert!(storm.spans.iter().all(|s| !s.ok), "storm spans all missed");
        assert!(report.incidents.len() <= MAX_INCIDENTS);
        // The scorer's downgrade to critical is visible in the trace stream.
        let spans = sched.tracer().spans();
        let collapse = spans
            .iter()
            .find(|s| s.kind == SpanKind::Health && !s.ok)
            .expect("health collapse must emit a span");
        assert_eq!(collapse.node, 0);
        let (_, to) = sensact_core::health::decode_transition(collapse.detail).unwrap();
        assert_ne!(to, HealthStatus::Healthy);
    }

    /// Satellite: fleet rollup. Merging every loop's telemetry export equals
    /// what the per-loop registries hold summed, histograms included.
    #[test]
    fn rollup_metrics_aggregates_per_loop_telemetry() {
        let mut sched = fleet(3, 2, 5);
        let _ = sched.run_deterministic(0.1, &mut SimClock::new());
        let fleet_reg = sched.rollup_metrics();
        let total_ticks: u64 = (0..3)
            .map(|i| sched.loop_telemetry(LoopId(i)).ticks())
            .sum();
        assert_eq!(fleet_reg.counter("loop.ticks_total"), total_ticks);
        let hist = fleet_reg.histogram("loop.tick.latency_s").unwrap();
        assert_eq!(hist.count(), total_ticks);
        // Rolled-up registry renders on the fleet-level Prometheus surface.
        let prom = sensact_core::export::prometheus_text(&fleet_reg);
        assert!(prom.contains("loop_ticks_total"), "{prom}");
        // … and on the ASCII dashboard, latency histogram included.
        let report = sched.run_deterministic(0.0, &mut SimClock::new());
        let dash = report.dashboard(&fleet_reg);
        assert!(dash.contains("health"), "{dash}");
        assert!(dash.contains("tick latency (s)"), "{dash}");
    }

    /// A checkpointable member whose charged latency depends on its
    /// environment, so the deterministic trace hash is sensitive to every
    /// restored bit of loop *and* environment state.
    fn stateful_handle(name: &str) -> LoopHandle {
        let looop = LoopBuilder::new(name).build(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-6, 1e-4 * (1.0 + e.abs()));
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.3 * f + 0.02),
        );
        LoopHandle::closed_checkpointable(looop, 4.0f64, |e, a| *e += a)
    }

    /// A checkpointable fallible member: dropout faults, retries, and held
    /// features all hang off the injector's RNG position.
    fn faulty_handle(name: &str, seed: u64) -> LoopHandle {
        use sensact_core::fault::{
            FaultInjector, FaultProfile, FnTryPerceptor, RecoveryPolicy, WithFallback,
        };
        use sensact_core::stage::AlwaysTrust;
        use sensact_core::FallibleLoop;
        let sensor = FaultInjector::new(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-6, 1e-4 * (1.0 + e.abs()));
                *e
            }),
            FaultProfile::dropout(0.25),
            seed,
        );
        let looop = FallibleLoop::new(
            name,
            sensor,
            FnTryPerceptor::new(|r: &f64, _: &mut StageContext| Ok(*r)),
            AlwaysTrust,
            WithFallback::new(
                FnController::new(|f: &f64, _t, _: &mut StageContext| -0.3 * f + 0.02),
                0.0,
            ),
        )
        .with_recovery(RecoveryPolicy {
            max_retries: 1,
            retry_energy_j: 1e-7,
            max_hold_ticks: 2,
            staleness_decay: 0.3,
            latency_budget_s: None,
        });
        LoopHandle::closed_fallible_checkpointable(looop, 3.0f64, |e, a| *e += a)
    }

    /// Tentpole: kill-and-resume. After a warm-up run, both members are
    /// snapshotted over the JSONL wire, dropped, and their state adopted by
    /// freshly built twins; the next deterministic run's trace hash — which
    /// folds every completion time, hence every restored bit that shapes a
    /// latency — must equal the uninterrupted fleet's bit-for-bit.
    #[test]
    fn snapshot_killed_members_resume_fleet_trace_bit_exactly() {
        let build = |seed| {
            let mut sched = FleetScheduler::new(FleetConfig {
                workers: 2,
                watts_cap: None,
                seed,
            });
            let a = sched.register(stateful_handle("alpha"), LoopSpec::periodic(1e-2));
            let b = sched.register(
                faulty_handle("beta", 11),
                LoopSpec::periodic(7e-3).with_budget(6e-3),
            );
            (sched, a, b)
        };
        let summarize = |sched: &mut FleetScheduler, id: LoopId| {
            let stats = sched.loop_stats(id);
            let t = sched.loop_telemetry(id);
            (
                stats,
                t.ticks(),
                t.total_energy_j().to_bits(),
                t.fault_counters(),
            )
        };
        // Uninterrupted reference: warm-up run, then the measured run.
        let (mut reference, ra, rb) = build(17);
        let _ = reference.run_deterministic(0.15, &mut SimClock::new());
        let ref_report = reference.run_deterministic(0.15, &mut SimClock::new());
        // Migrated fleet: identical warm-up, then both members are killed
        // and resumed from their wire checkpoints on fresh twins.
        let (mut migrated, ma, mb) = build(17);
        let _ = migrated.run_deterministic(0.15, &mut SimClock::new());
        for (id, fresh) in [
            (ma, stateful_handle("alpha")),
            (mb, faulty_handle("beta", 11)),
        ] {
            let wire = migrated.snapshot_member(id).unwrap().to_jsonl();
            let ckpt = Checkpoint::from_jsonl(&wire).unwrap();
            migrated.adopt_member(id, fresh, &ckpt).unwrap();
        }
        let mig_report = migrated.run_deterministic(0.15, &mut SimClock::new());
        assert_eq!(
            mig_report.trace_hash, ref_report.trace_hash,
            "resumed fleet must replay the uninterrupted trace bit-for-bit"
        );
        assert_eq!(
            summarize(&mut migrated, ma),
            summarize(&mut reference, ra),
            "resumed member state must be bit-identical"
        );
        assert_eq!(summarize(&mut migrated, mb), summarize(&mut reference, rb));
        // And the hash is genuinely state-sensitive: adopting a stale
        // (pre-warm-up) checkpoint diverges the replayed trace.
        let (mut stale, sa, _sb) = build(17);
        let cold = stale.snapshot_member(sa).unwrap();
        let _ = stale.run_deterministic(0.15, &mut SimClock::new());
        stale
            .adopt_member(sa, stateful_handle("alpha"), &cold)
            .unwrap();
        let stale_report = stale.run_deterministic(0.15, &mut SimClock::new());
        assert_ne!(
            stale_report.trace_hash, ref_report.trace_hash,
            "a stale checkpoint must be observable in the trace hash"
        );
    }

    /// Members not built through a checkpointable constructor refuse to
    /// snapshot with a typed error, and a failed adoption leaves the
    /// existing member untouched.
    #[test]
    fn non_checkpointable_member_snapshot_is_unsupported() {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 0,
        });
        let plain = sched.register(handle("plain", 1e-6, 1e-4), LoopSpec::periodic(1e-2));
        let able = sched.register(stateful_handle("able"), LoopSpec::periodic(1e-2));
        let _ = sched.run_deterministic(0.05, &mut SimClock::new());
        assert!(matches!(
            sched.snapshot_member(plain),
            Err(CheckpointError::Unsupported)
        ));
        let before = sched.loop_stats(able);
        let err = sched.adopt_member(able, stateful_handle("able"), &Checkpoint::new("empty"));
        assert!(err.is_err(), "an empty checkpoint cannot be adopted");
        assert_eq!(sched.loop_stats(able), before, "member must be untouched");
        let after = sched.run_deterministic(0.05, &mut SimClock::new());
        assert!(after.ticks > 0, "fleet keeps running after a failed adopt");
    }

    /// The scheduler anchors every tick on the virtual timeline via
    /// `set_tick_start` before the tick runs — a communicating loop can
    /// timestamp its sends on the fleet's clock.
    #[test]
    fn set_tick_start_reports_virtual_start_times() {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 0,
        });
        let (handle, starts) = CommLoop::observed(1e-3, 0.0);
        let _ = sched.register(handle, LoopSpec::periodic(1e-2));
        let _ = sched.run_deterministic(0.05, &mut SimClock::new());
        // Releases at k·0.01 with 1 ms compute never backlog, so each tick
        // starts exactly at its release.
        let got = starts.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(got.len(), 5);
        for (k, s) in got.iter().enumerate() {
            assert!((s - k as f64 * 1e-2).abs() < 1e-12, "tick {k} start {s}");
        }
    }

    /// Retiring a member hands its handle back, shrinks the fleet, and the
    /// freed slot index is reused by the next registration — so `LoopId`s
    /// stay dense under lease churn.
    #[test]
    fn retire_member_frees_slot_for_reuse() {
        let mut sched = fleet(3, 1, 5);
        assert_eq!(sched.len(), 3);
        let victim = LoopId(1);
        let old = sched.retire_member(victim);
        assert_eq!(old.name(), "loop-1", "retire returns the live handle");
        assert_eq!(sched.len(), 2);
        assert!(!sched.is_empty());
        // The retired slot is invisible to runs and reports…
        let report = sched.run_deterministic(0.03, &mut SimClock::new());
        assert_eq!(report.ticks, 6, "two active loops × 3 releases");
        assert!(report
            .loops
            .iter()
            .all(|s| s.name != "<retired>" && s.name != "loop-1"));
        assert_eq!(report.loops.len(), 2);
        // …and the next registration reuses index 1.
        let adopted = sched.register(handle("loop-new", 1e-6, 1e-4), LoopSpec::periodic(1e-2));
        assert_eq!(adopted, victim, "freelist must reuse the retired index");
        assert_eq!(sched.len(), 3);
        assert_eq!(sched.loop_name(adopted), "loop-new");
        // A fresh slot starts from clean accounting.
        let stats = sched.loop_stats(adopted);
        assert_eq!(stats.ticks, 0);
        assert_eq!(stats.drops, 0);
    }

    /// Externally-driven ticks run through the same accounting as scheduled
    /// releases: sequential floor on the member's completion frontier,
    /// cumulative stats, and deadline misses against the registered budget.
    #[test]
    fn tick_member_at_accounts_like_a_scheduled_release() {
        let mut sched = FleetScheduler::new(FleetConfig {
            workers: 1,
            watts_cap: None,
            seed: 9,
        });
        // 4 ms charged latency, 5 ms budget.
        let id = sched.register(
            handle("ext", 1e-6, 4e-3),
            LoopSpec::periodic(1e-2).with_budget(5e-3),
        );
        // First observation at t = 0.01: starts at its release.
        let a = sched.tick_member_at(id, 1e-2);
        assert!((a.start_s - 1e-2).abs() < 1e-12);
        assert!((a.completion_s - 1.4e-2).abs() < 1e-12);
        assert!(!a.missed);
        // Second observation arrives *while the first is still running*:
        // the sequential floor pushes its start to the frontier, and the
        // queueing delay blows the 5 ms response budget.
        let b = sched.tick_member_at(id, 1.1e-2);
        assert!(
            (b.start_s - a.completion_s).abs() < 1e-12,
            "a loop is sequential: start {} vs frontier {}",
            b.start_s,
            a.completion_s
        );
        assert!(b.missed, "queued response time must miss the 5 ms budget");
        assert!((sched.member_frontier_s(id) - b.completion_s).abs() < 1e-12);
        let stats = sched.loop_stats(id);
        assert_eq!(stats.ticks, 2);
        assert_eq!(stats.deadline_misses, 1);
        assert!((stats.busy_s - 8e-3).abs() < 1e-12);
        assert!(stats.energy_j > 0.0);
        // Ingress-side sheds land in the same drop counter the run modes use.
        sched.record_member_drops(id, 3);
        assert_eq!(sched.loop_stats(id).drops, 3);
        // The spec accessor exposes the registered admission inputs.
        let spec = sched.member_spec(id);
        assert_eq!(spec.latency_budget_s, Some(5e-3));
        assert!((spec.deadline_s(1.0) - 1.005).abs() < 1e-12);
    }

    /// The external release counter is part of the member checkpoint: a
    /// killed-and-adopted member continues its externally-driven tick
    /// sequence (trace ids, tie-breaks) exactly where the original stopped.
    #[test]
    fn snapshot_round_trips_external_release_counter() {
        let build = || {
            let mut sched = FleetScheduler::new(FleetConfig {
                workers: 1,
                watts_cap: None,
                seed: 21,
            });
            let id = sched.register(
                stateful_handle("lease"),
                LoopSpec::periodic(1e-2).with_budget(8e-3),
            );
            (sched, id)
        };
        // Reference: five external ticks, uninterrupted.
        let (mut reference, rid) = build();
        let mut ref_out = Vec::new();
        for k in 0..5 {
            ref_out.push(reference.tick_member_at(rid, k as f64 * 1e-2));
        }
        // Migrated: three ticks, kill, adopt a fresh twin, two more ticks.
        let (mut migrated, mid) = build();
        for (k, reference_tick) in ref_out.iter().enumerate().take(3) {
            let got = migrated.tick_member_at(mid, k as f64 * 1e-2);
            assert_eq!(
                got.completion_s.to_bits(),
                reference_tick.completion_s.to_bits()
            );
        }
        let wire = migrated.snapshot_member(mid).unwrap().to_jsonl();
        let ckpt = Checkpoint::from_jsonl(&wire).unwrap();
        let old = migrated.retire_member(mid);
        drop(old);
        let adopted = migrated.register(
            stateful_handle("lease"),
            LoopSpec::periodic(1e-2).with_budget(8e-3),
        );
        assert_eq!(adopted, mid, "slot reuse keeps the LoopId stable");
        migrated
            .adopt_member(adopted, stateful_handle("lease"), &ckpt)
            .unwrap();
        for (k, reference_tick) in ref_out.iter().enumerate().take(5).skip(3) {
            let got = migrated.tick_member_at(adopted, k as f64 * 1e-2);
            assert_eq!(
                got.completion_s.to_bits(),
                reference_tick.completion_s.to_bits(),
                "resumed tick {k} must be bit-identical"
            );
        }
        assert_eq!(
            migrated.loop_stats(adopted),
            reference.loop_stats(rid),
            "resumed stats must match the uninterrupted member"
        );
    }
}
