//! Object-safe loop adapters.
//!
//! A fleet mixes loops of different stage types — a lidar→STARNet
//! [`FallibleLoop`] and a cartpole→Koopman [`SensingActionLoop`] must coexist
//! in one scheduler. The generic `tick<E>` entry points cannot be boxed
//! directly (they are generic over the environment), so the runtime closes
//! each loop over its own environment first: a [`LoopHandle`] owns the loop,
//! the environment, and the actuation closure, and exposes the object-safe
//! [`DynLoop`] surface the scheduler drives.

use sensact_core::adapt::AdaptationPolicy;
use sensact_core::checkpoint::{Checkpoint, CheckpointError, Section, StageState, StateVec};
use sensact_core::fault::{FailSafe, FiniteCheck, TryPerceptor, TrySensor};
use sensact_core::stage::{Controller, Monitor, Perceptor, Sensor};
use sensact_core::{
    FallibleLoop, LoopTelemetry, Precision, SensingActionLoop, StageError, TraceContext,
};

/// What one multiplexed tick cost, as observed by the scheduler.
///
/// `latency_s` is the loop's *charged* (simulated) latency — the currency in
/// which the scheduler advances its virtual worker clocks and checks
/// deadlines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutcome {
    /// Energy the tick charged (joules).
    pub energy_j: f64,
    /// Latency the tick charged (seconds).
    pub latency_s: f64,
    /// Off-worker communication tail (seconds): time the tick's result is
    /// still in flight on a network *after* compute finished. The scheduler
    /// frees the worker once `latency_s` elapses, but the loop stays
    /// sequential — and its deadline is checked — at
    /// `start + latency_s + comm_s`, so upload/download time feeds the same
    /// deadline model as compute without burning worker capacity. Zero for
    /// loops that never communicate.
    pub comm_s: f64,
    /// Stage faults observed during the tick (fallible loops only).
    pub faults: u32,
}

/// The object-safe surface a scheduler needs from any loop.
///
/// Implemented by the closed-over adapters behind [`LoopHandle`]; implement
/// it directly to multiplex a custom runner.
pub trait DynLoop: Send {
    /// Loop name (for reports).
    fn name(&self) -> &str;

    /// Inform the loop of the virtual time at which its next tick starts.
    /// The scheduler calls this immediately before [`DynLoop::tick_once`],
    /// in both execution modes, so a loop that talks to other loops (a
    /// federated client timestamping an upload, say) can anchor its sends
    /// on the fleet's virtual timeline. Loops that don't care ignore it.
    fn set_tick_start(&mut self, _start_s: f64) {}

    /// Run exactly one tick against the owned environment and apply the
    /// action back to it.
    fn tick_once(&mut self) -> TickOutcome;

    /// The loop's accumulated telemetry.
    fn telemetry(&self) -> &LoopTelemetry;

    /// Attribute a scheduler-observed deadline miss to the loop through the
    /// existing [`StageError::Timeout`] fault path, so a tick that overran
    /// its budget shows up in the loop's own [`FaultCounters`](sensact_core::FaultCounters)
    /// instead of silently skewing the fleet.
    fn record_deadline_miss(&mut self, latency_s: f64, budget_s: f64);

    /// Forward a fleet-level precision hint (the energy arbiter's
    /// recommendation) to the loop's precision governor. Loops without a
    /// governor — and custom runners that don't override this — ignore it.
    fn set_precision_hint(&mut self, _hint: Option<Precision>) {}

    /// Hand the loop the causal [`TraceContext`] of the tick about to run.
    /// When fleet tracing is enabled the scheduler calls this immediately
    /// before [`DynLoop::tick_once`], so a communicating loop (a federated
    /// client, say) can parent its own causal spans — uploads, adoptions —
    /// under the scheduler's tick span and one distributed operation
    /// reconstructs as a single trace tree. Loops that don't trace ignore it.
    fn set_trace_context(&mut self, _ctx: TraceContext) {}

    /// Serialize the loop's complete live state — stages, telemetry, and the
    /// closed-over environment — into a [`Checkpoint`] for kill-and-resume
    /// or live migration ([`FleetScheduler::snapshot_member`](crate::FleetScheduler::snapshot_member)).
    /// Only the checkpointable adapters ([`LoopHandle::closed_checkpointable`],
    /// [`LoopHandle::closed_fallible_checkpointable`]) override this; other
    /// loops are honest about not supporting it rather than snapshotting
    /// partial state.
    fn save_state(&self) -> Result<Checkpoint, CheckpointError> {
        Err(CheckpointError::Unsupported)
    }

    /// Restore state saved by [`DynLoop::save_state`] onto an identically
    /// constructed loop.
    fn restore_from(&mut self, _ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        Err(CheckpointError::Unsupported)
    }
}

/// A [`SensingActionLoop`] closed over its environment.
struct ClosedLoop<S, P, M, C, Ad, E, F> {
    inner: SensingActionLoop<S, P, M, C, Ad>,
    env: E,
    apply: F,
}

impl<S, P, M, C, Ad, E, F> DynLoop for ClosedLoop<S, P, M, C, Ad, E, F>
where
    S: Sensor<E> + Send,
    P: Perceptor<S::Reading> + Send,
    M: Monitor<P::Features> + Send,
    C: Controller<P::Features> + Send,
    Ad: AdaptationPolicy<S, C::Action> + Send,
    E: Send,
    F: FnMut(&mut E, &C::Action) + Send,
{
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tick_once(&mut self) -> TickOutcome {
        let out = self.inner.tick(&self.env);
        (self.apply)(&mut self.env, &out.action);
        TickOutcome {
            energy_j: out.energy_j,
            latency_s: out.latency_s,
            comm_s: 0.0,
            faults: 0,
        }
    }

    fn telemetry(&self) -> &LoopTelemetry {
        self.inner.telemetry()
    }

    fn record_deadline_miss(&mut self, latency_s: f64, budget_s: f64) {
        self.inner
            .telemetry_mut()
            .record_fault(&StageError::Timeout {
                latency_s,
                budget_s,
            });
    }

    fn set_precision_hint(&mut self, hint: Option<Precision>) {
        self.inner.set_precision_hint(hint);
    }
}

/// A [`FallibleLoop`] closed over its environment.
struct ClosedFallibleLoop<S, P, M, C, Ad, Feat, E, F> {
    inner: FallibleLoop<S, P, M, C, Ad, Feat>,
    env: E,
    apply: F,
}

impl<S, P, M, C, Ad, Feat, E, F> DynLoop for ClosedFallibleLoop<S, P, M, C, Ad, Feat, E, F>
where
    S: TrySensor<E> + Send,
    P: TryPerceptor<S::Reading, Features = Feat> + Send,
    Feat: Clone + FiniteCheck + Send,
    M: Monitor<Feat> + Send,
    C: FailSafe<Feat> + Send,
    Ad: AdaptationPolicy<S, C::Action> + Send,
    E: Send,
    F: FnMut(&mut E, &C::Action) + Send,
{
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tick_once(&mut self) -> TickOutcome {
        let out = self.inner.tick(&self.env);
        (self.apply)(&mut self.env, &out.action);
        TickOutcome {
            energy_j: out.energy_j,
            latency_s: out.latency_s,
            comm_s: 0.0,
            faults: out.faults,
        }
    }

    fn telemetry(&self) -> &LoopTelemetry {
        self.inner.telemetry()
    }

    fn record_deadline_miss(&mut self, latency_s: f64, budget_s: f64) {
        self.inner
            .telemetry_mut()
            .record_fault(&StageError::Timeout {
                latency_s,
                budget_s,
            });
    }

    fn set_precision_hint(&mut self, hint: Option<Precision>) {
        self.inner.set_precision_hint(hint);
    }
}

/// Section id under which the closed-over environment travels in a
/// checkpointed handle (alongside the loop's own sections).
const ENV_SECTION: &str = "env";

/// Save a closed-over environment into a loop checkpoint.
fn save_env<E: StateVec>(ckpt: &mut Checkpoint, env: &E) {
    let mut s = Section::new(ENV_SECTION);
    s.put_f64s("state", &env.to_state());
    ckpt.push(s);
}

/// Restore a closed-over environment from a loop checkpoint.
fn restore_env<E: StateVec>(ckpt: &Checkpoint) -> Result<E, CheckpointError> {
    let state = ckpt.section(ENV_SECTION)?.get_f64s("state")?;
    E::from_state(&state).ok_or_else(|| CheckpointError::BadValue("env.state".into()))
}

/// A [`SensingActionLoop`] closed over its environment whose every stage
/// implements [`StageState`]: the checkpointable variant of [`ClosedLoop`],
/// able to serialize loop *and* environment for kill-and-resume.
struct CheckpointableLoop<S, P, M, C, Ad, E, F> {
    inner: SensingActionLoop<S, P, M, C, Ad>,
    env: E,
    apply: F,
}

impl<S, P, M, C, Ad, E, F> DynLoop for CheckpointableLoop<S, P, M, C, Ad, E, F>
where
    S: Sensor<E> + StageState + Send,
    P: Perceptor<S::Reading> + StageState + Send,
    M: Monitor<P::Features> + StageState + Send,
    C: Controller<P::Features> + StageState + Send,
    Ad: AdaptationPolicy<S, C::Action> + StageState + Send,
    E: StateVec + Send,
    F: FnMut(&mut E, &C::Action) + Send,
{
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tick_once(&mut self) -> TickOutcome {
        let out = self.inner.tick(&self.env);
        (self.apply)(&mut self.env, &out.action);
        TickOutcome {
            energy_j: out.energy_j,
            latency_s: out.latency_s,
            comm_s: 0.0,
            faults: 0,
        }
    }

    fn telemetry(&self) -> &LoopTelemetry {
        self.inner.telemetry()
    }

    fn record_deadline_miss(&mut self, latency_s: f64, budget_s: f64) {
        self.inner
            .telemetry_mut()
            .record_fault(&StageError::Timeout {
                latency_s,
                budget_s,
            });
    }

    fn set_precision_hint(&mut self, hint: Option<Precision>) {
        self.inner.set_precision_hint(hint);
    }

    fn save_state(&self) -> Result<Checkpoint, CheckpointError> {
        let mut ckpt = self.inner.snapshot();
        save_env(&mut ckpt, &self.env);
        Ok(ckpt)
    }

    fn restore_from(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        self.inner.restore(ckpt)?;
        self.env = restore_env(ckpt)?;
        Ok(())
    }
}

/// A [`FallibleLoop`] closed over its environment, checkpointable like
/// [`CheckpointableLoop`] (held features and fault-injector RNG included).
struct CheckpointableFallibleLoop<S, P, M, C, Ad, Feat, E, F> {
    inner: FallibleLoop<S, P, M, C, Ad, Feat>,
    env: E,
    apply: F,
}

impl<S, P, M, C, Ad, Feat, E, F> DynLoop for CheckpointableFallibleLoop<S, P, M, C, Ad, Feat, E, F>
where
    S: TrySensor<E> + StageState + Send,
    P: TryPerceptor<S::Reading, Features = Feat> + StageState + Send,
    Feat: Clone + FiniteCheck + StateVec + Send,
    M: Monitor<Feat> + StageState + Send,
    C: FailSafe<Feat> + StageState + Send,
    Ad: AdaptationPolicy<S, C::Action> + StageState + Send,
    E: StateVec + Send,
    F: FnMut(&mut E, &C::Action) + Send,
{
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tick_once(&mut self) -> TickOutcome {
        let out = self.inner.tick(&self.env);
        (self.apply)(&mut self.env, &out.action);
        TickOutcome {
            energy_j: out.energy_j,
            latency_s: out.latency_s,
            comm_s: 0.0,
            faults: out.faults,
        }
    }

    fn telemetry(&self) -> &LoopTelemetry {
        self.inner.telemetry()
    }

    fn record_deadline_miss(&mut self, latency_s: f64, budget_s: f64) {
        self.inner
            .telemetry_mut()
            .record_fault(&StageError::Timeout {
                latency_s,
                budget_s,
            });
    }

    fn set_precision_hint(&mut self, hint: Option<Precision>) {
        self.inner.set_precision_hint(hint);
    }

    fn save_state(&self) -> Result<Checkpoint, CheckpointError> {
        let mut ckpt = self.inner.snapshot();
        save_env(&mut ckpt, &self.env);
        Ok(ckpt)
    }

    fn restore_from(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        self.inner.restore(ckpt)?;
        self.env = restore_env(ckpt)?;
        Ok(())
    }
}

/// An owned, type-erased member loop ready for fleet registration.
///
/// Constructed by closing a loop over its environment
/// ([`LoopHandle::closed`], [`LoopHandle::closed_fallible`]) or from any
/// custom [`DynLoop`] ([`LoopHandle::from_dyn`]).
pub struct LoopHandle {
    inner: Box<dyn DynLoop>,
}

impl std::fmt::Debug for LoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopHandle")
            .field("name", &self.name())
            .field("ticks", &self.telemetry().ticks())
            .finish()
    }
}

impl LoopHandle {
    /// Close a [`SensingActionLoop`] over its environment; `apply` actuates
    /// each decided action back into the environment (the closed-loop edge).
    pub fn closed<S, P, M, C, Ad, E, F>(
        inner: SensingActionLoop<S, P, M, C, Ad>,
        env: E,
        apply: F,
    ) -> Self
    where
        S: Sensor<E> + Send + 'static,
        P: Perceptor<S::Reading> + Send + 'static,
        M: Monitor<P::Features> + Send + 'static,
        C: Controller<P::Features> + Send + 'static,
        Ad: AdaptationPolicy<S, C::Action> + Send + 'static,
        E: Send + 'static,
        F: FnMut(&mut E, &C::Action) + Send + 'static,
    {
        LoopHandle {
            inner: Box::new(ClosedLoop { inner, env, apply }),
        }
    }

    /// Close a [`FallibleLoop`] over its environment.
    pub fn closed_fallible<S, P, M, C, Ad, Feat, E, F>(
        inner: FallibleLoop<S, P, M, C, Ad, Feat>,
        env: E,
        apply: F,
    ) -> Self
    where
        S: TrySensor<E> + Send + 'static,
        P: TryPerceptor<S::Reading, Features = Feat> + Send + 'static,
        Feat: Clone + FiniteCheck + Send + 'static,
        M: Monitor<Feat> + Send + 'static,
        C: FailSafe<Feat> + Send + 'static,
        Ad: AdaptationPolicy<S, C::Action> + Send + 'static,
        E: Send + 'static,
        F: FnMut(&mut E, &C::Action) + Send + 'static,
    {
        LoopHandle {
            inner: Box::new(ClosedFallibleLoop { inner, env, apply }),
        }
    }

    /// Like [`LoopHandle::closed`], but checkpointable: every stage
    /// implements [`StageState`] and the environment round-trips through
    /// [`StateVec`], so [`LoopHandle::save_state`] captures loop and
    /// environment together for kill-and-resume or migration.
    pub fn closed_checkpointable<S, P, M, C, Ad, E, F>(
        inner: SensingActionLoop<S, P, M, C, Ad>,
        env: E,
        apply: F,
    ) -> Self
    where
        S: Sensor<E> + StageState + Send + 'static,
        P: Perceptor<S::Reading> + StageState + Send + 'static,
        M: Monitor<P::Features> + StageState + Send + 'static,
        C: Controller<P::Features> + StageState + Send + 'static,
        Ad: AdaptationPolicy<S, C::Action> + StageState + Send + 'static,
        E: StateVec + Send + 'static,
        F: FnMut(&mut E, &C::Action) + Send + 'static,
    {
        LoopHandle {
            inner: Box::new(CheckpointableLoop { inner, env, apply }),
        }
    }

    /// Like [`LoopHandle::closed_fallible`], but checkpointable (see
    /// [`LoopHandle::closed_checkpointable`]); the snapshot additionally
    /// carries held features, staleness, and fault-injector RNG positions.
    pub fn closed_fallible_checkpointable<S, P, M, C, Ad, Feat, E, F>(
        inner: FallibleLoop<S, P, M, C, Ad, Feat>,
        env: E,
        apply: F,
    ) -> Self
    where
        S: TrySensor<E> + StageState + Send + 'static,
        P: TryPerceptor<S::Reading, Features = Feat> + StageState + Send + 'static,
        Feat: Clone + FiniteCheck + StateVec + Send + 'static,
        M: Monitor<Feat> + StageState + Send + 'static,
        C: FailSafe<Feat> + StageState + Send + 'static,
        Ad: AdaptationPolicy<S, C::Action> + StageState + Send + 'static,
        E: StateVec + Send + 'static,
        F: FnMut(&mut E, &C::Action) + Send + 'static,
    {
        LoopHandle {
            inner: Box::new(CheckpointableFallibleLoop { inner, env, apply }),
        }
    }

    /// Wrap a custom [`DynLoop`] implementation.
    pub fn from_dyn(inner: Box<dyn DynLoop>) -> Self {
        LoopHandle { inner }
    }

    /// Loop name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Anchor the loop on the fleet's virtual timeline (see
    /// [`DynLoop::set_tick_start`]).
    pub fn set_tick_start(&mut self, start_s: f64) {
        self.inner.set_tick_start(start_s);
    }

    /// Run one tick (see [`DynLoop::tick_once`]).
    pub fn tick_once(&mut self) -> TickOutcome {
        self.inner.tick_once()
    }

    /// The loop's telemetry.
    pub fn telemetry(&self) -> &LoopTelemetry {
        self.inner.telemetry()
    }

    /// Surface a deadline miss (see [`DynLoop::record_deadline_miss`]).
    pub fn record_deadline_miss(&mut self, latency_s: f64, budget_s: f64) {
        self.inner.record_deadline_miss(latency_s, budget_s);
    }

    /// Forward a fleet-level precision hint (see
    /// [`DynLoop::set_precision_hint`]).
    pub fn set_precision_hint(&mut self, hint: Option<Precision>) {
        self.inner.set_precision_hint(hint);
    }

    /// Hand the loop its tick's causal trace context (see
    /// [`DynLoop::set_trace_context`]).
    pub fn set_trace_context(&mut self, ctx: TraceContext) {
        self.inner.set_trace_context(ctx);
    }

    /// Serialize the loop and its environment (see [`DynLoop::save_state`]);
    /// `Err(Unsupported)` unless built with a checkpointable constructor.
    pub fn save_state(&self) -> Result<Checkpoint, CheckpointError> {
        self.inner.save_state()
    }

    /// Restore state saved by [`LoopHandle::save_state`] (see
    /// [`DynLoop::restore_from`]).
    pub fn restore_from(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        self.inner.restore_from(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext};
    use sensact_core::LoopBuilder;

    fn scalar_handle(name: &str) -> LoopHandle {
        let looop = LoopBuilder::new(name).build(
            FnSensor::new(|e: &f64, ctx: &mut StageContext| {
                ctx.charge(1e-6, 1e-4);
                *e
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.5 * f),
        );
        LoopHandle::closed(looop, 8.0f64, |e, a| *e += a)
    }

    #[test]
    fn closed_handle_ticks_and_regulates_its_env() {
        let mut h = scalar_handle("h");
        assert_eq!(h.name(), "h");
        let mut last = f64::INFINITY;
        for _ in 0..40 {
            let out = h.tick_once();
            assert_eq!(out.latency_s, 1e-4);
            assert_eq!(out.faults, 0);
            last = out.energy_j;
        }
        assert!(last > 0.0);
        assert_eq!(h.telemetry().ticks(), 40);
        // The env is owned by the handle: regulation shows up as shrinking
        // per-tick action energy isn't observable, but telemetry is.
        assert!(h.telemetry().total_energy_j() > 0.0);
    }

    #[test]
    fn deadline_miss_surfaces_as_timeout_fault() {
        let mut h = scalar_handle("miss");
        let _ = h.tick_once();
        assert_eq!(h.telemetry().fault_counters().timeouts, 0);
        h.record_deadline_miss(2e-3, 1e-3);
        let c = h.telemetry().fault_counters();
        assert_eq!(c.timeouts, 1);
        assert_eq!(c.faults, 1);
    }

    #[test]
    fn heterogeneous_handles_coexist_in_one_vec() {
        let vec_loop = LoopBuilder::new("vec").build(
            FnSensor::new(|e: &Vec<f64>, ctx: &mut StageContext| {
                ctx.charge(1e-6, 2e-4);
                e.iter().sum::<f64>()
            }),
            FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
            FnController::new(|f: &f64, _t, _: &mut StageContext| -0.1 * f),
        );
        let mut fleet = vec![
            scalar_handle("scalar"),
            LoopHandle::closed(vec_loop, vec![1.0, 2.0], |e: &mut Vec<f64>, a: &f64| {
                e[0] += a;
            }),
        ];
        for h in &mut fleet {
            let _ = h.tick_once();
        }
        assert_eq!(fleet[0].telemetry().ticks(), 1);
        assert_eq!(fleet[1].telemetry().ticks(), 1);
        assert_eq!(
            format!("{:?}", fleet[1]),
            "LoopHandle { name: \"vec\", ticks: 1 }"
        );
    }
}
