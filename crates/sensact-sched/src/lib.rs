//! # sensact-sched
//!
//! A fleet-scale runtime for sensing-to-action loops (paper §VII).
//!
//! The loop abstraction in [`sensact_core`] runs one loop at a time; the
//! paper's fleet argument — coordinated agents splitting coverage cut
//! energy ~3× — needs a runtime that multiplexes *thousands* of
//! heterogeneous loops over a bounded worker pool. This crate provides it,
//! std-only and dependency-free:
//!
//! * [`LoopHandle`] / [`DynLoop`] — object-safe adapters closing a
//!   [`SensingActionLoop`](sensact_core::SensingActionLoop) or
//!   [`FallibleLoop`](sensact_core::FallibleLoop) of any stage types over
//!   its environment, so one fleet mixes lidar→STARNet and cartpole→Koopman
//!   members;
//! * [`FleetScheduler`] — deadline-aware (EDF) scheduling over a sharded
//!   ready queue with work stealing; each loop registers a tick period and
//!   latency budget ([`LoopSpec`]), and a tick that overruns its budget is
//!   surfaced through the loop's own
//!   [`StageError::Timeout`](sensact_core::StageError) fault path;
//! * admission control and backpressure — a bounded pending-tick backlog
//!   per loop with drop-oldest semantics and per-loop drop accounting, plus
//!   an [`EnergyArbiter`] that stretches release strides when the fleet's
//!   summed energy burn exceeds a configured watts cap;
//! * full observability — per-loop
//!   [`LoopTelemetry`](sensact_core::LoopTelemetry) preserved, and
//!   scheduler-level [`FleetReport::export_into`] publishing queue depth,
//!   steal count, deadline misses and per-worker utilization into a
//!   [`MetricsRegistry`](sensact_core::MetricsRegistry);
//! * a deterministic mode — [`FleetScheduler::run_deterministic`] simulates
//!   the worker pool event-by-event under a caller-provided
//!   [`SimClock`](sensact_core::trace::SimClock) with seeded EDF
//!   tie-breaking, so a fleet run is reproducible tick-for-tick and member
//!   loops still verify bit-exactly through the
//!   [`replay`](sensact_core::replay) path.
//!
//! ## Example
//!
//! ```
//! use sensact_core::stage::{FnController, FnPerceptor, FnSensor, StageContext};
//! use sensact_core::trace::SimClock;
//! use sensact_core::LoopBuilder;
//! use sensact_sched::{FleetConfig, FleetScheduler, LoopHandle, LoopSpec};
//!
//! let mut fleet = FleetScheduler::new(FleetConfig { workers: 2, ..FleetConfig::default() });
//! for i in 0..4 {
//!     let looop = LoopBuilder::new(format!("member-{i}")).build(
//!         FnSensor::new(|e: &f64, ctx: &mut StageContext| { ctx.charge(1e-6, 1e-4); *e }),
//!         FnPerceptor::new(|r: &f64, _: &mut StageContext| *r),
//!         FnController::new(|f: &f64, _t, _: &mut StageContext| -0.5 * f),
//!     );
//!     fleet.register(
//!         LoopHandle::closed(looop, 4.0f64, |e, a| *e += a),
//!         LoopSpec::periodic(1e-2).with_budget(5e-3),
//!     );
//! }
//! let report = fleet.run_deterministic(0.1, &mut SimClock::new());
//! assert_eq!(report.ticks, 40);
//! assert_eq!(report.deadline_misses, 0);
//! ```

pub mod arbiter;
pub mod handle;
pub mod sched;

mod queue;

pub use arbiter::EnergyArbiter;
pub use handle::{DynLoop, LoopHandle, TickOutcome};
pub use sched::{
    FleetConfig, FleetReport, FleetScheduler, Incident, IncidentReason, LoopId, LoopSpec,
    LoopStats, LoopSummary, MemberTickOutcome, DEFAULT_QUEUE_CAPACITY, FLIGHT_RECORDER_CAPACITY,
    HEALTH_WINDOW_TICKS, MAX_INCIDENTS,
};
