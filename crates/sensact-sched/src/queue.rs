//! Sharded EDF ready-queue with work stealing.
//!
//! Each worker owns one shard (a binary min-heap ordered by absolute
//! deadline); a loop's releases always land on its *home* shard
//! (`loop_idx % workers`), so an unloaded fleet runs shard-local with no
//! cross-worker traffic. A worker whose shard runs dry scans the other
//! shards round-robin and *steals* the earliest-deadline release it finds —
//! stealing keeps tail latency bounded when the battery-heavy loops cluster
//! on one shard, and every steal is counted for the metrics export.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One pending tick release, ordered by absolute deadline (EDF).
///
/// `deadline_bits` is the IEEE-754 bit pattern of the (non-negative)
/// deadline: for non-negative floats the bit pattern is order-preserving, so
/// integer comparison gives exact float ordering with total order and `Eq`.
/// `tie` is a seeded per-release key that breaks deadline ties — it is what
/// makes a fleet run's interleaving a pure function of the seed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Release {
    /// Absolute deadline, as order-preserving bits of a non-negative f64.
    pub deadline_bits: u64,
    /// Seeded tie-break key for equal deadlines.
    pub tie: u64,
    /// Index of the loop this release belongs to.
    pub loop_idx: usize,
    /// Monotone release counter within the loop (drops advance it too).
    pub release_idx: u64,
    /// Release time (seconds, virtual).
    pub release_s: f64,
}

impl Release {
    /// Build a release from a *seconds* deadline, enforcing the
    /// non-negative invariant the bit-pattern ordering relies on:
    /// `f64::to_bits` ordering silently inverts for negative floats (the
    /// sign bit is the most significant bit), so a negative deadline —
    /// possible once simulated-network delays are subtracted from budgets —
    /// would sort *after* every non-negative one and starve the release.
    /// Negative and NaN deadlines clamp to `0.0` (immediately due), with a
    /// `debug_assert` so debug builds surface the caller's arithmetic bug.
    pub fn new(
        deadline_s: f64,
        tie: u64,
        loop_idx: usize,
        release_idx: u64,
        release_s: f64,
    ) -> Self {
        debug_assert!(
            deadline_s >= 0.0,
            "EDF deadline must be non-negative, got {deadline_s} \
             (loop {loop_idx}, release {release_idx})"
        );
        Release {
            deadline_bits: clamp_deadline(deadline_s).to_bits(),
            tie,
            loop_idx,
            release_idx,
            release_s,
        }
    }

    fn key(&self) -> (u64, u64, usize, u64) {
        (
            self.deadline_bits,
            self.tie,
            self.loop_idx,
            self.release_idx,
        )
    }
}

impl PartialEq for Release {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Release {}
impl PartialOrd for Release {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Release {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Clamp a deadline to the non-negative range bit-pattern ordering needs.
/// Negative deadlines become `0.0` (immediately due — the safest reading of
/// an already-blown budget); `f64::max(NaN, 0.0)` is `0.0`, so NaN clamps
/// too.
fn clamp_deadline(deadline_s: f64) -> f64 {
    deadline_s.max(0.0)
}

/// SplitMix64 — the seeded tie-break generator. A release's key depends only
/// on `(seed, loop, release index)`, never on execution order, so the EDF
/// order is reproducible regardless of which worker pushed the release.
pub(crate) fn tie_break(seed: u64, loop_idx: usize, release_idx: u64) -> u64 {
    let mut x = seed
        ^ (loop_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ release_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The multi-worker ready queue: one mutex-guarded heap per worker plus
/// relaxed counters for depth sampling and steal accounting.
#[derive(Debug)]
pub(crate) struct ShardedQueue {
    shards: Vec<Mutex<BinaryHeap<Reverse<Release>>>>,
    len: AtomicUsize,
    steals: AtomicU64,
}

impl ShardedQueue {
    pub fn new(workers: usize) -> Self {
        ShardedQueue {
            shards: (0..workers.max(1)).map(|_| Mutex::default()).collect(),
            len: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        }
    }

    fn shard(&self, i: usize) -> std::sync::MutexGuard<'_, BinaryHeap<Reverse<Release>>> {
        // A worker that panicked mid-push cannot corrupt a BinaryHeap
        // invariant we rely on for safety — recover rather than cascade.
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Push onto the release's home shard.
    pub fn push(&self, release: Release) {
        let home = release.loop_idx % self.shards.len();
        self.shard(home).push(Reverse(release));
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop the earliest-deadline release visible to `worker`: its own shard
    /// first, then the other shards round-robin (a hit there is a steal).
    pub fn pop(&self, worker: usize) -> Option<Release> {
        let n = self.shards.len();
        let own = worker % n;
        if let Some(Reverse(r)) = self.shard(own).pop() {
            self.len.fetch_sub(1, Ordering::Relaxed);
            return Some(r);
        }
        for k in 1..n {
            let victim = (own + k) % n;
            if let Some(Reverse(r)) = self.shard(victim).pop() {
                self.len.fetch_sub(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(r);
            }
        }
        None
    }

    /// Approximate total queued releases (for depth sampling).
    pub fn depth(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn release(loop_idx: usize, deadline_s: f64, tie: u64) -> Release {
        Release {
            deadline_bits: deadline_s.to_bits(),
            tie,
            loop_idx,
            release_idx: 0,
            release_s: 0.0,
        }
    }

    #[test]
    fn deadline_bits_preserve_float_order() {
        let times: [f64; 7] = [0.0, 1e-9, 1e-3, 0.5, 1.0, 7.25, 1e6];
        for w in times.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn pop_is_edf_within_a_shard() {
        let q = ShardedQueue::new(1);
        q.push(release(0, 3.0, 0));
        q.push(release(0, 1.0, 0));
        q.push(release(0, 2.0, 0));
        let order: Vec<f64> = (0..3)
            .map(|_| f64::from_bits(q.pop(0).unwrap().deadline_bits))
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
        assert_eq!(q.steals(), 0);
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn equal_deadlines_break_by_tie_key() {
        let q = ShardedQueue::new(1);
        q.push(release(5, 1.0, 20));
        q.push(release(9, 1.0, 10));
        assert_eq!(q.pop(0).unwrap().loop_idx, 9);
        assert_eq!(q.pop(0).unwrap().loop_idx, 5);
    }

    #[test]
    fn empty_own_shard_steals_from_victims() {
        let q = ShardedQueue::new(2);
        // Loop 1's home is shard 1; worker 0 must steal it.
        q.push(release(1, 1.0, 0));
        assert_eq!(q.depth(), 1);
        let got = q.pop(0).unwrap();
        assert_eq!(got.loop_idx, 1);
        assert_eq!(q.steals(), 1);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn raw_bit_ordering_inverts_for_negative_deadlines() {
        // The failure mode the constructor guards against: as raw bit
        // patterns, a negative deadline sorts *after* every non-negative one
        // (sign bit on top), so naive `to_bits` keys would starve it.
        assert!((-1.0f64).to_bits() > 1.0f64.to_bits());
        assert!((-1e-9f64).to_bits() > 1e6f64.to_bits());
    }

    #[test]
    fn clamped_negative_deadlines_stay_earliest() {
        // Negative and NaN deadlines clamp to 0.0 (immediately due).
        assert_eq!(clamp_deadline(-3.0), 0.0);
        assert_eq!(clamp_deadline(-1e-12), 0.0);
        assert_eq!(clamp_deadline(f64::NAN), 0.0);
        assert_eq!(clamp_deadline(0.0), 0.0);
        assert_eq!(clamp_deadline(2.5), 2.5);
        // A release whose budget arithmetic went negative (network delay
        // subtracted past zero) is popped before any positive deadline.
        let q = ShardedQueue::new(1);
        q.push(Release::new(clamp_deadline(-0.5), 0, 0, 0, 0.0));
        q.push(Release::new(1.0, 0, 1, 0, 0.0));
        assert_eq!(
            q.pop(0).unwrap().loop_idx,
            0,
            "clamped release is due first"
        );
        assert_eq!(q.pop(0).unwrap().loop_idx, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-negative")]
    fn negative_deadline_asserts_in_debug_builds() {
        let _ = Release::new(-1.0, 0, 0, 0, 0.0);
    }

    #[test]
    fn tie_break_is_a_pure_function_of_seed_loop_and_index() {
        assert_eq!(tie_break(7, 3, 11), tie_break(7, 3, 11));
        assert_ne!(tie_break(7, 3, 11), tie_break(8, 3, 11));
        assert_ne!(tie_break(7, 3, 11), tie_break(7, 4, 11));
        assert_ne!(tie_break(7, 3, 11), tie_break(7, 3, 12));
    }
}
