//! Fleet-wide energy-budget arbitration.
//!
//! The paper's §II energy-latency co-design knob, lifted to fleet scope:
//! when the fleet's summed charged energy, averaged over virtual time,
//! exceeds a configured watts cap, the arbiter stretches every loop's
//! release stride by the overshoot factor — tick rates throttle smoothly
//! until the average power drops back under the cap.
//!
//! Beyond stretching strides, the arbiter also translates sustained
//! overshoot into a fleet-wide numeric-precision recommendation
//! ([`EnergyArbiter::recommended_precision`]): moderate pressure suggests
//! f32 perception, severe pressure suggests int8. Loop handles forward the
//! hint to each loop's precision governor, which may only *cheapen* the
//! loop's own policy choice — and a loop whose trust monitor flags drift
//! still forces f64 locally regardless of the hint.

use sensact_core::Precision;

/// Upper bound on the stride stretch so a single pathological tick cannot
/// freeze the fleet.
const MAX_STRETCH: f64 = 64.0;

/// Tracks fleet energy burn against an optional watts cap and yields the
/// current release-stride stretch factor (`1.0` = no throttling).
#[derive(Debug, Clone)]
pub struct EnergyArbiter {
    watts_cap: Option<f64>,
    energy_j: f64,
    now_s: f64,
    stretch: f64,
    throttle_events: u64,
}

impl EnergyArbiter {
    /// An arbiter with an optional fleet-average watts cap.
    pub fn new(watts_cap: Option<f64>) -> Self {
        EnergyArbiter {
            watts_cap,
            energy_j: 0.0,
            now_s: 0.0,
            stretch: 1.0,
            throttle_events: 0,
        }
    }

    /// Account one completed tick and return the stride stretch to apply to
    /// the loop's next release. Non-finite energy (a NaN-poisoned tick) is
    /// accounted as zero so one poisoned loop cannot throttle the fleet
    /// forever.
    pub fn on_completion(&mut self, energy_j: f64, completion_s: f64) -> f64 {
        if energy_j.is_finite() && energy_j > 0.0 {
            self.energy_j += energy_j;
        }
        if completion_s.is_finite() && completion_s > self.now_s {
            self.now_s = completion_s;
        }
        if let Some(cap) = self.watts_cap {
            if cap > 0.0 && self.now_s > 0.0 {
                let watts = self.energy_j / self.now_s;
                if watts.is_finite() {
                    self.stretch = (watts / cap).clamp(1.0, MAX_STRETCH);
                    if self.stretch > 1.0 {
                        self.throttle_events += 1;
                    }
                }
            }
        }
        self.stretch
    }

    /// Fleet average power so far (watts; `0` before any time has passed).
    pub fn watts(&self) -> f64 {
        if self.now_s > 0.0 {
            self.energy_j / self.now_s
        } else {
            0.0
        }
    }

    /// Total energy accounted (joules).
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Current stride stretch factor (≥ 1).
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// Fleet-wide precision recommendation derived from the current
    /// overshoot: `None` (run at full f64) while at or near the cap, f32
    /// beyond 1.5× overshoot, int8 beyond 4×. Advisory — each loop's
    /// governor combines it with its own policy and trust state.
    pub fn recommended_precision(&self) -> Option<Precision> {
        if self.stretch >= 4.0 {
            Some(Precision::Int8)
        } else if self.stretch > 1.5 {
            Some(Precision::F32)
        } else {
            None
        }
    }

    /// Completions that observed an over-cap fleet (throttled releases).
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// Map a precision hint to a wire quantization (bits per model
    /// parameter) for communication throttling: the same arbiter pressure
    /// that cheapens compute also shrinks uploads. Full precision ships
    /// f16-quantized deltas (16 bits), f32 pressure halves that to 8-bit,
    /// int8 pressure halves again to 4-bit — matching HALO-FL's
    /// precision-scaled payload model.
    pub fn wire_bits(hint: Option<Precision>) -> u8 {
        match hint {
            None | Some(Precision::F64) => 16,
            Some(Precision::F32) => 8,
            Some(Precision::Int8) => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_arbiter_never_throttles() {
        let mut a = EnergyArbiter::new(None);
        for k in 1..100 {
            assert_eq!(a.on_completion(1.0, k as f64 * 1e-3), 1.0);
        }
        assert_eq!(a.throttle_events(), 0);
        assert!(a.watts() > 0.0);
    }

    #[test]
    fn over_cap_burn_stretches_strides_proportionally() {
        // 2 J over 1 s against a 0.5 W cap ⇒ 4× overshoot ⇒ 4× stretch.
        let mut a = EnergyArbiter::new(Some(0.5));
        let s = a.on_completion(2.0, 1.0);
        assert!((s - 4.0).abs() < 1e-12, "stretch {s}");
        assert_eq!(a.throttle_events(), 1);
        // Burning nothing for a while relaxes the stretch back toward 1.
        let s = a.on_completion(0.0, 4.0);
        assert!((s - 1.0).abs() < 1e-12, "relaxed stretch {s}");
        assert!((a.watts() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn under_cap_burn_is_untouched() {
        let mut a = EnergyArbiter::new(Some(10.0));
        assert_eq!(a.on_completion(1.0, 1.0), 1.0);
        assert_eq!(a.throttle_events(), 0);
    }

    #[test]
    fn precision_recommendation_tracks_overshoot() {
        let mut a = EnergyArbiter::new(Some(1.0));
        assert_eq!(a.recommended_precision(), None, "fresh arbiter");
        let _ = a.on_completion(1.2, 1.0); // 1.2× overshoot: still f64
        assert_eq!(a.recommended_precision(), None);
        let mut a = EnergyArbiter::new(Some(1.0));
        let _ = a.on_completion(2.0, 1.0); // 2× overshoot: f32
        assert_eq!(a.recommended_precision(), Some(Precision::F32));
        let mut a = EnergyArbiter::new(Some(1.0));
        let _ = a.on_completion(8.0, 1.0); // 8× overshoot: int8
        assert_eq!(a.recommended_precision(), Some(Precision::Int8));
    }

    #[test]
    fn wire_bits_shrink_with_precision_pressure() {
        assert_eq!(EnergyArbiter::wire_bits(None), 16);
        assert_eq!(EnergyArbiter::wire_bits(Some(Precision::F64)), 16);
        assert_eq!(EnergyArbiter::wire_bits(Some(Precision::F32)), 8);
        assert_eq!(EnergyArbiter::wire_bits(Some(Precision::Int8)), 4);
    }

    #[test]
    fn stretch_is_bounded_and_nan_energy_ignored() {
        let mut a = EnergyArbiter::new(Some(1e-12));
        let s = a.on_completion(1e6, 1.0);
        assert_eq!(s, MAX_STRETCH);
        let before = a.energy_j();
        let _ = a.on_completion(f64::NAN, 2.0);
        assert_eq!(a.energy_j(), before);
    }
}
