//! Point-cloud container produced by the LiDAR model.

/// One LiDAR return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// World x (forward, metres).
    pub x: f64,
    /// World y (left, metres).
    pub y: f64,
    /// World z (up, metres).
    pub z: f64,
    /// Measured range from the sensor (metres).
    pub range: f64,
    /// Vertical beam index that produced this return.
    pub beam: u16,
    /// Azimuth step index that produced this return.
    pub azimuth: u16,
}

impl Point {
    /// Position as an array.
    pub fn position(&self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Horizontal (x, y) distance from the sensor origin.
    pub fn horizontal_range(&self) -> f64 {
        self.x.hypot(self.y)
    }
}

/// An unordered collection of LiDAR returns from one scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointCloud {
    points: Vec<Point>,
}

impl PointCloud {
    /// An empty cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new() }
    }

    /// Build from a point list.
    pub fn from_points(points: Vec<Point>) -> Self {
        PointCloud { points }
    }

    /// All points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Mutable access to the points (used by corruption models).
    pub fn points_mut(&mut self) -> &mut Vec<Point> {
        &mut self.points
    }

    /// Add a point.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Number of returns.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Maximum range among returns; `0.0` for an empty cloud.
    pub fn max_range(&self) -> f64 {
        self.points.iter().fold(0.0, |m, p| m.max(p.range))
    }

    /// Mean range; `0.0` for an empty cloud.
    pub fn mean_range(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.range).sum::<f64>() / self.points.len() as f64
    }

    /// Keep only points satisfying the predicate.
    pub fn retain(&mut self, f: impl FnMut(&Point) -> bool) {
        self.points.retain(f);
    }

    /// Points within an axis-aligned box.
    pub fn points_in(&self, aabb: &sensact_math::metrics::Aabb) -> usize {
        self.points
            .iter()
            .filter(|p| aabb.contains(p.position()))
            .count()
    }
}

impl FromIterator<Point> for PointCloud {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        PointCloud {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<Point> for PointCloud {
    fn extend<T: IntoIterator<Item = Point>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl IntoIterator for PointCloud {
    type Item = Point;
    type IntoIter = std::vec::IntoIter<Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensact_math::metrics::Aabb;

    fn pt(x: f64, y: f64, z: f64) -> Point {
        Point {
            x,
            y,
            z,
            range: (x * x + y * y + z * z).sqrt(),
            beam: 0,
            azimuth: 0,
        }
    }

    #[test]
    fn basic_accessors() {
        let mut c = PointCloud::new();
        assert!(c.is_empty());
        c.push(pt(3.0, 4.0, 0.0));
        c.push(pt(1.0, 0.0, 0.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.max_range(), 5.0);
        assert_eq!(c.mean_range(), 3.0);
        assert_eq!(c.points()[0].horizontal_range(), 5.0);
    }

    #[test]
    fn retain_filters() {
        let mut c: PointCloud = (0..10).map(|i| pt(i as f64, 0.0, 0.0)).collect();
        c.retain(|p| p.range < 5.0);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn points_in_box() {
        let c: PointCloud = (0..10).map(|i| pt(i as f64, 0.0, 0.0)).collect();
        let b = Aabb::new([2.5, -1.0, -1.0], [6.5, 1.0, 1.0]);
        assert_eq!(c.points_in(&b), 4);
    }

    #[test]
    fn iterator_impls() {
        let c: PointCloud = (0..3).map(|i| pt(i as f64, 0.0, 0.0)).collect();
        assert_eq!(c.iter().count(), 3);
        assert_eq!((&c).into_iter().count(), 3);
        let mut c2 = PointCloud::new();
        c2.extend(c.clone());
        assert_eq!(c2.len(), 3);
        assert_eq!(c.into_iter().count(), 3);
    }

    #[test]
    fn empty_cloud_stats() {
        let c = PointCloud::new();
        assert_eq!(c.max_range(), 0.0);
        assert_eq!(c.mean_range(), 0.0);
    }
}
