//! Spinning multi-beam LiDAR ray-casting.
//!
//! The sensor sits at the origin at `mount_height` above the ground plane
//! `z = 0`. Beams fan vertically between `fov_down` and `fov_up` (radians);
//! each revolution takes `azimuth_steps` pulses. A pulse returns the nearest
//! intersection with a scene box (slab method) or the ground plane, if within
//! `max_range`.

use crate::pointcloud::{Point, PointCloud};
use crate::scene::Scene;
use sensact_math::metrics::Aabb;

/// Geometry and sampling configuration of the simulated LiDAR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LidarConfig {
    /// Number of vertical beams (channels).
    pub beams: u16,
    /// Azimuth steps per 360° revolution.
    pub azimuth_steps: u16,
    /// Lowest beam elevation (radians, negative = down).
    pub fov_down: f64,
    /// Highest beam elevation (radians).
    pub fov_up: f64,
    /// Maximum measurable range (metres).
    pub max_range: f64,
    /// Sensor height above ground (metres).
    pub mount_height: f64,
}

impl Default for LidarConfig {
    /// A 64-beam, 512-azimuth sensor resembling the KITTI HDL-64E geometry.
    fn default() -> Self {
        LidarConfig {
            beams: 64,
            azimuth_steps: 512,
            fov_down: -0.4363, // -25°
            fov_up: 0.0524,    // +3°
            max_range: 80.0,
            mount_height: 1.73,
        }
    }
}

impl LidarConfig {
    /// Total pulses per revolution.
    pub fn pulses_per_scan(&self) -> usize {
        self.beams as usize * self.azimuth_steps as usize
    }

    /// Unit direction of pulse `(beam, azimuth)`.
    pub fn direction(&self, beam: u16, azimuth: u16) -> [f64; 3] {
        let el = if self.beams <= 1 {
            self.fov_down
        } else {
            self.fov_down
                + (self.fov_up - self.fov_down) * beam as f64 / (self.beams - 1) as f64
        };
        let az = 2.0 * std::f64::consts::PI * azimuth as f64 / self.azimuth_steps as f64;
        [el.cos() * az.cos(), el.cos() * az.sin(), el.sin()]
    }
}

/// Ray/axis-aligned-box intersection by the slab method. Returns the entry
/// distance `t >= 0` if the ray hits.
pub fn ray_aabb(origin: [f64; 3], dir: [f64; 3], aabb: &Aabb) -> Option<f64> {
    let mut t_near = 0.0f64;
    let mut t_far = f64::INFINITY;
    for i in 0..3 {
        if dir[i].abs() < 1e-12 {
            if origin[i] < aabb.min[i] || origin[i] > aabb.max[i] {
                return None;
            }
            continue;
        }
        let inv = 1.0 / dir[i];
        let mut t0 = (aabb.min[i] - origin[i]) * inv;
        let mut t1 = (aabb.max[i] - origin[i]) * inv;
        if t0 > t1 {
            std::mem::swap(&mut t0, &mut t1);
        }
        t_near = t_near.max(t0);
        t_far = t_far.min(t1);
        if t_near > t_far {
            return None;
        }
    }
    Some(t_near)
}

/// The simulated sensor.
#[derive(Debug, Clone)]
pub struct Lidar {
    config: LidarConfig,
}

impl Lidar {
    /// Sensor with the given configuration.
    pub fn new(config: LidarConfig) -> Self {
        Lidar { config }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &LidarConfig {
        &self.config
    }

    /// Cast one pulse; returns the hit point if any surface is within range.
    pub fn cast(&self, scene: &Scene, beam: u16, azimuth: u16) -> Option<Point> {
        let origin = [0.0, 0.0, self.config.mount_height];
        let dir = self.config.direction(beam, azimuth);
        let mut best_t = f64::INFINITY;

        // Ground plane z = 0.
        if dir[2] < -1e-12 {
            let t = -origin[2] / dir[2];
            if t > 0.0 {
                best_t = t;
            }
        }
        // Scene boxes.
        for obj in scene.objects() {
            if let Some(t) = ray_aabb(origin, dir, &obj.aabb) {
                if t > 1e-9 && t < best_t {
                    best_t = t;
                }
            }
        }
        if best_t.is_finite() && best_t <= self.config.max_range {
            Some(Point {
                x: origin[0] + best_t * dir[0],
                y: origin[1] + best_t * dir[1],
                z: origin[2] + best_t * dir[2],
                range: best_t,
                beam,
                azimuth,
            })
        } else {
            None
        }
    }

    /// Full 360° scan: every (beam, azimuth) pulse.
    pub fn scan(&self, scene: &Scene) -> PointCloud {
        let mut cloud = PointCloud::new();
        for beam in 0..self.config.beams {
            for az in 0..self.config.azimuth_steps {
                if let Some(p) = self.cast(scene, beam, az) {
                    cloud.push(p);
                }
            }
        }
        cloud
    }

    /// Masked scan: fire only the pulses the mask selects; returns the cloud
    /// plus how many pulses were actually fired.
    pub fn scan_masked(
        &self,
        scene: &Scene,
        mut fire: impl FnMut(u16, u16) -> bool,
    ) -> (PointCloud, usize) {
        let mut cloud = PointCloud::new();
        let mut fired = 0usize;
        for beam in 0..self.config.beams {
            for az in 0..self.config.azimuth_steps {
                if !fire(beam, az) {
                    continue;
                }
                fired += 1;
                if let Some(p) = self.cast(scene, beam, az) {
                    cloud.push(p);
                }
            }
        }
        (cloud, fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{ObjectClass, SceneGenerator, SceneObject};
    use sensact_math::metrics::Aabb;

    fn single_box_scene() -> Scene {
        Scene::from_objects(vec![SceneObject::new(
            ObjectClass::Car,
            Aabb::from_center_size([10.0, 0.0, 0.75], [4.0, 1.8, 1.5]),
        )])
    }

    #[test]
    fn ray_aabb_direct_hit() {
        let aabb = Aabb::new([5.0, -1.0, -1.0], [7.0, 1.0, 1.0]);
        let t = ray_aabb([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], &aabb).unwrap();
        assert!((t - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ray_aabb_miss() {
        let aabb = Aabb::new([5.0, 2.0, -1.0], [7.0, 4.0, 1.0]);
        assert!(ray_aabb([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], &aabb).is_none());
    }

    #[test]
    fn ray_aabb_parallel_axis_inside_slab() {
        let aabb = Aabb::new([5.0, -1.0, -1.0], [7.0, 1.0, 1.0]);
        // Parallel to y with origin inside the y-slab: hit.
        assert!(ray_aabb([0.0, 0.5, 0.0], [1.0, 0.0, 0.0], &aabb).is_some());
        // Outside the y-slab: miss.
        assert!(ray_aabb([0.0, 2.0, 0.0], [1.0, 0.0, 0.0], &aabb).is_none());
    }

    #[test]
    fn forward_beam_hits_box_at_expected_range() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: 0.0,
            fov_up: 0.0,
            max_range: 50.0,
            mount_height: 0.75,
        });
        let p = lidar.cast(&single_box_scene(), 0, 0).unwrap();
        // Box near face at x = 8.
        assert!((p.range - 8.0).abs() < 1e-9, "range {}", p.range);
        assert!((p.x - 8.0).abs() < 1e-9);
    }

    #[test]
    fn downward_beam_hits_ground() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: -0.5,
            fov_up: -0.5,
            max_range: 50.0,
            mount_height: 1.73,
        });
        let p = lidar.cast(&Scene::new(), 0, 1).unwrap(); // az=1 → +y direction
        assert!(p.z.abs() < 1e-9, "ground hit z {}", p.z);
        assert!(p.range > 1.73);
    }

    #[test]
    fn upward_beam_into_empty_sky_misses() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: 0.3,
            fov_up: 0.3,
            max_range: 50.0,
            mount_height: 1.73,
        });
        assert!(lidar.cast(&Scene::new(), 0, 0).is_none());
    }

    #[test]
    fn out_of_range_surface_missed() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: 0.0,
            fov_up: 0.0,
            max_range: 5.0,
            mount_height: 0.75,
        });
        assert!(lidar.cast(&single_box_scene(), 0, 0).is_none());
    }

    #[test]
    fn full_scan_produces_dense_cloud() {
        let scene = SceneGenerator::new(11).generate();
        let lidar = Lidar::new(LidarConfig::default());
        let cloud = lidar.scan(&scene);
        // Most downward beams hit ground or objects.
        assert!(
            cloud.len() > lidar.config().pulses_per_scan() / 3,
            "only {} returns",
            cloud.len()
        );
        // All ranges within the sensor limit.
        assert!(cloud.max_range() <= lidar.config().max_range + 1e-9);
    }

    #[test]
    fn masked_scan_fires_subset() {
        let scene = SceneGenerator::new(11).generate();
        let lidar = Lidar::new(LidarConfig::default());
        let (cloud_all, fired_all) = lidar.scan_masked(&scene, |_, _| true);
        let (cloud_half, fired_half) = lidar.scan_masked(&scene, |_, az| az % 2 == 0);
        assert_eq!(fired_all, lidar.config().pulses_per_scan());
        assert_eq!(fired_half, fired_all / 2);
        assert!(cloud_half.len() < cloud_all.len());
        assert!(cloud_half.len() > cloud_all.len() / 3);
    }

    #[test]
    fn direction_unit_norm_and_coverage() {
        let cfg = LidarConfig::default();
        for &(b, a) in &[(0u16, 0u16), (31, 100), (63, 511)] {
            let d = cfg.direction(b, a);
            let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
        // Beam 0 points down, top beam points up.
        assert!(cfg.direction(0, 0)[2] < 0.0);
        assert!(cfg.direction(63, 0)[2] > 0.0);
    }

    #[test]
    fn scan_is_deterministic() {
        let scene = SceneGenerator::new(2).generate();
        let lidar = Lidar::new(LidarConfig::default());
        assert_eq!(lidar.scan(&scene), lidar.scan(&scene));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::scene::{ObjectClass, Scene, SceneObject};
    use proptest::prelude::*;
    use sensact_math::metrics::Aabb;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The slab test agrees with analytic point-marching: if the ray hits,
        /// the reported entry point lies on the box boundary (within eps) and
        /// no earlier point along the ray is inside the box.
        #[test]
        fn prop_ray_aabb_entry_point_on_boundary(
            cx in 4.0f64..30.0, cy in -10.0f64..10.0, cz in 0.5f64..3.0,
            sx in 0.5f64..4.0, sy in 0.5f64..4.0, sz in 0.5f64..2.0,
            dir_az in 0.0f64..6.283, dir_el in -0.4f64..0.2)
        {
            let aabb = Aabb::from_center_size([cx, cy, cz], [sx, sy, sz]);
            let dir = [
                dir_el.cos() * dir_az.cos(),
                dir_el.cos() * dir_az.sin(),
                dir_el.sin(),
            ];
            let origin = [0.0, 0.0, 1.73];
            if let Some(t) = ray_aabb(origin, dir, &aabb) {
                let p = [
                    origin[0] + t * dir[0],
                    origin[1] + t * dir[1],
                    origin[2] + t * dir[2],
                ];
                // Entry point is inside the (slightly dilated) box…
                let eps = 1e-6;
                for i in 0..3 {
                    prop_assert!(p[i] >= aabb.min[i] - eps && p[i] <= aabb.max[i] + eps);
                }
                // …and the midpoint of the segment before entry is outside
                // (unless the origin itself is inside).
                if !aabb.contains(origin) && t > 1e-6 {
                    let half = t / 2.0;
                    let q = [
                        origin[0] + half * dir[0],
                        origin[1] + half * dir[1],
                        origin[2] + half * dir[2],
                    ];
                    prop_assert!(!aabb.contains(q), "entered earlier than reported");
                }
            }
        }

        /// Every return of a scan lies within max range and at/above ground.
        #[test]
        fn prop_scan_returns_within_physical_bounds(
            x in 6.0f64..40.0, y in -8.0f64..8.0, beams in 4u16..16)
        {
            let scene = Scene::from_objects(vec![SceneObject::new(
                ObjectClass::Car,
                Aabb::from_center_size([x, y, 0.75], [4.0, 1.8, 1.5]),
            )]);
            let lidar = Lidar::new(LidarConfig {
                beams,
                azimuth_steps: 64,
                ..LidarConfig::default()
            });
            for p in &lidar.scan(&scene) {
                prop_assert!(p.range <= lidar.config().max_range + 1e-9);
                prop_assert!(p.z >= -1e-9, "below ground: {}", p.z);
                // Consistency: |position − origin| == range.
                let d = (p.x * p.x + p.y * p.y + (p.z - 1.73) * (p.z - 1.73)).sqrt();
                prop_assert!((d - p.range).abs() < 1e-9);
            }
        }
    }
}
