//! Spinning multi-beam LiDAR ray-casting.
//!
//! The sensor sits at the origin at `mount_height` above the ground plane
//! `z = 0`. Beams fan vertically between `fov_down` and `fov_up` (radians);
//! each revolution takes `azimuth_steps` pulses. A pulse returns the nearest
//! intersection with a scene box (slab method) or the ground plane, if within
//! `max_range`.

use crate::pointcloud::{Point, PointCloud};
use crate::scene::Scene;
use sensact_math::metrics::Aabb;

/// Geometry and sampling configuration of the simulated LiDAR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LidarConfig {
    /// Number of vertical beams (channels).
    pub beams: u16,
    /// Azimuth steps per 360° revolution.
    pub azimuth_steps: u16,
    /// Lowest beam elevation (radians, negative = down).
    pub fov_down: f64,
    /// Highest beam elevation (radians).
    pub fov_up: f64,
    /// Maximum measurable range (metres).
    pub max_range: f64,
    /// Sensor height above ground (metres).
    pub mount_height: f64,
}

impl Default for LidarConfig {
    /// A 64-beam, 512-azimuth sensor resembling the KITTI HDL-64E geometry.
    fn default() -> Self {
        LidarConfig {
            beams: 64,
            azimuth_steps: 512,
            fov_down: -0.4363, // -25°
            fov_up: 0.0524,    // +3°
            max_range: 80.0,
            mount_height: 1.73,
        }
    }
}

impl LidarConfig {
    /// Total pulses per revolution.
    pub fn pulses_per_scan(&self) -> usize {
        self.beams as usize * self.azimuth_steps as usize
    }

    /// Unit direction of pulse `(beam, azimuth)`.
    pub fn direction(&self, beam: u16, azimuth: u16) -> [f64; 3] {
        let el = if self.beams <= 1 {
            self.fov_down
        } else {
            self.fov_down + (self.fov_up - self.fov_down) * beam as f64 / (self.beams - 1) as f64
        };
        let az = 2.0 * std::f64::consts::PI * azimuth as f64 / self.azimuth_steps as f64;
        [el.cos() * az.cos(), el.cos() * az.sin(), el.sin()]
    }
}

/// Below this many pulses per revolution a full scan stays single-threaded —
/// thread spawn overhead would dominate the cast work.
pub const PAR_MIN_PULSES: usize = 4096;

/// Ray/axis-aligned-box intersection by the slab method. Returns the entry
/// distance `t >= 0` if the ray hits.
pub fn ray_aabb(origin: [f64; 3], dir: [f64; 3], aabb: &Aabb) -> Option<f64> {
    let mut t_near = 0.0f64;
    let mut t_far = f64::INFINITY;
    for i in 0..3 {
        if dir[i].abs() < 1e-12 {
            if origin[i] < aabb.min[i] || origin[i] > aabb.max[i] {
                return None;
            }
            continue;
        }
        let inv = 1.0 / dir[i];
        let mut t0 = (aabb.min[i] - origin[i]) * inv;
        let mut t1 = (aabb.max[i] - origin[i]) * inv;
        if t0 > t1 {
            std::mem::swap(&mut t0, &mut t1);
        }
        t_near = t_near.max(t0);
        t_far = t_far.min(t1);
        if t_near > t_far {
            return None;
        }
    }
    Some(t_near)
}

/// The simulated sensor.
#[derive(Debug, Clone)]
pub struct Lidar {
    config: LidarConfig,
}

impl Lidar {
    /// Sensor with the given configuration.
    pub fn new(config: LidarConfig) -> Self {
        Lidar { config }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &LidarConfig {
        &self.config
    }

    /// Cast one pulse; returns the hit point if any surface is within range.
    pub fn cast(&self, scene: &Scene, beam: u16, azimuth: u16) -> Option<Point> {
        self.cast_over(scene.objects().iter(), beam, azimuth)
    }

    /// Cast one pulse against an explicit candidate-object iterator. The
    /// candidates must preserve scene order so first-seen-wins ties match the
    /// unfiltered [`Lidar::cast`].
    fn cast_over<'a>(
        &self,
        objects: impl Iterator<Item = &'a crate::scene::SceneObject>,
        beam: u16,
        azimuth: u16,
    ) -> Option<Point> {
        let origin = [0.0, 0.0, self.config.mount_height];
        let dir = self.config.direction(beam, azimuth);
        let mut best_t = f64::INFINITY;

        // Ground plane z = 0.
        if dir[2] < -1e-12 {
            let t = -origin[2] / dir[2];
            if t > 0.0 {
                best_t = t;
            }
        }
        // Scene boxes.
        for obj in objects {
            if let Some(t) = ray_aabb(origin, dir, &obj.aabb) {
                if t > 1e-9 && t < best_t {
                    best_t = t;
                }
            }
        }
        if best_t.is_finite() && best_t <= self.config.max_range {
            Some(Point {
                x: origin[0] + best_t * dir[0],
                y: origin[1] + best_t * dir[1],
                z: origin[2] + best_t * dir[2],
                range: best_t,
                beam,
                azimuth,
            })
        } else {
            None
        }
    }

    /// Azimuth-bucket broad phase: for each azimuth column, the indices (in
    /// scene order) of objects whose horizontal angular extent covers it.
    ///
    /// The xy-projection of a pulse from the origin points at exactly the
    /// column's azimuth angle, so a box can only be hit from columns inside
    /// its angular interval — computed from the four xy-corners (the extent
    /// of a convex region not containing the origin is attained at its
    /// vertices) and dilated by one column on each side against rounding.
    /// Culling is therefore exact: casting against a column's bucket returns
    /// bit-identical results to casting against the whole scene.
    fn azimuth_buckets(&self, scene: &Scene) -> Vec<Vec<u32>> {
        use std::f64::consts::{PI, TAU};
        let steps = self.config.azimuth_steps as usize;
        let mut buckets = vec![Vec::new(); steps.max(1)];
        for (idx, obj) in scene.objects().iter().enumerate() {
            let bb = &obj.aabb;
            let everywhere = |buckets: &mut Vec<Vec<u32>>| {
                for b in buckets.iter_mut() {
                    b.push(idx as u32);
                }
            };
            // The sensor axis pierces the box's xy footprint: all azimuths.
            if bb.min[0] <= 0.0 && bb.max[0] >= 0.0 && bb.min[1] <= 0.0 && bb.max[1] >= 0.0 {
                everywhere(&mut buckets);
                continue;
            }
            let center = (0.5 * (bb.min[1] + bb.max[1])).atan2(0.5 * (bb.min[0] + bb.max[0]));
            let mut dmin = 0.0f64;
            let mut dmax = 0.0f64;
            for &x in &[bb.min[0], bb.max[0]] {
                for &y in &[bb.min[1], bb.max[1]] {
                    let mut d = y.atan2(x) - center;
                    if d > PI {
                        d -= TAU;
                    } else if d < -PI {
                        d += TAU;
                    }
                    dmin = dmin.min(d);
                    dmax = dmax.max(d);
                }
            }
            let k0 = ((center + dmin) / TAU * steps as f64).floor() as i64 - 1;
            let k1 = ((center + dmax) / TAU * steps as f64).ceil() as i64 + 1;
            if k1 - k0 + 1 >= steps as i64 {
                everywhere(&mut buckets);
            } else {
                for k in k0..=k1 {
                    buckets[k.rem_euclid(steps as i64) as usize].push(idx as u32);
                }
            }
        }
        buckets
    }

    /// Cast one pulse against the azimuth bucket of its column.
    fn cast_bucketed(
        &self,
        scene: &Scene,
        buckets: &[Vec<u32>],
        beam: u16,
        azimuth: u16,
    ) -> Option<Point> {
        let objs = scene.objects();
        self.cast_over(
            buckets[azimuth as usize].iter().map(|&i| &objs[i as usize]),
            beam,
            azimuth,
        )
    }

    /// Full 360° scan: every (beam, azimuth) pulse.
    ///
    /// Above [`PAR_MIN_PULSES`] total pulses the azimuth range is split into
    /// contiguous column chunks cast on scoped worker threads; per-chunk
    /// results are stitched back together in beam-major order so the output
    /// is bit-identical to [`Lidar::scan_serial`] regardless of thread count.
    pub fn scan(&self, scene: &Scene) -> PointCloud {
        let steps = self.config.azimuth_steps as usize;
        let beams = self.config.beams as usize;
        let nthreads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(steps.max(1));
        if nthreads <= 1 || self.config.pulses_per_scan() < PAR_MIN_PULSES {
            return self.scan_serial(scene);
        }
        let chunk = steps.div_ceil(nthreads);
        let buckets = self.azimuth_buckets(scene);
        let per_chunk: Vec<Vec<Vec<Point>>> = std::thread::scope(|s| {
            let buckets = &buckets;
            let handles: Vec<_> = (0..steps)
                .step_by(chunk)
                .map(|az0| {
                    let az1 = (az0 + chunk).min(steps);
                    s.spawn(move || {
                        let mut per_beam: Vec<Vec<Point>> = vec![Vec::new(); beams];
                        for (beam, hits) in per_beam.iter_mut().enumerate() {
                            for az in az0..az1 {
                                if let Some(p) =
                                    self.cast_bucketed(scene, buckets, beam as u16, az as u16)
                                {
                                    hits.push(p);
                                }
                            }
                        }
                        per_beam
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("raycast worker panicked"))
                .collect()
        });
        let mut cloud = PointCloud::new();
        for beam in 0..beams {
            for chunk_hits in &per_chunk {
                for p in &chunk_hits[beam] {
                    cloud.push(*p);
                }
            }
        }
        cloud
    }

    /// Single-threaded full scan over the azimuth-bucket broad phase.
    /// Reference ordering for the parallel [`Lidar::scan`].
    pub fn scan_serial(&self, scene: &Scene) -> PointCloud {
        let buckets = self.azimuth_buckets(scene);
        let mut cloud = PointCloud::new();
        for beam in 0..self.config.beams {
            for az in 0..self.config.azimuth_steps {
                if let Some(p) = self.cast_bucketed(scene, &buckets, beam, az) {
                    cloud.push(p);
                }
            }
        }
        cloud
    }

    /// Naive full scan: every pulse tested against every scene object, no
    /// broad phase, no threads. Ground truth for the equivalence tests and
    /// the baseline of the `kernels` benchmark.
    pub fn scan_reference(&self, scene: &Scene) -> PointCloud {
        let mut cloud = PointCloud::new();
        for beam in 0..self.config.beams {
            for az in 0..self.config.azimuth_steps {
                if let Some(p) = self.cast(scene, beam, az) {
                    cloud.push(p);
                }
            }
        }
        cloud
    }

    /// Masked scan: fire only the pulses the mask selects; returns the cloud
    /// plus how many pulses were actually fired.
    pub fn scan_masked(
        &self,
        scene: &Scene,
        mut fire: impl FnMut(u16, u16) -> bool,
    ) -> (PointCloud, usize) {
        let buckets = self.azimuth_buckets(scene);
        let mut cloud = PointCloud::new();
        let mut fired = 0usize;
        for beam in 0..self.config.beams {
            for az in 0..self.config.azimuth_steps {
                if !fire(beam, az) {
                    continue;
                }
                fired += 1;
                if let Some(p) = self.cast_bucketed(scene, &buckets, beam, az) {
                    cloud.push(p);
                }
            }
        }
        (cloud, fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{ObjectClass, SceneGenerator, SceneObject};
    use sensact_math::metrics::Aabb;

    fn single_box_scene() -> Scene {
        Scene::from_objects(vec![SceneObject::new(
            ObjectClass::Car,
            Aabb::from_center_size([10.0, 0.0, 0.75], [4.0, 1.8, 1.5]),
        )])
    }

    #[test]
    fn ray_aabb_direct_hit() {
        let aabb = Aabb::new([5.0, -1.0, -1.0], [7.0, 1.0, 1.0]);
        let t = ray_aabb([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], &aabb).unwrap();
        assert!((t - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ray_aabb_miss() {
        let aabb = Aabb::new([5.0, 2.0, -1.0], [7.0, 4.0, 1.0]);
        assert!(ray_aabb([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], &aabb).is_none());
    }

    #[test]
    fn ray_aabb_parallel_axis_inside_slab() {
        let aabb = Aabb::new([5.0, -1.0, -1.0], [7.0, 1.0, 1.0]);
        // Parallel to y with origin inside the y-slab: hit.
        assert!(ray_aabb([0.0, 0.5, 0.0], [1.0, 0.0, 0.0], &aabb).is_some());
        // Outside the y-slab: miss.
        assert!(ray_aabb([0.0, 2.0, 0.0], [1.0, 0.0, 0.0], &aabb).is_none());
    }

    #[test]
    fn forward_beam_hits_box_at_expected_range() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: 0.0,
            fov_up: 0.0,
            max_range: 50.0,
            mount_height: 0.75,
        });
        let p = lidar.cast(&single_box_scene(), 0, 0).unwrap();
        // Box near face at x = 8.
        assert!((p.range - 8.0).abs() < 1e-9, "range {}", p.range);
        assert!((p.x - 8.0).abs() < 1e-9);
    }

    #[test]
    fn downward_beam_hits_ground() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: -0.5,
            fov_up: -0.5,
            max_range: 50.0,
            mount_height: 1.73,
        });
        let p = lidar.cast(&Scene::new(), 0, 1).unwrap(); // az=1 → +y direction
        assert!(p.z.abs() < 1e-9, "ground hit z {}", p.z);
        assert!(p.range > 1.73);
    }

    #[test]
    fn upward_beam_into_empty_sky_misses() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: 0.3,
            fov_up: 0.3,
            max_range: 50.0,
            mount_height: 1.73,
        });
        assert!(lidar.cast(&Scene::new(), 0, 0).is_none());
    }

    #[test]
    fn out_of_range_surface_missed() {
        let lidar = Lidar::new(LidarConfig {
            beams: 1,
            azimuth_steps: 4,
            fov_down: 0.0,
            fov_up: 0.0,
            max_range: 5.0,
            mount_height: 0.75,
        });
        assert!(lidar.cast(&single_box_scene(), 0, 0).is_none());
    }

    #[test]
    fn full_scan_produces_dense_cloud() {
        let scene = SceneGenerator::new(11).generate();
        let lidar = Lidar::new(LidarConfig::default());
        let cloud = lidar.scan(&scene);
        // Most downward beams hit ground or objects.
        assert!(
            cloud.len() > lidar.config().pulses_per_scan() / 3,
            "only {} returns",
            cloud.len()
        );
        // All ranges within the sensor limit.
        assert!(cloud.max_range() <= lidar.config().max_range + 1e-9);
    }

    #[test]
    fn masked_scan_fires_subset() {
        let scene = SceneGenerator::new(11).generate();
        let lidar = Lidar::new(LidarConfig::default());
        let (cloud_all, fired_all) = lidar.scan_masked(&scene, |_, _| true);
        let (cloud_half, fired_half) = lidar.scan_masked(&scene, |_, az| az % 2 == 0);
        assert_eq!(fired_all, lidar.config().pulses_per_scan());
        assert_eq!(fired_half, fired_all / 2);
        assert!(cloud_half.len() < cloud_all.len());
        assert!(cloud_half.len() > cloud_all.len() / 3);
    }

    #[test]
    fn direction_unit_norm_and_coverage() {
        let cfg = LidarConfig::default();
        for &(b, a) in &[(0u16, 0u16), (31, 100), (63, 511)] {
            let d = cfg.direction(b, a);
            let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
        // Beam 0 points down, top beam points up.
        assert!(cfg.direction(0, 0)[2] < 0.0);
        assert!(cfg.direction(63, 0)[2] > 0.0);
    }

    #[test]
    fn scan_is_deterministic() {
        let scene = SceneGenerator::new(2).generate();
        let lidar = Lidar::new(LidarConfig::default());
        assert_eq!(lidar.scan(&scene), lidar.scan(&scene));
    }

    #[test]
    fn parallel_scan_matches_serial_bit_for_bit() {
        // Default config (64×512 = 32768 pulses) takes the threaded path.
        assert!(LidarConfig::default().pulses_per_scan() >= PAR_MIN_PULSES);
        for seed in [2u64, 11, 42] {
            let scene = SceneGenerator::new(seed).generate();
            let lidar = Lidar::new(LidarConfig::default());
            let reference = lidar.scan_reference(&scene);
            assert_eq!(lidar.scan_serial(&scene), reference);
            assert_eq!(lidar.scan(&scene), reference);
        }
    }

    #[test]
    fn small_scan_stays_serial_and_matches() {
        let scene = SceneGenerator::new(7).generate();
        let lidar = Lidar::new(LidarConfig {
            beams: 8,
            azimuth_steps: 32,
            ..LidarConfig::default()
        });
        assert!(lidar.config().pulses_per_scan() < PAR_MIN_PULSES);
        assert_eq!(lidar.scan(&scene), lidar.scan_reference(&scene));
    }

    #[test]
    fn masked_scan_matches_reference_per_pulse() {
        let scene = SceneGenerator::new(5).generate();
        let lidar = Lidar::new(LidarConfig::default());
        let (bucketed, fired) = lidar.scan_masked(&scene, |b, az| (b + az) % 3 == 0);
        let mut reference = PointCloud::new();
        for beam in 0..lidar.config().beams {
            for az in 0..lidar.config().azimuth_steps {
                if (beam + az) % 3 != 0 {
                    continue;
                }
                if let Some(p) = lidar.cast(&scene, beam, az) {
                    reference.push(p);
                }
            }
        }
        assert!(fired > 0);
        assert_eq!(bucketed, reference);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::scene::{ObjectClass, Scene, SceneObject};
    use sensact_math::metrics::Aabb;
    use sensact_math::rng::StdRng;

    /// The slab test agrees with analytic point-marching: if the ray hits,
    /// the reported entry point lies on the box boundary (within eps) and
    /// no earlier point along the ray is inside the box.
    #[test]
    fn prop_ray_aabb_entry_point_on_boundary() {
        let mut rng = StdRng::seed_from_u64(0x4AA801);
        for _ in 0..64 {
            let cx = rng.random_range(4.0..30.0);
            let cy = rng.random_range(-10.0..10.0);
            let cz = rng.random_range(0.5..3.0);
            let sx = rng.random_range(0.5..4.0);
            let sy = rng.random_range(0.5..4.0);
            let sz = rng.random_range(0.5..2.0);
            let dir_az = rng.random_range(0.0..std::f64::consts::TAU);
            let dir_el = rng.random_range(-0.4..0.2);
            let aabb = Aabb::from_center_size([cx, cy, cz], [sx, sy, sz]);
            let dir = [
                dir_el.cos() * dir_az.cos(),
                dir_el.cos() * dir_az.sin(),
                dir_el.sin(),
            ];
            let origin = [0.0, 0.0, 1.73];
            if let Some(t) = ray_aabb(origin, dir, &aabb) {
                let p = [
                    origin[0] + t * dir[0],
                    origin[1] + t * dir[1],
                    origin[2] + t * dir[2],
                ];
                // Entry point is inside the (slightly dilated) box…
                let eps = 1e-6;
                for ((&pi, &lo), &hi) in p.iter().zip(&aabb.min).zip(&aabb.max) {
                    assert!(pi >= lo - eps && pi <= hi + eps);
                }
                // …and the midpoint of the segment before entry is outside
                // (unless the origin itself is inside).
                if !aabb.contains(origin) && t > 1e-6 {
                    let half = t / 2.0;
                    let q = [
                        origin[0] + half * dir[0],
                        origin[1] + half * dir[1],
                        origin[2] + half * dir[2],
                    ];
                    assert!(!aabb.contains(q), "entered earlier than reported");
                }
            }
        }
    }

    /// The azimuth-bucket broad phase is exact: scans of random box soups —
    /// including boxes straddling the ±π azimuth seam and boxes whose
    /// footprint covers the sensor axis — equal the cull-free reference
    /// bit for bit.
    #[test]
    fn prop_bucketed_scan_matches_reference() {
        let mut rng = StdRng::seed_from_u64(0x4AA803);
        for case in 0..24 {
            let nobj = rng.random_range(1..12usize);
            let mut objects = Vec::new();
            for _ in 0..nobj {
                let (cx, cy) = if case % 3 == 0 {
                    // Cluster around the -x axis: angular wrap at ±π.
                    (rng.random_range(-30.0..-4.0), rng.random_range(-3.0..3.0))
                } else {
                    (rng.random_range(-20.0..40.0), rng.random_range(-20.0..20.0))
                };
                objects.push(SceneObject::new(
                    ObjectClass::Car,
                    Aabb::from_center_size(
                        [cx, cy, rng.random_range(0.2..2.0)],
                        [
                            rng.random_range(0.5..8.0),
                            rng.random_range(0.5..8.0),
                            rng.random_range(0.5..3.0),
                        ],
                    ),
                ));
            }
            let scene = Scene::from_objects(objects);
            let lidar = Lidar::new(LidarConfig {
                beams: rng.random_range(2..8u16),
                azimuth_steps: rng.random_range(16..128u16),
                ..LidarConfig::default()
            });
            assert_eq!(lidar.scan_serial(&scene), lidar.scan_reference(&scene));
        }
    }

    /// Every return of a scan lies within max range and at/above ground.
    #[test]
    fn prop_scan_returns_within_physical_bounds() {
        let mut rng = StdRng::seed_from_u64(0x4AA802);
        for _ in 0..16 {
            let x = rng.random_range(6.0..40.0);
            let y = rng.random_range(-8.0..8.0);
            let beams = rng.random_range(4..16u16);
            let scene = Scene::from_objects(vec![SceneObject::new(
                ObjectClass::Car,
                Aabb::from_center_size([x, y, 0.75], [4.0, 1.8, 1.5]),
            )]);
            let lidar = Lidar::new(LidarConfig {
                beams,
                azimuth_steps: 64,
                ..LidarConfig::default()
            });
            for p in &lidar.scan(&scene) {
                assert!(p.range <= lidar.config().max_range + 1e-9);
                assert!(p.z >= -1e-9, "below ground: {}", p.z);
                // Consistency: |position − origin| == range.
                let d = (p.x * p.x + p.y * p.y + (p.z - 1.73) * (p.z - 1.73)).sqrt();
                assert!((d - p.range).abs() < 1e-9);
            }
        }
    }
}
