//! Occupancy voxelization of point clouds.
//!
//! R-MAE operates on a voxelized point cloud: points are binned into a
//! regular grid over the region of interest; the encoder sees binary
//! occupancy (plus point counts if desired) and the decoder predicts
//! occupancy back.

use crate::pointcloud::PointCloud;

/// Region of interest and resolution of the voxelizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelizerConfig {
    /// Minimum corner of the region of interest (x, y, z).
    pub min: [f64; 3],
    /// Maximum corner of the region of interest.
    pub max: [f64; 3],
    /// Cubic voxel edge length (metres).
    pub voxel_size: f64,
}

impl Default for VoxelizerConfig {
    /// KITTI-like front region: 0–70 m ahead, ±20 m lateral, 0–4 m up, at
    /// 1 m voxels (coarse enough to keep the Rust autoencoder fast).
    fn default() -> Self {
        VoxelizerConfig {
            min: [0.0, -20.0, 0.0],
            max: [70.0, 20.0, 4.0],
            voxel_size: 1.0,
        }
    }
}

impl VoxelizerConfig {
    /// Grid dimensions (nx, ny, nz) implied by the region and voxel size.
    pub fn dims(&self) -> (usize, usize, usize) {
        let n = |lo: f64, hi: f64| (((hi - lo) / self.voxel_size).ceil() as usize).max(1);
        (
            n(self.min[0], self.max[0]),
            n(self.min[1], self.max[1]),
            n(self.min[2], self.max[2]),
        )
    }

    /// Voxel index of a world point, if inside the region.
    pub fn index_of(&self, p: [f64; 3]) -> Option<(usize, usize, usize)> {
        let (nx, ny, nz) = self.dims();
        let mut idx = [0usize; 3];
        for i in 0..3 {
            if p[i] < self.min[i] || p[i] >= self.max[i] {
                return None;
            }
            idx[i] = ((p[i] - self.min[i]) / self.voxel_size) as usize;
        }
        if idx[0] >= nx || idx[1] >= ny || idx[2] >= nz {
            return None;
        }
        Some((idx[0], idx[1], idx[2]))
    }

    /// Center of voxel `(ix, iy, iz)` in world coordinates.
    pub fn center_of(&self, ix: usize, iy: usize, iz: usize) -> [f64; 3] {
        [
            self.min[0] + (ix as f64 + 0.5) * self.voxel_size,
            self.min[1] + (iy as f64 + 0.5) * self.voxel_size,
            self.min[2] + (iz as f64 + 0.5) * self.voxel_size,
        ]
    }
}

/// A dense occupancy grid with per-voxel point counts.
#[derive(Debug, Clone, PartialEq)]
pub struct VoxelGrid {
    config: VoxelizerConfig,
    nx: usize,
    ny: usize,
    nz: usize,
    counts: Vec<u32>,
}

impl VoxelGrid {
    /// An empty grid over the configured region.
    pub fn new(config: VoxelizerConfig) -> Self {
        let (nx, ny, nz) = config.dims();
        VoxelGrid {
            config,
            nx,
            ny,
            nz,
            counts: vec![0; nx * ny * nz],
        }
    }

    /// Voxelize a point cloud.
    pub fn from_cloud(config: VoxelizerConfig, cloud: &PointCloud) -> Self {
        let mut grid = VoxelGrid::new(config);
        for p in cloud {
            if let Some((ix, iy, iz)) = config.index_of(p.position()) {
                let flat = grid.flat(ix, iy, iz);
                grid.counts[flat] += 1;
            }
        }
        grid
    }

    #[inline]
    fn flat(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.ny + iy) * self.nx + ix
    }

    /// The voxelizer configuration.
    pub fn config(&self) -> &VoxelizerConfig {
        &self.config
    }

    /// Grid dimensions (nx, ny, nz).
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total voxel count.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the grid has zero voxels (degenerate config).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Point count in a voxel.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn count(&self, ix: usize, iy: usize, iz: usize) -> u32 {
        assert!(
            ix < self.nx && iy < self.ny && iz < self.nz,
            "voxel index out of range"
        );
        self.counts[self.flat(ix, iy, iz)]
    }

    /// Whether a voxel holds at least one point.
    pub fn occupied(&self, ix: usize, iy: usize, iz: usize) -> bool {
        self.count(ix, iy, iz) > 0
    }

    /// Number of occupied voxels.
    pub fn occupied_count(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Occupancy as a flat `0.0/1.0` buffer (z-major: index
    /// `(iz * ny + iy) * nx + ix`) for feeding a network.
    pub fn occupancy_flat(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| if c > 0 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Iterate occupied voxel indices.
    pub fn occupied_voxels(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (nx, ny, _) = (self.nx, self.ny, self.nz);
        self.counts.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                return None;
            }
            let ix = i % nx;
            let iy = (i / nx) % ny;
            let iz = i / (nx * ny);
            Some((ix, iy, iz))
        })
    }

    /// Intersection-over-union of the occupied sets of two same-shape grids.
    ///
    /// # Panics
    ///
    /// Panics if the grids have different dimensions.
    pub fn occupancy_iou(&self, other: &VoxelGrid) -> f64 {
        assert_eq!(self.dims(), other.dims(), "grid dims mismatch");
        let mut inter = 0usize;
        let mut union = 0usize;
        for (a, b) in self.counts.iter().zip(&other.counts) {
            let oa = *a > 0;
            let ob = *b > 0;
            if oa && ob {
                inter += 1;
            }
            if oa || ob {
                union += 1;
            }
        }
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Overwrite occupancy from a flat prediction buffer (values > `threshold`
    /// become a single synthetic point). Used to turn decoder output back
    /// into a grid.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the voxel count.
    pub fn from_occupancy_flat(config: VoxelizerConfig, buf: &[f64], threshold: f64) -> Self {
        let mut grid = VoxelGrid::new(config);
        assert_eq!(
            buf.len(),
            grid.counts.len(),
            "occupancy buffer length mismatch"
        );
        for (c, &v) in grid.counts.iter_mut().zip(buf) {
            *c = if v > threshold { 1 } else { 0 };
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointcloud::Point;
    use crate::raycast::{Lidar, LidarConfig};
    use crate::scene::SceneGenerator;

    fn pt(x: f64, y: f64, z: f64) -> Point {
        Point {
            x,
            y,
            z,
            range: 0.0,
            beam: 0,
            azimuth: 0,
        }
    }

    fn small_config() -> VoxelizerConfig {
        VoxelizerConfig {
            min: [0.0, 0.0, 0.0],
            max: [4.0, 4.0, 2.0],
            voxel_size: 1.0,
        }
    }

    #[test]
    fn dims_from_region() {
        assert_eq!(small_config().dims(), (4, 4, 2));
        let odd = VoxelizerConfig {
            min: [0.0, 0.0, 0.0],
            max: [3.5, 1.0, 1.0],
            voxel_size: 1.0,
        };
        assert_eq!(odd.dims(), (4, 1, 1));
    }

    #[test]
    fn index_of_inside_and_outside() {
        let c = small_config();
        assert_eq!(c.index_of([0.5, 0.5, 0.5]), Some((0, 0, 0)));
        assert_eq!(c.index_of([3.9, 3.9, 1.9]), Some((3, 3, 1)));
        assert_eq!(c.index_of([-0.1, 0.0, 0.0]), None);
        assert_eq!(c.index_of([4.0, 0.0, 0.0]), None); // max is exclusive
    }

    #[test]
    fn center_roundtrip() {
        let c = small_config();
        let center = c.center_of(2, 1, 0);
        assert_eq!(c.index_of(center), Some((2, 1, 0)));
    }

    #[test]
    fn voxelize_counts_points() {
        let cloud = PointCloud::from_points(vec![
            pt(0.5, 0.5, 0.5),
            pt(0.6, 0.4, 0.5),
            pt(2.5, 2.5, 1.5),
            pt(9.0, 0.0, 0.0), // outside
        ]);
        let grid = VoxelGrid::from_cloud(small_config(), &cloud);
        assert_eq!(grid.count(0, 0, 0), 2);
        assert_eq!(grid.count(2, 2, 1), 1);
        assert_eq!(grid.occupied_count(), 2);
    }

    #[test]
    fn occupancy_flat_binary() {
        let cloud = PointCloud::from_points(vec![pt(0.5, 0.5, 0.5), pt(0.6, 0.4, 0.5)]);
        let grid = VoxelGrid::from_cloud(small_config(), &cloud);
        let flat = grid.occupancy_flat();
        assert_eq!(flat.iter().sum::<f64>(), 1.0);
        assert!(flat.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn occupied_voxels_iterates_correct_indices() {
        let cloud = PointCloud::from_points(vec![pt(1.5, 2.5, 0.5), pt(3.5, 0.5, 1.5)]);
        let grid = VoxelGrid::from_cloud(small_config(), &cloud);
        let occ: Vec<_> = grid.occupied_voxels().collect();
        assert_eq!(occ.len(), 2);
        assert!(occ.contains(&(1, 2, 0)));
        assert!(occ.contains(&(3, 0, 1)));
    }

    #[test]
    fn iou_identical_and_disjoint() {
        let a = VoxelGrid::from_cloud(
            small_config(),
            &PointCloud::from_points(vec![pt(0.5, 0.5, 0.5)]),
        );
        assert_eq!(a.occupancy_iou(&a), 1.0);
        let b = VoxelGrid::from_cloud(
            small_config(),
            &PointCloud::from_points(vec![pt(2.5, 2.5, 0.5)]),
        );
        assert_eq!(a.occupancy_iou(&b), 0.0);
        // Both empty → defined as 1.
        let e = VoxelGrid::new(small_config());
        assert_eq!(e.occupancy_iou(&e), 1.0);
    }

    #[test]
    fn from_occupancy_flat_thresholds() {
        let c = small_config();
        let n = VoxelGrid::new(c).len();
        let mut buf = vec![0.0; n];
        buf[0] = 0.9;
        buf[5] = 0.4;
        let grid = VoxelGrid::from_occupancy_flat(c, &buf, 0.5);
        assert_eq!(grid.occupied_count(), 1);
    }

    #[test]
    fn real_scan_occupancy_is_sparse() {
        let scene = SceneGenerator::new(1).generate();
        let cloud = Lidar::new(LidarConfig::default()).scan(&scene);
        let grid = VoxelGrid::from_cloud(VoxelizerConfig::default(), &cloud);
        let ratio = grid.occupied_count() as f64 / grid.len() as f64;
        // Street scenes occupy a thin shell — far less than half the volume.
        assert!(ratio < 0.5, "occupancy ratio {ratio}");
        assert!(ratio > 0.005, "occupancy ratio {ratio} suspiciously low");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn count_out_of_range_panics() {
        let grid = VoxelGrid::new(small_config());
        let _ = grid.count(10, 0, 0);
    }
}
