//! R-MAE's two-stage radial masking (paper §III, Fig. 3).
//!
//! Stage 1 groups the azimuth sweep into angular segments and keeps a random
//! subset of segments. Stage 2 applies a range-dependent keep probability
//! within the kept segments: because pulse energy scales as `R⁴`, *distant*
//! returns are the expensive ones, so the keep probability decays with the
//! expected range of the ray. The overall kept fraction lands around the
//! paper's 8–10 % of the scene.

use sensact_math::rng::StdRng;

/// Configuration of the two-stage radial mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadialMaskConfig {
    /// Number of angular segments per revolution (stage 1 granularity).
    pub segments: u16,
    /// Fraction of segments kept by stage 1, in `(0, 1]`.
    pub segment_keep: f64,
    /// Keep probability at zero range for stage 2, in `(0, 1]`.
    pub keep_at_zero: f64,
    /// Range (metres) at which the stage-2 keep probability halves.
    pub half_range: f64,
}

impl Default for RadialMaskConfig {
    /// Defaults calibrated so a KITTI-like scan keeps roughly 10 % of pulses.
    fn default() -> Self {
        RadialMaskConfig {
            segments: 32,
            segment_keep: 0.25,
            keep_at_zero: 0.7,
            half_range: 20.0,
        }
    }
}

/// A sampled mask over (beam, azimuth) pulses.
#[derive(Debug)]
pub struct RadialMask {
    config: RadialMaskConfig,
    azimuth_steps: u16,
    kept_segments: Vec<bool>,
    rng: StdRng,
}

impl RadialMask {
    /// Sample a mask for a sensor with `azimuth_steps` pulses per revolution.
    ///
    /// # Panics
    ///
    /// Panics if config fractions are outside `(0, 1]` or `segments == 0`.
    pub fn sample(config: RadialMaskConfig, azimuth_steps: u16, seed: u64) -> Self {
        assert!(config.segments > 0, "segments must be positive");
        assert!(
            config.segment_keep > 0.0 && config.segment_keep <= 1.0,
            "segment_keep must be in (0,1]"
        );
        assert!(
            config.keep_at_zero > 0.0 && config.keep_at_zero <= 1.0,
            "keep_at_zero must be in (0,1]"
        );
        assert!(config.half_range > 0.0, "half_range must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        // Stage 1: keep a fixed-size random subset of segments.
        let n_keep = ((config.segments as f64 * config.segment_keep).round() as usize).max(1);
        let mut order: Vec<usize> = (0..config.segments as usize).collect();
        // Fisher–Yates.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut kept = vec![false; config.segments as usize];
        for &s in order.iter().take(n_keep) {
            kept[s] = true;
        }
        RadialMask {
            config,
            azimuth_steps,
            kept_segments: kept,
            rng,
        }
    }

    /// The mask configuration.
    pub fn config(&self) -> &RadialMaskConfig {
        &self.config
    }

    /// Segment index of an azimuth step.
    pub fn segment_of(&self, azimuth: u16) -> usize {
        (azimuth as usize * self.config.segments as usize / self.azimuth_steps as usize)
            .min(self.config.segments as usize - 1)
    }

    /// Stage-1 decision: is the segment of this azimuth kept?
    pub fn segment_kept(&self, azimuth: u16) -> bool {
        self.kept_segments[self.segment_of(azimuth)]
    }

    /// Stage-2 keep probability at an expected range (exponential decay with
    /// half-life `half_range`).
    pub fn keep_probability(&self, expected_range: f64) -> f64 {
        self.config.keep_at_zero * 0.5f64.powf(expected_range.max(0.0) / self.config.half_range)
    }

    /// Full two-stage decision for one pulse: stage 1 on the azimuth segment,
    /// stage 2 Bernoulli on the expected range. Mutates the internal RNG.
    pub fn fire(&mut self, azimuth: u16, expected_range: f64) -> bool {
        if !self.segment_kept(azimuth) {
            return false;
        }
        let p = self.keep_probability(expected_range);
        self.rng.random::<f64>() < p
    }

    /// Fraction of segments kept by stage 1.
    pub fn segment_keep_fraction(&self) -> f64 {
        self.kept_segments.iter().filter(|&&k| k).count() as f64 / self.kept_segments.len() as f64
    }
}

/// A uniform (non-radial) random mask used as the ablation baseline: every
/// pulse fires independently with probability `keep`.
#[derive(Debug)]
pub struct UniformMask {
    keep: f64,
    rng: StdRng,
}

impl UniformMask {
    /// Uniform mask keeping each pulse with probability `keep`.
    ///
    /// # Panics
    ///
    /// Panics unless `keep ∈ (0, 1]`.
    pub fn new(keep: f64, seed: u64) -> Self {
        assert!(keep > 0.0 && keep <= 1.0, "keep must be in (0,1]");
        UniformMask {
            keep,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Independent Bernoulli decision for a pulse.
    pub fn fire(&mut self) -> bool {
        self.rng.random::<f64>() < self.keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raycast::{Lidar, LidarConfig};
    use crate::scene::SceneGenerator;

    #[test]
    fn stage1_keeps_configured_fraction() {
        let mask = RadialMask::sample(RadialMaskConfig::default(), 512, 0);
        let frac = mask.segment_keep_fraction();
        assert!((frac - 0.25).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn segment_mapping_covers_all_azimuths() {
        let mask = RadialMask::sample(RadialMaskConfig::default(), 512, 1);
        for az in [0u16, 100, 255, 511] {
            assert!(mask.segment_of(az) < 32);
        }
        // Azimuths in the same 16-step window share a segment.
        assert_eq!(mask.segment_of(0), mask.segment_of(15));
        assert_ne!(mask.segment_of(0), mask.segment_of(16));
    }

    #[test]
    fn keep_probability_decays_with_range() {
        let mask = RadialMask::sample(RadialMaskConfig::default(), 512, 2);
        let p0 = mask.keep_probability(0.0);
        let p20 = mask.keep_probability(20.0);
        let p40 = mask.keep_probability(40.0);
        assert!((p0 - 0.7).abs() < 1e-12);
        assert!((p20 - 0.35).abs() < 1e-12, "half-range decay: {p20}");
        assert!((p40 - 0.175).abs() < 1e-12);
    }

    #[test]
    fn masked_pulses_skip_dropped_segments() {
        let mut mask = RadialMask::sample(RadialMaskConfig::default(), 512, 3);
        for az in 0..512u16 {
            if !mask.segment_kept(az) {
                assert!(!mask.fire(az, 0.0));
            }
        }
    }

    #[test]
    fn overall_keep_ratio_near_ten_percent() {
        // End-to-end: masked scan of a real scene keeps ~8–12 % of pulses.
        let scene = SceneGenerator::new(5).generate();
        let lidar = Lidar::new(LidarConfig::default());
        let full = lidar.scan(&scene);
        let mut mask = RadialMask::sample(RadialMaskConfig::default(), 512, 4);
        // Expected range per pulse approximated by the full scan's mean range.
        let expected = full.mean_range();
        let (_, fired) = lidar.scan_masked(&scene, |_, az| mask.fire(az, expected));
        let ratio = fired as f64 / lidar.config().pulses_per_scan() as f64;
        assert!(
            (0.02..0.20).contains(&ratio),
            "masked fire ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RadialMask::sample(RadialMaskConfig::default(), 512, 9);
        let b = RadialMask::sample(RadialMaskConfig::default(), 512, 9);
        assert_eq!(a.kept_segments, b.kept_segments);
    }

    #[test]
    fn uniform_mask_ratio() {
        let mut m = UniformMask::new(0.3, 0);
        let fired = (0..10_000).filter(|_| m.fire()).count();
        let ratio = fired as f64 / 10_000.0;
        assert!((ratio - 0.3).abs() < 0.03, "uniform ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "segment_keep")]
    fn invalid_segment_keep_panics() {
        let cfg = RadialMaskConfig {
            segment_keep: 0.0,
            ..RadialMaskConfig::default()
        };
        let _ = RadialMask::sample(cfg, 512, 0);
    }
}

/// Scene-change estimate between two scans: the symmetric-difference ratio of
/// their occupancy on a coarse comparison grid, in `[0, 1]` (0 = identical).
///
/// This is the signal the adaptive mask consumes: static scenes need little
/// fresh sensing, dynamic ones need more (paper §III future work).
pub fn scene_change(previous: &crate::PointCloud, current: &crate::PointCloud) -> f64 {
    let config = crate::voxel::VoxelizerConfig {
        min: [-40.0, -40.0, 0.0],
        max: [40.0, 40.0, 4.0],
        voxel_size: 2.0,
    };
    let a = crate::voxel::VoxelGrid::from_cloud(config, previous);
    let b = crate::voxel::VoxelGrid::from_cloud(config, current);
    1.0 - a.occupancy_iou(&b)
}

/// Adaptive two-stage mask (paper §III, future work): the kept-segment
/// fraction tracks scene activity between bounds, so a parked robot senses a
/// trickle while a moving one ramps back toward full coverage.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveMask {
    base: RadialMaskConfig,
    /// Minimum segment-keep fraction (idle floor).
    pub min_keep: f64,
    /// Maximum segment-keep fraction (fully dynamic scenes).
    pub max_keep: f64,
    /// Exponential smoothing gain in `(0, 1]`.
    pub gain: f64,
    activity: f64,
}

impl AdaptiveMask {
    /// Wrap a base config with activity bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_keep <= max_keep <= 1`.
    pub fn new(base: RadialMaskConfig, min_keep: f64, max_keep: f64) -> Self {
        assert!(
            min_keep > 0.0 && min_keep <= max_keep && max_keep <= 1.0,
            "keep bounds must satisfy 0 < min <= max <= 1"
        );
        AdaptiveMask {
            base,
            min_keep,
            max_keep,
            gain: 0.5,
            activity: 0.5,
        }
    }

    /// Feed a scene-change observation in `[0, 1]` (see [`scene_change`]).
    pub fn update_activity(&mut self, change: f64) {
        let target = change.clamp(0.0, 1.0);
        self.activity += self.gain * (target - self.activity);
    }

    /// Current effective segment-keep fraction.
    pub fn segment_keep(&self) -> f64 {
        self.min_keep + (self.max_keep - self.min_keep) * self.activity
    }

    /// Sample a concrete mask for the next revolution.
    pub fn sample(&self, azimuth_steps: u16, seed: u64) -> RadialMask {
        let config = RadialMaskConfig {
            segment_keep: self.segment_keep(),
            ..self.base
        };
        RadialMask::sample(config, azimuth_steps, seed)
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::raycast::{Lidar, LidarConfig};
    use crate::scene::{ObjectClass, Scene, SceneGenerator, SceneObject};
    use sensact_math::metrics::Aabb;

    #[test]
    fn scene_change_zero_for_identical() {
        let cloud = Lidar::new(LidarConfig::default()).scan(&SceneGenerator::new(1).generate());
        assert!(scene_change(&cloud, &cloud) < 1e-9);
    }

    #[test]
    fn scene_change_grows_with_difference() {
        let lidar = Lidar::new(LidarConfig::default());
        let base = SceneGenerator::new(2).generate();
        let cloud_a = lidar.scan(&base);
        // Same scene with one car moved 10 m.
        let mut moved = Scene::new();
        for (i, o) in base.objects().iter().enumerate() {
            let mut aabb = o.aabb;
            if i == 0 {
                aabb = Aabb::new(
                    [aabb.min[0] + 10.0, aabb.min[1], aabb.min[2]],
                    [aabb.max[0] + 10.0, aabb.max[1], aabb.max[2]],
                );
            }
            moved.push(SceneObject::new(o.class, aabb));
        }
        let cloud_b = lidar.scan(&moved);
        let different = lidar.scan(&SceneGenerator::new(99).generate());
        let small = scene_change(&cloud_a, &cloud_b);
        let large = scene_change(&cloud_a, &different);
        assert!(small > 0.0);
        assert!(large > small, "large {large} vs small {small}");
        let _ = ObjectClass::Car;
    }

    #[test]
    fn adaptive_mask_tracks_activity() {
        let mut mask = AdaptiveMask::new(RadialMaskConfig::default(), 0.1, 0.8);
        for _ in 0..20 {
            mask.update_activity(0.0);
        }
        assert!(
            (mask.segment_keep() - 0.1).abs() < 0.02,
            "idle keep {}",
            mask.segment_keep()
        );
        for _ in 0..20 {
            mask.update_activity(1.0);
        }
        assert!(
            (mask.segment_keep() - 0.8).abs() < 0.02,
            "busy keep {}",
            mask.segment_keep()
        );
    }

    #[test]
    fn adaptive_mask_saves_pulses_when_idle() {
        let lidar = Lidar::new(LidarConfig::default());
        let scene = SceneGenerator::new(5).generate();
        let mut idle = AdaptiveMask::new(RadialMaskConfig::default(), 0.08, 0.8);
        let mut busy = idle;
        for _ in 0..20 {
            idle.update_activity(0.0);
            busy.update_activity(1.0);
        }
        let mut m_idle = idle.sample(512, 3);
        let mut m_busy = busy.sample(512, 3);
        let (_, fired_idle) = lidar.scan_masked(&scene, |_, az| m_idle.fire(az, 25.0));
        let (_, fired_busy) = lidar.scan_masked(&scene, |_, az| m_busy.fire(az, 25.0));
        assert!(
            fired_idle * 3 < fired_busy,
            "idle {fired_idle} vs busy {fired_busy}"
        );
    }

    #[test]
    #[should_panic(expected = "keep bounds")]
    fn invalid_bounds_panic() {
        let _ = AdaptiveMask::new(RadialMaskConfig::default(), 0.5, 0.2);
    }
}
