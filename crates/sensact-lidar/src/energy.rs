//! Pulse-energy model behind Table II.
//!
//! For a LiDAR return from range `R`, the received power falls as `R⁴`
//! (two-way spreading of a collimated beam with diffuse reflection), so the
//! transmit energy needed for a detectable return scales as
//! `E(R) = E_max · (R / R_max)⁴`, floored at the receiver sensitivity limit.
//!
//! A **conventional** sensor does not know the scene, so every pulse fires at
//! `E_max` (Table II: 50 µJ per pulse). An **adaptive** (R-MAE-style) sensor
//! fires only the masked subset and can budget each pulse for its expected
//! range, giving the paper's ~9× combined sensing+compute energy advantage.

use crate::pointcloud::PointCloud;

/// Radiometric model of the pulse laser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of a full-power pulse reaching `max_range` (joules).
    pub max_pulse_energy: f64,
    /// Design maximum range (metres).
    pub max_range: f64,
    /// Minimum pulse energy (receiver floor), joules.
    pub min_pulse_energy: f64,
}

impl Default for EnergyModel {
    /// Table II values: 50 µJ full-power pulse at 80 m, 0.5 µJ floor.
    fn default() -> Self {
        EnergyModel {
            max_pulse_energy: 50e-6,
            max_range: 80.0,
            min_pulse_energy: 0.5e-6,
        }
    }
}

impl EnergyModel {
    /// Transmit energy (joules) required for a detectable return at `range`.
    ///
    /// Scales as `R⁴`, clamped to `[min_pulse_energy, max_pulse_energy]`.
    pub fn pulse_energy(&self, range: f64) -> f64 {
        let r = (range / self.max_range).clamp(0.0, 1.0);
        (self.max_pulse_energy * r.powi(4)).max(self.min_pulse_energy)
    }

    /// Energy of one conventional full-scan: every pulse at full power.
    pub fn conventional_scan_energy(&self, pulses: usize) -> f64 {
        self.max_pulse_energy * pulses as f64
    }

    /// Energy ledger of an adaptive scan that fired pulses budgeted for the
    /// ranges actually measured, plus unreturned pulses at a given budget.
    pub fn adaptive_scan_energy(
        &self,
        cloud: &PointCloud,
        fired: usize,
        no_return_budget: f64,
    ) -> ScanEnergyReport {
        let returned = cloud.len();
        let mut total = 0.0;
        for p in cloud {
            total += self.pulse_energy(p.range);
        }
        let misses = fired.saturating_sub(returned);
        total += misses as f64 * no_return_budget;
        ScanEnergyReport {
            pulses_fired: fired,
            returns: returned,
            total_energy_j: total,
            mean_pulse_energy_j: if fired == 0 {
                0.0
            } else {
                total / fired as f64
            },
        }
    }
}

/// Energy accounting for one scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanEnergyReport {
    /// Pulses actually fired.
    pub pulses_fired: usize,
    /// Pulses that produced a return.
    pub returns: usize,
    /// Total transmit energy (joules).
    pub total_energy_j: f64,
    /// Mean energy per fired pulse (joules).
    pub mean_pulse_energy_j: f64,
}

impl ScanEnergyReport {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_energy_j * 1e3
    }

    /// Mean pulse energy in microjoules.
    pub fn mean_pulse_uj(&self) -> f64 {
        self.mean_pulse_energy_j * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::{RadialMask, RadialMaskConfig};
    use crate::raycast::{Lidar, LidarConfig};
    use crate::scene::SceneGenerator;

    #[test]
    fn pulse_energy_r4_scaling() {
        let m = EnergyModel::default();
        let full = m.pulse_energy(80.0);
        let half = m.pulse_energy(40.0);
        assert!((full - 50e-6).abs() < 1e-12);
        // (1/2)^4 = 1/16.
        assert!((half - 50e-6 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_energy_floor_and_clamp() {
        let m = EnergyModel::default();
        assert_eq!(m.pulse_energy(0.0), m.min_pulse_energy);
        assert_eq!(m.pulse_energy(1.0), m.min_pulse_energy);
        // Beyond max range clamps to full power.
        assert_eq!(m.pulse_energy(200.0), m.max_pulse_energy);
    }

    #[test]
    fn conventional_scan_energy_matches_table2_scale() {
        let m = EnergyModel::default();
        // Table II: 72 mJ per scan at 50 µJ/pulse → 1440 pulses.
        let e = m.conventional_scan_energy(1440);
        assert!((e * 1e3 - 72.0).abs() < 1e-9, "conventional {} mJ", e * 1e3);
    }

    #[test]
    fn adaptive_scan_much_cheaper_than_conventional() {
        let scene = SceneGenerator::new(7).generate();
        let lidar = Lidar::new(LidarConfig::default());
        let model = EnergyModel::default();

        let full = lidar.scan(&scene);
        let conventional = model.conventional_scan_energy(lidar.config().pulses_per_scan());

        let mut mask = RadialMask::sample(RadialMaskConfig::default(), 512, 1);
        let expected = full.mean_range();
        let (masked_cloud, fired) = lidar.scan_masked(&scene, |_, az| mask.fire(az, expected));
        let adaptive = model.adaptive_scan_energy(&masked_cloud, fired, model.min_pulse_energy);

        let factor = conventional / adaptive.total_energy_j;
        assert!(
            factor > 5.0,
            "adaptive saving only {factor:.1}x (paper: ~9x at sensing level)"
        );
        // Mean adaptive pulse energy well under the 50 µJ full-power pulse.
        assert!(
            adaptive.mean_pulse_uj() < 25.0,
            "mean pulse {} µJ",
            adaptive.mean_pulse_uj()
        );
    }

    #[test]
    fn report_unit_conversions() {
        let r = ScanEnergyReport {
            pulses_fired: 10,
            returns: 10,
            total_energy_j: 0.002,
            mean_pulse_energy_j: 0.0002,
        };
        assert!((r.total_mj() - 2.0).abs() < 1e-12);
        assert!((r.mean_pulse_uj() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fired_report_is_zero() {
        let model = EnergyModel::default();
        let r = model.adaptive_scan_energy(&PointCloud::new(), 0, 1e-6);
        assert_eq!(r.total_energy_j, 0.0);
        assert_eq!(r.mean_pulse_energy_j, 0.0);
    }

    #[test]
    fn misses_charged_at_budget() {
        let model = EnergyModel::default();
        let r = model.adaptive_scan_energy(&PointCloud::new(), 100, 1e-6);
        assert!((r.total_energy_j - 100e-6).abs() < 1e-12);
    }
}
