//! Procedural street scenes.
//!
//! A scene is a set of class-labelled axis-aligned boxes on a ground plane:
//! a road corridor along +x with parked/driving cars, pedestrians and
//! cyclists on the verges, and building façades at the sides. The layout
//! statistics loosely follow KITTI's ego-centric geometry (objects between
//! ~5 m and ~70 m ahead of the sensor).

use sensact_math::metrics::Aabb;
use sensact_math::rng::StdRng;

/// Semantic class of a scene object (the three KITTI evaluation classes plus
/// static structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// Passenger car (~4.2 × 1.8 × 1.5 m).
    Car,
    /// Pedestrian (~0.6 × 0.6 × 1.75 m).
    Pedestrian,
    /// Cyclist (~1.8 × 0.6 × 1.75 m).
    Cyclist,
    /// Building façade (static structure; not a detection target).
    Building,
}

impl ObjectClass {
    /// The three classes Table I evaluates.
    pub fn detection_classes() -> [ObjectClass; 3] {
        [
            ObjectClass::Car,
            ObjectClass::Pedestrian,
            ObjectClass::Cyclist,
        ]
    }

    /// Nominal (w, l, h) size in metres, before per-instance jitter.
    pub fn nominal_size(self) -> [f64; 3] {
        match self {
            ObjectClass::Car => [4.2, 1.8, 1.5],
            ObjectClass::Pedestrian => [0.6, 0.6, 1.75],
            ObjectClass::Cyclist => [1.8, 0.6, 1.75],
            ObjectClass::Building => [12.0, 8.0, 8.0],
        }
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ObjectClass::Car => "Car",
            ObjectClass::Pedestrian => "Pedestrian",
            ObjectClass::Cyclist => "Cyclist",
            ObjectClass::Building => "Building",
        };
        write!(f, "{s}")
    }
}

/// One object in a scene.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneObject {
    /// Semantic class.
    pub class: ObjectClass,
    /// World-frame bounding box (metres; sensor at origin, z up, x forward).
    pub aabb: Aabb,
}

impl SceneObject {
    /// Construct from a class and box.
    pub fn new(class: ObjectClass, aabb: Aabb) -> Self {
        SceneObject { class, aabb }
    }
}

/// A static scene: labelled boxes plus a ground plane at `z = 0`.
#[derive(Debug, Clone, Default)]
pub struct Scene {
    objects: Vec<SceneObject>,
}

impl Scene {
    /// An empty scene (ground plane only).
    pub fn new() -> Self {
        Scene {
            objects: Vec::new(),
        }
    }

    /// Build from an explicit object list.
    pub fn from_objects(objects: Vec<SceneObject>) -> Self {
        Scene { objects }
    }

    /// All objects.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Add an object.
    pub fn push(&mut self, object: SceneObject) {
        self.objects.push(object);
    }

    /// Objects of one class.
    pub fn objects_of(&self, class: ObjectClass) -> impl Iterator<Item = &SceneObject> {
        self.objects.iter().filter(move |o| o.class == class)
    }

    /// Ground-truth boxes for a detection class.
    pub fn ground_truth(&self, class: ObjectClass) -> Vec<Aabb> {
        self.objects_of(class).map(|o| o.aabb).collect()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the scene has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Configuration of the procedural generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// Number of cars.
    pub cars: usize,
    /// Number of pedestrians.
    pub pedestrians: usize,
    /// Number of cyclists.
    pub cyclists: usize,
    /// Number of building façades per side.
    pub buildings_per_side: usize,
    /// Far limit of object placement along +x (metres).
    pub max_range: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            cars: 6,
            pedestrians: 4,
            cyclists: 3,
            buildings_per_side: 4,
            max_range: 70.0,
        }
    }
}

/// Seeded procedural street-scene generator.
#[derive(Debug)]
pub struct SceneGenerator {
    rng: StdRng,
    config: SceneConfig,
}

impl SceneGenerator {
    /// Generator with the default layout config.
    pub fn new(seed: u64) -> Self {
        SceneGenerator {
            rng: StdRng::seed_from_u64(seed),
            config: SceneConfig::default(),
        }
    }

    /// Generator with an explicit config.
    pub fn with_config(seed: u64, config: SceneConfig) -> Self {
        SceneGenerator {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    fn place(
        &mut self,
        class: ObjectClass,
        x_range: (f64, f64),
        y_range: (f64, f64),
    ) -> SceneObject {
        let nominal = class.nominal_size();
        let jitter = |r: &mut StdRng, v: f64| v * (0.85 + 0.3 * r.random::<f64>());
        let size = [
            jitter(&mut self.rng, nominal[0]),
            jitter(&mut self.rng, nominal[1]),
            jitter(&mut self.rng, nominal[2]),
        ];
        let x = x_range.0 + (x_range.1 - x_range.0) * self.rng.random::<f64>();
        let y = y_range.0 + (y_range.1 - y_range.0) * self.rng.random::<f64>();
        let center = [x, y, size[2] / 2.0];
        SceneObject::new(class, Aabb::from_center_size(center, size))
    }

    /// Generate one scene. Objects never overlap the 3 m sensor clearance at
    /// the origin, and traffic objects are placed collision-free (rejection
    /// sampling with a 1.2 m clearance margin — real road users do not
    /// interpenetrate).
    pub fn generate(&mut self) -> Scene {
        let cfg = self.config;
        let mut scene = Scene::new();
        let clear_of = |scene: &Scene, candidate: &SceneObject| -> bool {
            scene.objects().iter().all(|o| {
                if o.class == ObjectClass::Building {
                    return true;
                }
                let margin = 1.2;
                let a = &candidate.aabb;
                let b = &o.aabb;
                a.min[0] - margin > b.max[0]
                    || b.min[0] - margin > a.max[0]
                    || a.min[1] - margin > b.max[1]
                    || b.min[1] - margin > a.max[1]
            })
        };
        let place_clear = |gen: &mut Self,
                           scene: &mut Scene,
                           class: ObjectClass,
                           xr: (f64, f64),
                           yr: (f64, f64)| {
            for _attempt in 0..20 {
                let candidate = gen.place(class, xr, yr);
                if clear_of(scene, &candidate) {
                    scene.push(candidate);
                    return;
                }
            }
            // Crowded scene: accept the last draw rather than loop forever.
            let candidate = gen.place(class, xr, yr);
            scene.push(candidate);
        };
        // Cars on the road corridor (lanes at y ≈ ±2).
        for _ in 0..cfg.cars {
            let lane = if self.rng.random::<f64>() < 0.5 {
                -2.0
            } else {
                2.0
            };
            place_clear(
                self,
                &mut scene,
                ObjectClass::Car,
                (6.0, cfg.max_range),
                (lane - 0.5, lane + 0.5),
            );
        }
        // Pedestrians on the verges (|y| ≈ 5–8).
        for _ in 0..cfg.pedestrians {
            let side = if self.rng.random::<f64>() < 0.5 {
                -1.0
            } else {
                1.0
            };
            place_clear(
                self,
                &mut scene,
                ObjectClass::Pedestrian,
                (5.0, cfg.max_range * 0.7),
                (side * 5.0, side * 8.0),
            );
        }
        // Cyclists at lane edges (|y| ≈ 3.5–4.5).
        for _ in 0..cfg.cyclists {
            let side = if self.rng.random::<f64>() < 0.5 {
                -1.0
            } else {
                1.0
            };
            place_clear(
                self,
                &mut scene,
                ObjectClass::Cyclist,
                (5.0, cfg.max_range * 0.8),
                (side * 3.5, side * 4.5),
            );
        }
        // Building façades flanking the street (|y| ≈ 10–18).
        for side in [-1.0, 1.0] {
            for b in 0..cfg.buildings_per_side {
                let x0 = 5.0 + b as f64 * (cfg.max_range - 10.0) / cfg.buildings_per_side as f64;
                let mut obj = self.place(
                    ObjectClass::Building,
                    (x0, x0 + 6.0),
                    (side * 12.0, side * 16.0),
                );
                // A façade jittered long can reach back over the origin;
                // slide it forward to keep the 3 m sensor clearance.
                let intrusion = 3.0 - obj.aabb.min[0];
                if intrusion > 0.0 {
                    obj.aabb.min[0] += intrusion;
                    obj.aabb.max[0] += intrusion;
                }
                scene.push(obj);
            }
        }
        scene
    }

    /// Generate a batch of scenes.
    pub fn generate_many(&mut self, n: usize) -> Vec<Scene> {
        (0..n).map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scene_has_expected_population() {
        let scene = SceneGenerator::new(1).generate();
        let cfg = SceneConfig::default();
        assert_eq!(scene.objects_of(ObjectClass::Car).count(), cfg.cars);
        assert_eq!(
            scene.objects_of(ObjectClass::Pedestrian).count(),
            cfg.pedestrians
        );
        assert_eq!(scene.objects_of(ObjectClass::Cyclist).count(), cfg.cyclists);
        assert_eq!(
            scene.objects_of(ObjectClass::Building).count(),
            2 * cfg.buildings_per_side
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SceneGenerator::new(7).generate();
        let b = SceneGenerator::new(7).generate();
        assert_eq!(a.objects(), b.objects());
        let c = SceneGenerator::new(8).generate();
        assert_ne!(a.objects(), c.objects());
    }

    #[test]
    fn objects_sit_on_ground() {
        let scene = SceneGenerator::new(3).generate();
        for o in scene.objects() {
            assert!(o.aabb.min[2].abs() < 1e-9, "{:?} floats", o.class);
            assert!(o.aabb.max[2] > 0.5);
        }
    }

    #[test]
    fn objects_in_front_and_clear_of_sensor() {
        let scene = SceneGenerator::new(4).generate();
        for o in scene.objects() {
            assert!(o.aabb.min[0] > 2.0, "{:?} too close: {:?}", o.class, o.aabb);
        }
    }

    #[test]
    fn sizes_near_nominal() {
        let scene = SceneGenerator::new(5).generate();
        for o in scene.objects_of(ObjectClass::Car) {
            let l = o.aabb.max[0] - o.aabb.min[0];
            assert!((3.0..6.0).contains(&l), "car length {l}");
        }
        for o in scene.objects_of(ObjectClass::Pedestrian) {
            let h = o.aabb.max[2] - o.aabb.min[2];
            assert!((1.3..2.2).contains(&h), "pedestrian height {h}");
        }
    }

    #[test]
    fn ground_truth_filters_class() {
        let scene = SceneGenerator::new(6).generate();
        let cars = scene.ground_truth(ObjectClass::Car);
        assert_eq!(cars.len(), SceneConfig::default().cars);
    }

    #[test]
    fn generate_many_distinct() {
        let mut generator = SceneGenerator::new(0);
        let scenes = generator.generate_many(3);
        assert_eq!(scenes.len(), 3);
        assert_ne!(scenes[0].objects(), scenes[1].objects());
    }

    #[test]
    fn manual_scene_building() {
        let mut scene = Scene::new();
        assert!(scene.is_empty());
        scene.push(SceneObject::new(
            ObjectClass::Car,
            Aabb::from_center_size([10.0, 0.0, 0.75], [4.0, 1.8, 1.5]),
        ));
        assert_eq!(scene.len(), 1);
        assert_eq!(scene.objects()[0].class, ObjectClass::Car);
    }

    #[test]
    fn class_display_and_detection_classes() {
        assert_eq!(ObjectClass::Car.to_string(), "Car");
        assert_eq!(ObjectClass::detection_classes().len(), 3);
        assert!(!ObjectClass::detection_classes().contains(&ObjectClass::Building));
    }
}
