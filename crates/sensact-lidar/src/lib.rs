//! # sensact-lidar
//!
//! LiDAR and 3-D street-scene simulation substrate for the generative-sensing
//! experiments (paper §III) and the reliability experiments (§V).
//!
//! The paper evaluates on KITTI/Waymo/nuScenes scans from real spinning
//! LiDARs; neither the data nor the hardware is available here, so this crate
//! provides the closest synthetic equivalent:
//!
//! * [`scene`] — procedural street scenes with cars, pedestrians, cyclists,
//!   buildings and ground, each an axis-aligned box with a class label.
//! * [`raycast`] — a spinning multi-beam LiDAR model: for every
//!   (beam, azimuth) pulse, the nearest box/ground intersection produces a
//!   return.
//! * [`voxel`] — occupancy voxelization of point clouds.
//! * [`mask`] — R-MAE's two-stage radial masking (angular-segment sampling +
//!   range-dependent keep probability).
//! * [`energy`] — the `E ∝ R⁴` pulse-energy model behind Table II.
//! * [`corrupt`] — KITTI-C-style corruptions (snow, fog, rain, beam-missing,
//!   motion blur, crosstalk, cross-sensor interference).
//!
//! The geometric properties the experiments rely on (occupancy statistics,
//! masking ratios, range distributions) are properties of the simulator's
//! physics, not of any particular dataset — which is what makes the
//! substitution sound.
//!
//! ## Example
//!
//! ```
//! use sensact_lidar::{scene::SceneGenerator, raycast::{Lidar, LidarConfig}};
//!
//! let scene = SceneGenerator::new(42).generate();
//! let lidar = Lidar::new(LidarConfig::default());
//! let scan = lidar.scan(&scene);
//! assert!(scan.points().len() > 1000);
//! ```

pub mod corrupt;
pub mod energy;
pub mod mask;
pub mod pointcloud;
pub mod raycast;
pub mod scene;
pub mod voxel;

pub use corrupt::{Corruption, CorruptionKind};
pub use energy::{EnergyModel, ScanEnergyReport};
pub use mask::RadialMask;
pub use pointcloud::{Point, PointCloud};
pub use raycast::{Lidar, LidarConfig};
pub use scene::{ObjectClass, Scene, SceneGenerator, SceneObject};
pub use voxel::{VoxelGrid, VoxelizerConfig};
