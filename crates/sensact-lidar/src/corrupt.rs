//! KITTI-C-style point-cloud corruptions (paper §V).
//!
//! STARNet is evaluated against natural corruptions (snow, rain, fog),
//! external disruptions (beam missing, motion blur) and internal sensor
//! failures (crosstalk, cross-sensor interference). Each corruption here is a
//! parametric, seeded transformation of a clean point cloud whose intensity
//! grows with `severity ∈ 1..=5`.

use crate::pointcloud::{Point, PointCloud};
use sensact_core::fault::{FiniteCheck, NanPoison};
use sensact_math::rng::StdRng;

/// The corruption families of the KITTI-C benchmark reproduced here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// Airborne snow: near-sensor clutter returns plus attenuation dropout.
    Snow,
    /// Rain: range jitter and mild dropout.
    Rain,
    /// Fog: strong range-dependent attenuation (far points vanish).
    Fog,
    /// Whole vertical beams silently missing.
    BeamMissing,
    /// Motion blur: azimuth-correlated position smear.
    MotionBlur,
    /// Multi-LiDAR crosstalk: ghost returns at random ranges along real rays.
    Crosstalk,
    /// Cross-sensor interference: periodic spurious returns in structured
    /// azimuth stripes.
    CrossSensorInterference,
}

impl CorruptionKind {
    /// All corruption kinds, in benchmark order.
    pub fn all() -> [CorruptionKind; 7] {
        [
            CorruptionKind::Snow,
            CorruptionKind::Rain,
            CorruptionKind::Fog,
            CorruptionKind::BeamMissing,
            CorruptionKind::MotionBlur,
            CorruptionKind::Crosstalk,
            CorruptionKind::CrossSensorInterference,
        ]
    }
}

impl std::fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CorruptionKind::Snow => "snow",
            CorruptionKind::Rain => "rain",
            CorruptionKind::Fog => "fog",
            CorruptionKind::BeamMissing => "beam-missing",
            CorruptionKind::MotionBlur => "motion-blur",
            CorruptionKind::Crosstalk => "crosstalk",
            CorruptionKind::CrossSensorInterference => "cross-sensor",
        };
        write!(f, "{s}")
    }
}

/// A corruption instance: kind + severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Corruption {
    /// Corruption family.
    pub kind: CorruptionKind,
    /// Severity level `1..=5` (0 = identity).
    pub severity: u8,
}

impl Corruption {
    /// Construct, clamping severity to `0..=5`.
    pub fn new(kind: CorruptionKind, severity: u8) -> Self {
        Corruption {
            kind,
            severity: severity.min(5),
        }
    }

    /// Severity as a `[0, 1]` intensity.
    pub fn intensity(&self) -> f64 {
        self.severity as f64 / 5.0
    }

    /// Apply the corruption to a cloud, returning the corrupted copy.
    /// `severity == 0` returns the input unchanged.
    pub fn apply(&self, cloud: &PointCloud, seed: u64) -> PointCloud {
        if self.severity == 0 {
            return cloud.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ (self.severity as u64) << 32);
        let s = self.intensity();
        match self.kind {
            CorruptionKind::Snow => snow(cloud, s, &mut rng),
            CorruptionKind::Rain => rain(cloud, s, &mut rng),
            CorruptionKind::Fog => fog(cloud, s, &mut rng),
            CorruptionKind::BeamMissing => beam_missing(cloud, s, &mut rng),
            CorruptionKind::MotionBlur => motion_blur(cloud, s, &mut rng),
            CorruptionKind::Crosstalk => crosstalk(cloud, s, &mut rng),
            CorruptionKind::CrossSensorInterference => cross_sensor(cloud, s, &mut rng),
        }
    }
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.kind, self.severity)
    }
}

/// NaN poisoning of a whole cloud — the fault a
/// [`sensact_core::fault::FaultInjector`] injects on a wrapped lidar sensor.
/// Every coordinate and range of every point becomes NaN; beam/azimuth
/// indices are untouched (the failure corrupts the measurement, not the
/// firing schedule).
impl NanPoison for PointCloud {
    fn poison(&mut self) {
        for p in self.points_mut() {
            p.x = f64::NAN;
            p.y = f64::NAN;
            p.z = f64::NAN;
            p.range = f64::NAN;
        }
    }
}

/// Finiteness check over every coordinate and range in the cloud. An empty
/// cloud is vacuously finite (emptiness is a dropout, not a poisoning).
impl FiniteCheck for PointCloud {
    fn all_finite(&self) -> bool {
        self.iter()
            .all(|p| p.x.is_finite() && p.y.is_finite() && p.z.is_finite() && p.range.is_finite())
    }
}

/// Sensor mount height assumed by the ray geometry (matches
/// [`crate::raycast::LidarConfig::default`]).
const MOUNT_HEIGHT: f64 = 1.73;

fn rescale_to_range(p: &Point, new_range: f64) -> Point {
    // Move the point along its ray *from the sensor* to a new range.
    let scale = if p.range > 1e-9 {
        new_range / p.range
    } else {
        0.0
    };
    Point {
        x: p.x * scale,
        y: p.y * scale,
        z: MOUNT_HEIGHT + (p.z - MOUNT_HEIGHT) * scale,
        range: new_range,
        beam: p.beam,
        azimuth: p.azimuth,
    }
}

fn snow(cloud: &PointCloud, s: f64, rng: &mut StdRng) -> PointCloud {
    let mut out = PointCloud::new();
    for p in cloud {
        // Attenuation: heavy snow strongly limits visibility; drop
        // probability grows quadratically with range.
        let p_drop = s * ((p.range / 50.0) * (p.range / 50.0)).min(0.9);
        if rng.random::<f64>() < p_drop {
            continue;
        }
        out.push(*p);
    }
    // Airborne clutter arrives in *clumps* (flurries / spray): compact
    // floating blobs at roughly body height that imitate small objects —
    // the failure mode that actually breaks detectors in snow.
    let bursts = (12.0 * s) as usize;
    for _ in 0..bursts {
        let az = rng.random::<f64>() * std::f64::consts::TAU;
        let range = 3.0 + 9.0 * rng.random::<f64>();
        let cx = range * az.cos();
        let cy = range * az.sin();
        let cz = 0.9 + 1.1 * rng.random::<f64>();
        let n = 15 + rng.random_range(0..30);
        for _ in 0..n {
            let px = cx + (rng.random::<f64>() - 0.5) * 0.7;
            let py = cy + (rng.random::<f64>() - 0.5) * 0.7;
            let pz = (cz + (rng.random::<f64>() - 0.5) * 0.7).max(0.85);
            let dr = (px * px + py * py + (pz - MOUNT_HEIGHT) * (pz - MOUNT_HEIGHT)).sqrt();
            // Approximate the (beam, azimuth) indices from the geometry of
            // the default sensor so the feature extractor sees a coherent
            // stream.
            let az_idx = ((py.atan2(px).rem_euclid(std::f64::consts::TAU)) / std::f64::consts::TAU
                * 512.0) as u16
                % 512;
            let el = ((pz - MOUNT_HEIGHT) / dr).asin();
            let beam = (((el + 0.4363) / (0.4363 + 0.0524)) * 63.0).clamp(0.0, 63.0) as u16;
            out.push(Point {
                x: px,
                y: py,
                z: pz,
                range: dr,
                beam,
                azimuth: az_idx,
            });
        }
    }
    out
}

fn rain(cloud: &PointCloud, s: f64, rng: &mut StdRng) -> PointCloud {
    let mut out = PointCloud::new();
    for p in cloud {
        if rng.random::<f64>() < 0.15 * s {
            continue;
        }
        // Range jitter up to ±0.5 m at severity 5.
        let jitter = (rng.random::<f64>() - 0.5) * s;
        out.push(rescale_to_range(p, (p.range + jitter).max(0.1)));
    }
    out
}

fn fog(cloud: &PointCloud, s: f64, rng: &mut StdRng) -> PointCloud {
    let mut out = PointCloud::new();
    // Visibility shrinks from max range down to ~15 m at severity 5.
    let visibility = 80.0 * (1.0 - 0.8 * s);
    for p in cloud {
        let p_drop = 1.0 - (-p.range / visibility * 2.0).exp();
        if rng.random::<f64>() < p_drop * s {
            continue;
        }
        out.push(*p);
    }
    out
}

fn beam_missing(cloud: &PointCloud, s: f64, rng: &mut StdRng) -> PointCloud {
    let max_beam = cloud.iter().map(|p| p.beam).max().unwrap_or(0) as usize + 1;
    let n_missing = ((max_beam as f64) * 0.5 * s) as usize;
    let mut missing = vec![false; max_beam];
    for _ in 0..n_missing {
        let b = rng.random_range(0..max_beam);
        missing[b] = true;
    }
    let mut out = cloud.clone();
    out.retain(|p| !missing[p.beam as usize]);
    out
}

fn motion_blur(cloud: &PointCloud, s: f64, rng: &mut StdRng) -> PointCloud {
    // Ego motion during a revolution smears points tangentially; the smear
    // grows with azimuth (later in the revolution) and severity.
    let mut out = PointCloud::new();
    let max_az = cloud.iter().map(|p| p.azimuth).max().unwrap_or(1) as f64;
    for p in cloud {
        let phase = p.azimuth as f64 / max_az;
        let smear = s * 1.5 * phase;
        out.push(Point {
            x: p.x + rng.random::<f64>() * smear,
            y: p.y + (rng.random::<f64>() - 0.5) * smear,
            z: p.z,
            range: p.range,
            beam: p.beam,
            azimuth: p.azimuth,
        });
    }
    out
}

fn crosstalk(cloud: &PointCloud, s: f64, rng: &mut StdRng) -> PointCloud {
    // A fraction of rays report a ghost range (another sensor's pulse).
    let mut out = PointCloud::new();
    for p in cloud {
        if rng.random::<f64>() < 0.25 * s {
            let ghost = 1.0 + 60.0 * rng.random::<f64>();
            out.push(rescale_to_range(p, ghost));
        } else {
            out.push(*p);
        }
    }
    out
}

fn cross_sensor(cloud: &PointCloud, s: f64, rng: &mut StdRng) -> PointCloud {
    // Structured interference: azimuth stripes with spurious returns at a
    // fixed offset range (periodic pattern, unlike random crosstalk).
    let stripe_period = 16u16;
    let interference_range = 5.0 + 20.0 * rng.random::<f64>();
    let mut out = PointCloud::new();
    for p in cloud {
        if p.azimuth % stripe_period == 0 && rng.random::<f64>() < 0.8 * s {
            out.push(rescale_to_range(p, interference_range));
        } else {
            out.push(*p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raycast::{Lidar, LidarConfig};
    use crate::scene::SceneGenerator;

    fn clean_cloud() -> PointCloud {
        let scene = SceneGenerator::new(1).generate();
        Lidar::new(LidarConfig::default()).scan(&scene)
    }

    #[test]
    fn severity_zero_is_identity() {
        let c = clean_cloud();
        for kind in CorruptionKind::all() {
            let out = Corruption::new(kind, 0).apply(&c, 7);
            assert_eq!(out, c, "{kind} at severity 0 changed the cloud");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = clean_cloud();
        let a = Corruption::new(CorruptionKind::Snow, 3).apply(&c, 42);
        let b = Corruption::new(CorruptionKind::Snow, 3).apply(&c, 42);
        assert_eq!(a, b);
        let d = Corruption::new(CorruptionKind::Snow, 3).apply(&c, 43);
        assert_ne!(a, d);
    }

    #[test]
    fn snow_adds_near_clutter() {
        let c = clean_cloud();
        let out = Corruption::new(CorruptionKind::Snow, 5).apply(&c, 1);
        // Attenuation only removes original points (copied bitwise), so any
        // point in the output that is not in the input is airborne clutter.
        let originals: std::collections::HashSet<(u64, u64, u64)> = c
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits()))
            .collect();
        let clutter: Vec<_> = out
            .iter()
            .filter(|p| !originals.contains(&(p.x.to_bits(), p.y.to_bits(), p.z.to_bits())))
            .collect();
        assert!(!clutter.is_empty(), "severity-5 snow added no clutter");
        // Clutter blobs sit near the sensor (centres within 12 m).
        assert!(
            clutter.iter().all(|p| p.range < 13.0),
            "clutter beyond near field"
        );
    }

    #[test]
    fn fog_removes_far_points() {
        let c = clean_cloud();
        let out = Corruption::new(CorruptionKind::Fog, 5).apply(&c, 1);
        let far_before = c.iter().filter(|p| p.range > 40.0).count();
        let far_after = out.iter().filter(|p| p.range > 40.0).count();
        assert!(
            (far_after as f64) < far_before as f64 * 0.5,
            "fog kept {far_after}/{far_before} far points"
        );
    }

    #[test]
    fn beam_missing_removes_entire_beams() {
        let c = clean_cloud();
        let out = Corruption::new(CorruptionKind::BeamMissing, 4).apply(&c, 2);
        let beams_before: std::collections::HashSet<u16> = c.iter().map(|p| p.beam).collect();
        let beams_after: std::collections::HashSet<u16> = out.iter().map(|p| p.beam).collect();
        assert!(beams_after.len() < beams_before.len());
        // Surviving beams keep all their points.
        for b in &beams_after {
            let n_before = c.iter().filter(|p| p.beam == *b).count();
            let n_after = out.iter().filter(|p| p.beam == *b).count();
            assert_eq!(n_before, n_after);
        }
    }

    #[test]
    fn severity_monotone_for_dropout_kinds() {
        let c = clean_cloud();
        for kind in [CorruptionKind::Fog, CorruptionKind::Rain] {
            let mild = Corruption::new(kind, 1).apply(&c, 3).len();
            let severe = Corruption::new(kind, 5).apply(&c, 3).len();
            assert!(severe < mild, "{kind}: severe {severe} !< mild {mild}");
        }
    }

    #[test]
    fn crosstalk_perturbs_ranges() {
        let c = clean_cloud();
        let out = Corruption::new(CorruptionKind::Crosstalk, 5).apply(&c, 4);
        assert_eq!(out.len(), c.len());
        let changed = c
            .iter()
            .zip(out.iter())
            .filter(|(a, b)| (a.range - b.range).abs() > 0.5)
            .count();
        assert!(changed > c.len() / 10, "only {changed} ghosts");
    }

    #[test]
    fn cross_sensor_hits_periodic_stripes() {
        let c = clean_cloud();
        let out = Corruption::new(CorruptionKind::CrossSensorInterference, 5).apply(&c, 5);
        // Only azimuths divisible by 16 may change.
        for (a, b) in c.iter().zip(out.iter()) {
            if a.azimuth % 16 != 0 {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn motion_blur_preserves_count_but_moves_points() {
        let c = clean_cloud();
        let out = Corruption::new(CorruptionKind::MotionBlur, 5).apply(&c, 6);
        assert_eq!(out.len(), c.len());
        let moved = c
            .iter()
            .zip(out.iter())
            .filter(|(a, b)| (a.x - b.x).abs() > 0.01 || (a.y - b.y).abs() > 0.01)
            .count();
        assert!(moved > c.len() / 4);
    }

    #[test]
    fn display_formats() {
        let c = Corruption::new(CorruptionKind::Fog, 3);
        assert_eq!(c.to_string(), "fog@3");
        assert_eq!(CorruptionKind::all().len(), 7);
    }

    #[test]
    fn severity_clamped() {
        let c = Corruption::new(CorruptionKind::Rain, 9);
        assert_eq!(c.severity, 5);
        assert_eq!(c.intensity(), 1.0);
    }

    #[test]
    fn nan_poison_and_finite_check_on_clouds() {
        let mut c = clean_cloud();
        assert!(c.all_finite(), "clean scan must be finite");
        let beams: Vec<u16> = c.iter().map(|p| p.beam).collect();
        c.poison();
        assert!(!c.all_finite());
        assert!(c
            .iter()
            .all(|p| p.x.is_nan() && p.y.is_nan() && p.z.is_nan() && p.range.is_nan()));
        // Indices survive poisoning.
        assert_eq!(c.iter().map(|p| p.beam).collect::<Vec<_>>(), beams);
        // A single NaN taints the whole cloud.
        let mut one_bad = clean_cloud();
        one_bad.points_mut()[0].range = f64::NAN;
        assert!(!one_bad.all_finite());
        // Emptiness is not poisoning.
        assert!(PointCloud::new().all_finite());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::raycast::{Lidar, LidarConfig};
    use crate::scene::SceneGenerator;
    use sensact_math::rng::StdRng;

    /// Corruptions are deterministic in (kind, severity, seed) and only
    /// ever *add* points for the additive kinds / *remove* for the
    /// subtractive ones.
    #[test]
    fn prop_corruption_determinism() {
        let mut rng = StdRng::seed_from_u64(0xC08801);
        let cloud = Lidar::new(LidarConfig {
            beams: 8,
            azimuth_steps: 64,
            ..LidarConfig::default()
        })
        .scan(&SceneGenerator::new(3).generate());
        for _ in 0..12 {
            let severity = rng.random_range(1..=5u8);
            let seed = rng.random_range(0..64u64);
            for kind in CorruptionKind::all() {
                let c = Corruption::new(kind, severity);
                assert_eq!(c.apply(&cloud, seed), c.apply(&cloud, seed));
            }
        }
    }

    /// Subtractive corruptions never invent points.
    #[test]
    fn prop_subtractive_kinds_only_remove() {
        let mut rng = StdRng::seed_from_u64(0xC08802);
        let cloud = Lidar::new(LidarConfig {
            beams: 8,
            azimuth_steps: 64,
            ..LidarConfig::default()
        })
        .scan(&SceneGenerator::new(4).generate());
        for _ in 0..12 {
            let severity = rng.random_range(1..=5u8);
            let seed = rng.random_range(0..32u64);
            for kind in [
                CorruptionKind::Fog,
                CorruptionKind::Rain,
                CorruptionKind::BeamMissing,
            ] {
                let out = Corruption::new(kind, severity).apply(&cloud, seed);
                assert!(out.len() <= cloud.len(), "{kind} grew the cloud");
            }
        }
    }
}
