#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests.
#
# Everything runs offline (the workspace has no external dependencies);
# pass --quick to skip the release build for a fast local loop.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ "$quick" == "0" ]]; then
    echo "== cargo build --release =="
    cargo build --offline --release

    echo "== cargo build --release --examples =="
    cargo build --offline --release --examples
fi

echo "== cargo test (workspace) =="
cargo test --offline --workspace -q

echo "== cargo doc (-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

echo "== bench_obs smoke (quick mode) =="
SENSACT_QUICK=1 cargo bench --offline -p sensact-bench --bench bench_obs

echo "== bench_gate (perf-regression gate vs committed baselines) =="
cargo run --offline --release -p sensact-bench --bin bench_gate

echo "== replay round-trip (1k-tick faulty run) =="
cargo test --offline -q --test replay_integration

echo "== checkpoint conformance (restore mid-recording, zero-divergence tail) =="
cargo test --offline -q -p sensact-core --test checkpoint_replay

echo "== conformance smoke (differential kernel matrix, host ISA) =="
cargo run --offline --release -p sensact-bench --bin conformance -- --smoke

echo "== conformance smoke (forced-scalar path) =="
SENSACT_FORCE_SCALAR=1 cargo run --offline --release -p sensact-bench --bin conformance -- --smoke

echo "== kernels bench smoke (SIMD + precision tiers, host ISA) =="
cargo run --offline --release -p sensact-bench --bin kernels -- --smoke

echo "== kernels bench smoke (forced-scalar path) =="
SENSACT_FORCE_SCALAR=1 cargo run --offline --release -p sensact-bench --bin kernels -- --smoke

echo "== fleet scheduler smoke (throughput + overhead) =="
cargo run --offline --release -p sensact-bench --bin bench_sched -- --smoke

echo "== checkpoint bench smoke (snapshot/restore/migration, host ISA) =="
cargo run --offline --release -p sensact-bench --bin bench_ckpt -- --smoke

echo "== checkpoint bench smoke (forced-scalar path) =="
SENSACT_FORCE_SCALAR=1 cargo run --offline --release -p sensact-bench --bin bench_ckpt -- --smoke

echo "== federated fleet smoke (network sweeps, host ISA) =="
cargo run --offline --release -p sensact-bench --bin bench_fed -- --smoke

echo "== federated fleet smoke (forced-scalar path) =="
SENSACT_FORCE_SCALAR=1 cargo run --offline --release -p sensact-bench --bin bench_fed -- --smoke

echo "== serving integration (batched bitwise identity + crash recovery) =="
cargo test --offline -q --test serve_integration

echo "== serving bench smoke (loopback throughput, host ISA) =="
cargo run --offline --release -p sensact-bench --bin bench_serve -- --smoke

echo "== serving bench smoke (forced-scalar path) =="
SENSACT_FORCE_SCALAR=1 cargo run --offline --release -p sensact-bench --bin bench_serve -- --smoke

echo "CI gate passed."
